// Dynamic job balancing (§IV-C "Dynamic Job Balancing").
//
// The paper uses a producer–consumer model: RRR-set jobs are batched into
// per-thread queues; a thread drains its own queue first (preserving the
// locality benefits of the partitioning), then steals batches from the
// busiest victim. RRR-set sizes vary by orders of magnitude (SCC effect),
// so static partitioning strands entire threads behind one giant set.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "support/aligned.hpp"

namespace eimm {

/// A contiguous batch of job indices [begin, end).
struct JobBatch {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin >= end; }
};

/// Chunked per-thread job queues with stealing.
///
/// Construction splits [0, total_jobs) into `num_workers` contiguous
/// regions (locality: worker w's batches cover the same index range a
/// static partition would give it), each chopped into batches of
/// `batch_size`. Workers call next(worker) until it returns an empty
/// batch; exhausted workers steal the tail batch of the fullest victim.
///
/// Thread-safe for up to `num_workers` concurrent callers.
class JobPool {
 public:
  JobPool(std::size_t total_jobs, std::size_t batch_size,
          std::size_t num_workers);

  /// Next batch for `worker`; empty batch when the pool is drained.
  JobBatch next(std::size_t worker);

  /// Total batches initially enqueued (test/diagnostic).
  [[nodiscard]] std::size_t total_batches() const noexcept {
    return total_batches_;
  }
  /// Number of successful steals so far (diagnostic; relaxed read).
  [[nodiscard]] std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::vector<JobBatch> batches;  // LIFO from the back for the owner
  };

  JobBatch pop_own(std::size_t worker);
  JobBatch steal(std::size_t thief);

  std::vector<CachePadded<Queue>> queues_;
  std::atomic<std::uint64_t> steals_{0};
  std::size_t total_batches_ = 0;
};

}  // namespace eimm
