// Bit-manipulation helpers for the bitmap RRR-set representation and the
// cache simulator's address arithmetic.
#pragma once

#include <bit>
#include <cstdint>

namespace eimm {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}

/// Population count of a 64-bit word.
constexpr int popcount64(std::uint64_t x) noexcept { return std::popcount(x); }

/// Index of lowest set bit (undefined for x == 0).
constexpr int ctz64(std::uint64_t x) noexcept { return std::countr_zero(x); }

/// True if x is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two >= x (x must be >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::bit_ceil(x);
}

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::countr_zero(x));
}

/// Invokes `fn(bit_index)` for every set bit in `word`, where bit indices
/// are offset by `base`. Used to iterate bitmap RRR sets word-at-a-time.
template <typename Fn>
inline void for_each_set_bit(std::uint64_t word, std::size_t base, Fn&& fn) {
  while (word != 0) {
    const int b = ctz64(word);
    fn(base + static_cast<std::size_t>(b));
    word &= word - 1;  // clear lowest set bit
  }
}

}  // namespace eimm
