// SelectionEngine — the one owner of the Find_Most_Influential_Set
// phase. Every production caller (core/imm's probing + final selection,
// serve/QueryEngine's live kernel, dist/imm's simulated ranks, and the
// cachesim traced harness) routes selection through this subsystem
// instead of instantiating the select.hpp kernel templates directly.
//
// What the engine adds over the bare kernels:
//   * thread placement — workers are pinned to NUMA domains via
//     runtime/affinity before the kernel runs (EIMM_PIN; no-op on
//     single-node hosts), so the counter replicas below actually stay
//     domain-local;
//   * counter layout — EIMM_COUNTER_SHARDS (default: the detected
//     domain count) selects between the legacy flat CounterArray
//     (shards == 1, the bit-exact reference path) and the
//     ShardedCounterArray with one mbind(kLocal) replica per domain;
//   * the prebuilt-counter (kernel fusion, Algorithm 3) hand-off: the
//     engine copies a fused base into whichever working layout it
//     chose, so core/imm no longer needs to know the layout exists.
//
// Contract: the engine's seed sequences are bit-identical to the legacy
// kernels for every shard count and pin mode (same lowest-vertex-id
// tie-break end to end) — enforced by tests/seedselect and the
// ctest -L statcheck harness.
//
// Layering note: owning the serve-side store kernel here makes
// seedselect reference serve (implementation-only: engine.cpp includes
// the serve headers, the declarations below use forward declarations),
// while serve calls back into this header — a deliberate cycle at the
// module level, paid so ONE subsystem defines every selection tie-break.
// The umbrella static library absorbs it; splitting the modules into
// standalone libraries would require hoisting the store kernel's data
// types into a lower layer first.
#pragma once

#include <optional>

#include "numa/policy.hpp"
#include "runtime/affinity.hpp"
#include "runtime/atomic_counters.hpp"
#include "seedselect/select.hpp"

namespace eimm {

class SketchStore;
struct QueryOptions;
struct QueryResult;

/// Which greedy kernel to run (mirrors core/imm's Engine choice without
/// depending on it — core maps one onto the other).
enum class SelectionKernel { kEfficient, kRipples };

/// Reusable selection scratch for repeated selections over one growing
/// pool — the martingale probe loop's answer to "every probe allocates a
/// fresh counter layout and throws it away" (the PR 4 ROADMAP item).
/// The engine allocates the working counter layout (flat CounterArray or
/// ShardedCounterArray replicas, matching its configuration) on FIRST
/// use, then reset()s and reloads it from the fused base counters on
/// every subsequent call; the per-set alive flags are likewise reused.
/// counter_allocations() is the regression hook: one run_imm performs
/// exactly one layout allocation across all probes plus the final
/// selection.
class SelectionWorkspace {
 public:
  SelectionWorkspace() = default;

  /// Counter-layout allocations performed so far (1 after any use; a
  /// value above 1 means the pool geometry or engine config changed
  /// mid-stream, which the probe loop never does).
  [[nodiscard]] std::uint64_t counter_allocations() const noexcept {
    return counter_allocations_;
  }
  /// Calls that reused the existing layout via reset+reload.
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }

 private:
  friend class SelectionEngine;

  std::size_t n_ = 0;
  int shards_ = 0;
  MemPolicy policy_ = MemPolicy::kDefault;
  bool allocated_ = false;
  CounterArray flat_;
  ShardedCounterArray sharded_;
  std::vector<std::uint8_t> alive_;
  std::uint64_t counter_allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

struct SelectionEngineConfig {
  /// Counter replicas for the efficient kernel: 0 resolves
  /// EIMM_COUNTER_SHARDS then the detected NUMA domain count; 1 keeps
  /// the legacy flat CounterArray (the statcheck reference path).
  int counter_shards = 0;
  /// Pin-mode override; unset resolves EIMM_PIN / set_pin_mode / auto.
  std::optional<PinMode> pin;
  /// Placement for the flat counter path (sharded replicas are always
  /// kLocal). core/imm passes kInterleave when numa_aware.
  MemPolicy counter_policy = MemPolicy::kDefault;
};

class SelectionEngine {
 public:
  explicit SelectionEngine(SelectionEngineConfig config = {});

  /// Resolved counter-shard count this engine will select with.
  [[nodiscard]] int counter_shards() const noexcept { return shards_; }
  /// Effective pin mode (kAuto already resolved against the topology).
  [[nodiscard]] PinMode pin_mode() const noexcept { return pin_; }

  /// Greedy selection over a pool view — the legacy contiguous RRRPool
  /// or the sharded sampler's SegmentedPool, consumed IN PLACE (both
  /// convert implicitly; no flattening happens here). `base`, when
  /// non-null, holds the fused initial counters (kernel fusion,
  /// Algorithm 3); the engine copies them into its working layout and
  /// skips the initial build. `workspace`, when non-null, supplies the
  /// working counter layout and alive flags: allocated on first use,
  /// reset+reloaded on every later call — callers running repeated
  /// selections (the martingale probe loop) pass one workspace so the
  /// whole run performs a single layout allocation. The ripples kernel
  /// ignores `base` and uses the workspace only for alive flags. Must
  /// be called outside any OpenMP parallel region (the kernels spawn
  /// their own).
  SelectionResult select(SelectionKernel kernel, const RRRPoolView& pool,
                         const SelectionOptions& options,
                         const CounterArray* base = nullptr,
                         SelectionWorkspace* workspace = nullptr) const;

  /// The serve-side kernel (see select_from_store below); member form
  /// for callers already holding an engine.
  QueryResult select(const SketchStore& store,
                     const QueryOptions& options) const;

  /// Traced variant for the cachesim harness: flat counters only (the
  /// cache model observes the paper's Algorithm 2 layout), no pinning
  /// (the trace must be schedule-stable). Accepts the same pool view as
  /// select(), so traces run over legacy pools and zero-copy segments
  /// alike. `counters` is required for the efficient kernel and ignored
  /// by ripples (which keeps thread-local counters of its own).
  template <typename Mem>
  SelectionResult select_traced(SelectionKernel kernel,
                                const RRRPoolView& pool,
                                const SelectionOptions& options,
                                CounterArray* counters = nullptr) const {
    if (kernel == SelectionKernel::kEfficient) {
      EIMM_CHECK(counters != nullptr,
                 "efficient traced selection needs a counter array");
      return efficient_select_t<Mem>(pool, *counters, options);
    }
    return ripples_select_t<Mem>(pool, options);
  }

 private:
  SelectionResult select_impl(SelectionKernel kernel, const RRRPoolView& pool,
                              const SelectionOptions& options,
                              const CounterArray* base,
                              SelectionWorkspace* workspace) const;

  int shards_ = 1;
  PinMode pin_ = PinMode::kNone;
  MemPolicy counter_policy_ = MemPolicy::kDefault;
};

/// Argument validation for one store query (shared by the engine's
/// store kernel and QueryEngine::run_batch's serial pre-validation, so
/// a bad batch fails fast and deterministically on its lowest invalid
/// index). Throws CheckError on out-of-range ids / k.
void validate_store_query(const SketchStore& store, const QueryOptions& query);

/// The serve-side selection kernel: inverted-index greedy over a frozen
/// SketchStore (top-k, whitelists, blacklists), serial per query so
/// queries parallelize across each other. Same lowest-vertex-id
/// tie-break as the pool kernels — an unconstrained query reproduces the
/// efficient kernel's seed sequence exactly. A free function because it
/// reads no engine state (counter layout and pinning are pool-phase
/// concerns; batch serving pins its own team) — serve::run_query calls
/// it per query without resolving shard/pin configuration each time.
QueryResult select_from_store(const SketchStore& store,
                              const QueryOptions& options);

}  // namespace eimm
