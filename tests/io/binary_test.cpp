#include "io/binary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

void expect_equal_graphs(const CSRGraph& a, const CSRGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.targets(), b.targets());
  EXPECT_EQ(a.raw_weights(), b.raw_weights());
}

TEST(BinaryCsr, RoundTripWeighted) {
  const CSRGraph g = build_csr({{0, 1, 0.5f}, {1, 2, 0.25f}, {2, 0, 1.0f}}, 3);
  std::stringstream ss;
  write_binary_csr(ss, g);
  const CSRGraph loaded = read_binary_csr(ss);
  expect_equal_graphs(g, loaded);
  EXPECT_TRUE(loaded.has_weights());
}

TEST(BinaryCsr, RoundTripUnweighted) {
  const CSRGraph g({0, 1, 2}, {1, 0});
  std::stringstream ss;
  write_binary_csr(ss, g);
  const CSRGraph loaded = read_binary_csr(ss);
  expect_equal_graphs(g, loaded);
  EXPECT_FALSE(loaded.has_weights());
}

TEST(BinaryCsr, RoundTripLargerRandomGraph) {
  const CSRGraph g = build_csr(gen_erdos_renyi(500, 4000, 9), 500);
  std::stringstream ss;
  write_binary_csr(ss, g);
  expect_equal_graphs(g, read_binary_csr(ss));
}

TEST(BinaryCsr, BadMagicThrows) {
  std::stringstream ss("definitely not a graph file");
  EXPECT_THROW(read_binary_csr(ss), CheckError);
}

TEST(BinaryCsr, TruncatedPayloadThrows) {
  const CSRGraph g = build_csr({{0, 1}}, 2);
  std::stringstream ss;
  write_binary_csr(ss, g);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary_csr(truncated), CheckError);
}

TEST(BinaryCsr, EmptyStreamThrows) {
  std::stringstream ss;
  EXPECT_THROW(read_binary_csr(ss), CheckError);
}

TEST(BinaryCsr, FileRoundTrip) {
  const CSRGraph g = build_csr({{0, 2, 0.1f}, {1, 2, 0.9f}}, 3);
  const std::string path =
      ::testing::TempDir() + "/eimm_binary_roundtrip.bin";
  write_binary_csr_file(path, g);
  expect_equal_graphs(g, read_binary_csr_file(path));
}

TEST(BinaryCsr, MissingFileThrows) {
  EXPECT_THROW(read_binary_csr_file("/nonexistent/graph.bin"), CheckError);
}

TEST(BinaryCsr, WrongVersionThrows) {
  const CSRGraph g = build_csr({{0, 1}}, 2);
  std::stringstream ss;
  write_binary_csr(ss, g);
  std::string data = ss.str();
  data[8] = 42;  // version u32 lives right after the 8-byte magic
  std::stringstream patched(data);
  EXPECT_THROW(read_binary_csr(patched), CheckError);
}

// --- the shared eimm::bin primitives the snapshot formats build on ---

TEST(BinaryPrimitives, PodAndVecAndStringRoundTrip) {
  std::stringstream ss;
  bin::write_pod(ss, std::uint64_t{0xDEADBEEFCAFEBABEull});
  bin::write_vec(ss, std::vector<std::uint32_t>{1, 2, 3});
  bin::write_string(ss, "sketch-store");
  bin::write_vec(ss, std::vector<double>{});

  std::uint64_t pod = 0;
  bin::read_pod(ss, pod);
  EXPECT_EQ(pod, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(bin::read_vec<std::uint32_t>(ss),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(bin::read_string(ss), "sketch-store");
  EXPECT_TRUE(bin::read_vec<double>(ss).empty());
}

TEST(BinaryPrimitives, HeaderRoundTripAndMismatch) {
  std::stringstream ss;
  bin::write_header(ss, "EIMMTST", 3);
  EXPECT_EQ(bin::read_header(ss, "EIMMTST", 3, "test format"), 3u);

  std::stringstream wrong_magic;
  bin::write_header(wrong_magic, "EIMMTST", 3);
  EXPECT_THROW(bin::read_header(wrong_magic, "EIMMXXX", 3, "test format"),
               CheckError);

  std::stringstream wrong_version;
  bin::write_header(wrong_version, "EIMMTST", 2);
  EXPECT_THROW(bin::read_header(wrong_version, "EIMMTST", 3, "test format"),
               CheckError);
}

TEST(BinaryPrimitives, TruncatedReadsThrowWithTheFormatName) {
  std::stringstream ss;
  bin::write_pod(ss, std::uint16_t{7});
  std::uint64_t too_wide = 0;
  try {
    bin::read_pod(ss, too_wide, "unit-test format");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unit-test format"),
              std::string::npos);
  }

  std::stringstream vec_stream;
  bin::write_vec(vec_stream, std::vector<std::uint64_t>{1, 2, 3, 4});
  std::string cut = vec_stream.str();
  cut.resize(cut.size() - 5);
  std::stringstream truncated(cut);
  EXPECT_THROW(bin::read_vec<std::uint64_t>(truncated), CheckError);

  std::stringstream empty;
  EXPECT_THROW(bin::read_string(empty), CheckError);
}

TEST(BinaryPrimitives, FormatErrorCarriesSectionAndOffset) {
  // Typed errors let loaders report WHERE a snapshot went bad; the
  // section name and byte offset must survive to the catch site.
  std::stringstream ss;
  bin::write_pod(ss, std::uint32_t{1});
  std::uint32_t a = 0;
  bin::read_pod(ss, a, "meta section");
  std::uint64_t b = 0;
  try {
    bin::read_pod(ss, b, "meta section");
    FAIL() << "expected FormatError";
  } catch (const bin::FormatError& e) {
    EXPECT_EQ(e.section(), "meta section");
    ASSERT_TRUE(e.offset().has_value());
    // The failing read began right after the 4 bytes already consumed.
    EXPECT_EQ(*e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("meta section"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
  }

  std::stringstream vec_stream;
  bin::write_vec(vec_stream, std::vector<std::uint64_t>{1, 2, 3});
  std::string cut = vec_stream.str();
  cut.resize(cut.size() - 1);
  std::stringstream truncated(cut);
  try {
    (void)bin::read_vec<std::uint64_t>(truncated, "offsets section");
    FAIL() << "expected FormatError";
  } catch (const bin::FormatError& e) {
    EXPECT_EQ(e.section(), "offsets section");
    ASSERT_TRUE(e.offset().has_value());
    EXPECT_EQ(*e.offset(), 8u);  // payload begins after the u64 count
  }
}

TEST(BinaryPrimitives, ReadHeaderAnyNegotiatesVersions) {
  const std::uint32_t accepted[] = {1, 2};

  std::stringstream v1;
  bin::write_header(v1, "EIMMTST", 1);
  EXPECT_EQ(bin::read_header_any(v1, "EIMMTST", accepted, "test format"), 1u);

  std::stringstream v2;
  bin::write_header(v2, "EIMMTST", 2);
  EXPECT_EQ(bin::read_header_any(v2, "EIMMTST", accepted, "test format"), 2u);

  std::stringstream v3;
  bin::write_header(v3, "EIMMTST", 3);
  try {
    (void)bin::read_header_any(v3, "EIMMTST", accepted, "test format");
    FAIL() << "expected FormatError";
  } catch (const bin::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(BinaryPrimitives, CorruptedLengthPrefixThrowsInsteadOfAllocating) {
  // A flipped high byte in a length field must fail the remaining-bytes
  // sanity check, not attempt a multi-exabyte vector allocation.
  std::stringstream ss;
  bin::write_pod(ss, std::uint64_t{1} << 60);  // absurd element count
  bin::write_pod(ss, std::uint32_t{7});        // a few real payload bytes
  EXPECT_THROW(bin::read_vec<std::uint64_t>(ss), CheckError);

  std::stringstream str_stream;
  bin::write_pod(str_stream, std::uint64_t{1} << 60);
  str_stream << "short";
  EXPECT_THROW(bin::read_string(str_stream), CheckError);
}

}  // namespace
}  // namespace eimm
