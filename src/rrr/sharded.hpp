// NUMA-sharded RRR sampling pipeline (§IV-B taken to its conclusion).
//
// The paper's Table II shows that WHERE the sampling phase's working set
// lives dominates Generate_RRRsets runtime on multi-socket hosts. This
// layer partitions one generation round into per-NUMA-domain shards:
//
//   1. ShardPlan splits the global RRR index range [begin, end) into
//      contiguous shard slices (runtime/partition) and assigns each shard
//      a NUMA domain plus a contiguous group of workers.
//   2. Each worker samples its shard's slots through a per-shard JobPool
//      (runtime/work_queue) — stealing stays confined to the shard, so a
//      thread never migrates its working set across domains — and stages
//      the sampled vertex runs in a worker-private ShardArena whose pages
//      are mbind'd kLocal (numa/alloc): first touch by the sampling
//      worker places them on its own domain.
//   3. merge() copies the staged runs into the shared RRRPool slots in
//      one parallel pass, producing the exact CSR image the unsharded
//      path builds — core/imm, seedselect, and serve consume it
//      unchanged. The stage+merge split costs one extra copy of the
//      vertex payload versus the legacy move-into-pool loop; the
//      locality win it buys is in the sampling phase itself (scratch,
//      graph reads, and staging writes all stay on-domain), which is
//      where Table II says the time goes. A shard-local pool format
//      that survives into selection is the natural next step.
//
// Determinism: slot i's content depends only on (rng_seed, i) — the same
// per-index streams the unsharded path uses — so every shard count,
// worker count, and steal schedule yields a bit-identical pool
// (tests/statcheck enforces this). On single-node hosts the kLocal
// policy falls back to first-touch and the pipeline degrades to plain
// batched generation; shards == 1 callers should prefer the legacy
// single-path loop in core/imm, which this layer bit-matches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "numa/alloc.hpp"
#include "numa/topology.hpp"
#include "rrr/pool.hpp"
#include "rrr/set.hpp"
#include "runtime/atomic_counters.hpp"

namespace eimm {

/// Resolves a shard-count request: explicit positive values win, then the
/// EIMM_SHARDS environment variable, then the detected NUMA domain count
/// (1 on non-NUMA hosts — the single-domain fallback). Always >= 1.
int resolve_shards(int requested);

/// How one generation round is cut into shards and who serves each shard.
struct ShardPlan {
  struct Shard {
    std::uint64_t begin = 0;  ///< global RRR index range [begin, end)
    std::uint64_t end = 0;
    int domain = 0;           ///< preferred NUMA node (advisory: placement
                              ///< follows the workers' first touch)
    std::size_t first_worker = 0;  ///< workers [first, first+count) serve it
    std::size_t worker_count = 0;

    [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
    [[nodiscard]] bool empty() const noexcept { return begin >= end; }
  };

  std::vector<Shard> shards;
  std::size_t total_workers = 1;

  /// Splits [begin, end) into `num_shards` contiguous slices, round-robins
  /// domains from `topo`, and distributes `num_workers` over the shards.
  /// When workers outnumber shards every shard gets a contiguous worker
  /// group; otherwise each worker serves a contiguous run of shards
  /// one-by-one (shard count > thread count stays valid, just serialized).
  static ShardPlan make(std::uint64_t begin, std::uint64_t end,
                        int num_shards, std::size_t num_workers,
                        const NumaTopology& topo);

  /// Shard indices worker `w` serves, in ascending order.
  [[nodiscard]] std::vector<std::size_t> shards_for_worker(
      std::size_t w) const;
};

/// Worker-private staging storage for sampled vertex runs: page-aligned
/// NumaBuffer chunks requested kLocal, so the pages land on the sampling
/// worker's own domain under first-touch. Single-writer; a run never
/// spans chunks, so view() is one contiguous span.
class ShardArena {
 public:
  /// Handle to one staged run.
  struct Ref {
    std::uint32_t chunk = 0;
    std::uint32_t pos = 0;
    std::uint32_t len = 0;
  };

  /// `chunk_vertices` is the default chunk capacity; runs larger than it
  /// get a dedicated exactly-sized chunk.
  explicit ShardArena(std::size_t chunk_vertices = std::size_t{1} << 18)
      : chunk_vertices_(chunk_vertices == 0 ? 1 : chunk_vertices) {}

  Ref append(std::span<const VertexId> vertices);
  [[nodiscard]] std::span<const VertexId> view(const Ref& ref) const noexcept;

  /// Bytes of mapped staging memory (diagnostics).
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept;
  /// Staged runs so far.
  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }

 private:
  std::size_t chunk_vertices_;
  std::vector<NumaBuffer> chunks_;
  std::size_t head_capacity_ = 0;  // capacity of the current chunk
  std::size_t head_used_ = 0;      // vertices used in the current chunk
  std::uint64_t runs_ = 0;
};

/// Per-round diagnostics (benches and tests read these).
struct ShardStats {
  std::vector<std::uint64_t> sets_per_shard;
  std::vector<std::uint64_t> steals_per_shard;
  std::vector<int> shard_domains;
  std::uint64_t staged_bytes = 0;
  int numa_domains = 1;  ///< detected domains when the plan was made
};

struct ShardedConfig {
  /// Resolved shard count (>= 1); use resolve_shards() to apply the
  /// EIMM_SHARDS / topology defaulting.
  int shards = 1;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  std::uint64_t rng_seed = 0;
  std::size_t batch_size = 64;
  /// Build RRRSet::make_adaptive (true) or make_vector (false) at merge.
  bool adaptive_representation = true;
  double bitmap_threshold = kDefaultBitmapThreshold;
};

/// One sharded generation pipeline over a fixed reverse graph. generate()
/// may be called repeatedly with growing ranges (the martingale rounds);
/// stats() describes the most recent round.
class ShardedSampler {
 public:
  ShardedSampler(const CSRGraph& reverse, ShardedConfig config);

  /// Samples global slots [begin, end) into `pool` (already resized to at
  /// least `end`). When `fused` is non-null every sampled vertex also
  /// increments the counter in place (kernel fusion, Algorithm 3).
  void generate(RRRPool& pool, std::uint64_t begin, std::uint64_t end,
                CounterArray* fused);

  [[nodiscard]] int num_shards() const noexcept { return config_.shards; }
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }

 private:
  const CSRGraph& reverse_;
  ShardedConfig config_;
  ShardStats stats_;
};

}  // namespace eimm
