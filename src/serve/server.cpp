#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

#include "obs/trace.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace eimm {

namespace wire {

void WireWriter::str(const std::string& s) {
  u64(s.size());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(s.data());
  buf_.insert(buf_.end(), raw, raw + s.size());
}

void WireWriter::ids(std::span<const VertexId> v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const VertexId id : v) u32(id);
}

void WireWriter::counts(std::span<const std::uint64_t> v) {
  for (const std::uint64_t c : v) u64(c);
}

void WireReader::need(std::size_t n) const {
  if (payload_.size() - pos_ < n) {
    throw CheckError("truncated wire frame: need " + std::to_string(n) +
                     " more bytes at offset " + std::to_string(pos_) +
                     " of a " + std::to_string(payload_.size()) +
                     "-byte payload");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return payload_[pos_++];
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  std::memcpy(&v, payload_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  std::memcpy(&v, payload_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

double WireReader::f64() {
  need(8);
  double v = 0;
  std::memcpy(&v, payload_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::string WireReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string s(reinterpret_cast<const char*>(payload_.data() + pos_),
                static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return s;
}

std::vector<VertexId> WireReader::ids() {
  const std::uint32_t count = u32();
  need(static_cast<std::size_t>(count) * sizeof(VertexId));
  std::vector<VertexId> v(count);
  std::memcpy(v.data(), payload_.data() + pos_, v.size() * sizeof(VertexId));
  pos_ += v.size() * sizeof(VertexId);
  return v;
}

std::vector<std::uint64_t> WireReader::counts(std::size_t n) {
  need(n * sizeof(std::uint64_t));
  std::vector<std::uint64_t> v(n);
  std::memcpy(v.data(), payload_.data() + pos_,
              v.size() * sizeof(std::uint64_t));
  pos_ += v.size() * sizeof(std::uint64_t);
  return v;
}

void WireReader::expect_done() const {
  if (pos_ != payload_.size()) {
    throw CheckError("wire frame carries " +
                     std::to_string(payload_.size() - pos_) +
                     " unexpected trailing bytes");
  }
}

void encode_query(WireWriter& w, const QueryOptions& query) {
  w.u64(query.k);
  w.ids(query.candidates);
  w.ids(query.forbidden);
}

QueryOptions decode_query(WireReader& r) {
  QueryOptions q;
  q.k = static_cast<std::size_t>(r.u64());
  q.candidates = r.ids();
  q.forbidden = r.ids();
  return q;
}

void encode_result(WireWriter& w, const QueryResult& result) {
  w.ids(result.seeds);
  w.counts(result.marginal_coverage);
  w.u64(result.covered_sketches);
  w.u64(result.total_sketches);
  w.f64(result.estimated_spread);
}

QueryResult decode_result(WireReader& r) {
  QueryResult result;
  result.seeds = r.ids();
  result.marginal_coverage = r.counts(result.seeds.size());
  result.covered_sketches = r.u64();
  result.total_sketches = r.u64();
  result.estimated_spread = r.f64();
  return result;
}

void encode_histogram(WireWriter& w, const obs::HistogramSnapshot& histogram) {
  w.u64(histogram.count);
  w.u64(histogram.sum);
  w.u32(static_cast<std::uint32_t>(obs::kHistogramBuckets));
  for (const std::uint64_t bucket : histogram.buckets) w.u64(bucket);
}

obs::HistogramSnapshot decode_histogram(WireReader& r) {
  obs::HistogramSnapshot out;
  out.count = r.u64();
  out.sum = r.u64();
  const std::uint32_t nbuckets = r.u32();
  // Tolerate a peer built with a different bucket count: read what it
  // sent, keep the prefix that fits our fixed layout.
  for (std::uint32_t b = 0; b < nbuckets; ++b) {
    const std::uint64_t bucket = r.u64();
    if (b < obs::kHistogramBuckets) out.buckets[b] = bucket;
  }
  return out;
}

}  // namespace wire

namespace {

using wire::Status;
using wire::Verb;
using wire::WireReader;
using wire::WireWriter;

// --- fd helpers (EINTR-safe, partial-transfer-safe) ---

bool read_exact(int fd, void* buf, std::size_t bytes) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n > 0) {
      p += n;
      bytes -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error — the connection is gone
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (bytes > 0) {
    // MSG_NOSIGNAL: a peer hanging up mid-reply must surface as EPIPE
    // (a clean connection drop), never a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      bytes -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Reads one length-prefixed frame. Returns false on clean EOF before
/// the prefix (client hung up); throws on oversized frames.
bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint32_t bytes = 0;
  if (!read_exact(fd, &bytes, sizeof bytes)) return false;
  if (bytes > wire::kMaxFrameBytes) {
    throw CheckError("wire frame of " + std::to_string(bytes) +
                     " bytes exceeds the " +
                     std::to_string(wire::kMaxFrameBytes) + "-byte cap");
  }
  payload.resize(bytes);
  if (bytes > 0 && !read_exact(fd, payload.data(), bytes)) {
    throw CheckError("connection dropped mid-frame");
  }
  return true;
}

bool write_frame(int fd, std::span<const std::uint8_t> payload) {
  const auto bytes = static_cast<std::uint32_t>(payload.size());
  return write_exact(fd, &bytes, sizeof bytes) &&
         (payload.empty() ||
          write_exact(fd, payload.data(), payload.size()));
}

std::vector<std::uint8_t> status_frame(Status status,
                                       const std::string& message) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
  return w.take();
}

/// True when `site` fired in a failure mode (kError/kTrunc). kDelay has
/// already slept inside hit() and is NOT a failure — chaos schedules
/// can add latency at a site without changing its outcome.
bool failpoint_fired(const char* site) {
  const std::optional<fail::Mode> mode = fail::hit(site);
  return mode.has_value() && *mode != fail::Mode::kDelay;
}

}  // namespace

// --- BatchingExecutor ---

BatchingExecutor::BatchingExecutor(const QueryEngine& engine,
                                   ExecutorOptions options)
    : engine_(&engine),
      options_(options),
      cache_(options.cache_capacity) {
  EIMM_CHECK(options_.max_batch > 0, "executor max_batch must be positive");
  EIMM_CHECK(options_.max_queue > 0, "executor max_queue must be positive");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

BatchingExecutor::~BatchingExecutor() { stop(); }

std::future<QueryResult> BatchingExecutor::submit(QueryOptions query) {
  // Validate on the caller's thread: an out-of-range id or oversized k
  // fails the ONE bad request synchronously instead of poisoning the
  // whole micro-batch it would have joined (run_batch's serial
  // pre-validation throws for the entire batch at once).
  validate_store_query(engine_->store(), query);

  if (failpoint_fired("serve.admit")) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    throw OverloadError(
        "injected admission rejection at failpoint 'serve.admit'");
  }

  if (auto cached = cache_.lookup(query)) {
    std::promise<QueryResult> ready;
    ready.set_value(std::move(*cached));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    ++stats_.cache_hits;
    return ready.get_future();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw CheckError("executor is shutting down");
  if (queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    throw OverloadError("admission queue full (" +
                        std::to_string(options_.max_queue) +
                        " queries pending)");
  }
  ++stats_.submitted;
  queue_.push_back(Pending{std::move(query), std::promise<QueryResult>(),
                           monotonic_ns()});
  std::future<QueryResult> future = queue_.back().promise.get_future();
  lock.unlock();
  cv_.notify_one();
  return future;
}

void BatchingExecutor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

BatchingExecutor::Stats BatchingExecutor::stats() const {
  Stats out;
  {
    // The scalar counters are only ever mutated under mutex_; snapshot
    // them under the same lock and hand the caller a value copy.
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.queue_wait_us = queue_wait_us_.snapshot();
  out.batch_size = batch_size_.snapshot();
  out.exec_us = exec_us_.snapshot();
  return out;
}

void BatchingExecutor::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      if (!stopping_ && options_.batch_window.count() > 0 &&
          queue_.size() < options_.max_batch) {
        // Coalescing window: wait a beat for concurrent clients to pile
        // in. Capped by max_batch so a saturated queue dispatches
        // immediately.
        cv_.wait_for(lock, options_.batch_window, [this] {
          return stopping_ || queue_.size() >= options_.max_batch;
        });
      }
      const std::size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      std::move(queue_.begin(),
                queue_.begin() + static_cast<std::ptrdiff_t>(take),
                std::back_inserter(batch));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      ++stats_.batches;
      stats_.largest_batch = std::max<std::uint64_t>(stats_.largest_batch,
                                                     batch.size());
    }
    // Histogram updates are lock-free; record them after dropping the
    // admission lock so producers are never stalled by telemetry.
    const std::uint64_t dispatch_ns = monotonic_ns();
    for (const Pending& p : batch) {
      queue_wait_us_.observe((dispatch_ns - p.enqueue_ns) / 1000);
    }
    batch_size_.observe(batch.size());
    run_one_batch(std::move(batch));
  }
}

void BatchingExecutor::run_one_batch(std::vector<Pending>&& batch) {
  obs::TraceSpan span("serve.batch", "size",
                      static_cast<std::int64_t>(batch.size()));
  Timer exec_timer;
  std::vector<QueryOptions> queries;
  queries.reserve(batch.size());
  for (const Pending& p : batch) queries.push_back(p.query);
  try {
    std::vector<QueryResult> results =
        engine_->run_batch(queries, options_.threads);
    exec_us_.observe(exec_timer.nanos() / 1000);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      cache_.insert(batch[i].query, results[i]);
      batch[i].promise.set_value(std::move(results[i]));
    }
  } catch (...) {
    // Queries were validated at submit, so this is an internal failure
    // (OOM, kernel bug): every waiter in the batch learns about it.
    for (Pending& p : batch) {
      p.promise.set_exception(std::current_exception());
    }
  }
}

// --- SketchServer ---

SketchServer::SketchServer(const SketchStore& store, ServerOptions options)
    : SketchServer(
          // Non-owning epoch wrapper: the caller keeps the store alive
          // for the server's whole lifetime (the documented contract).
          std::shared_ptr<const SketchStore>(&store,
                                             [](const SketchStore*) {}),
          std::move(options)) {}

SketchServer::SketchServer(std::shared_ptr<const SketchStore> store,
                           ServerOptions options)
    : options_(std::move(options)),
      registry_(std::move(store), options_.executor) {
  EIMM_CHECK(!options_.socket_path.empty(), "server needs a socket path");
  EIMM_CHECK(options_.socket_path.size() < sizeof(sockaddr_un{}.sun_path),
             "socket path too long for AF_UNIX");
}

std::uint64_t SketchServer::reload_from(const std::string& path) {
  const std::string& target = path.empty() ? options_.snapshot_path : path;
  if (target.empty()) {
    throw CheckError(
        "reload needs a snapshot path (the server was started from an "
        "in-memory store)");
  }
  SnapshotLoadOptions load = options_.reload_load;
  return registry_.reload_file(target, load)->generation;
}

SketchServer::~SketchServer() { stop(); }

void SketchServer::start() {
  EIMM_CHECK(!running_.load(), "server already started");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EIMM_CHECK(listen_fd_ >= 0, "cannot create AF_UNIX socket");
  ::unlink(options_.socket_path.c_str());  // stale path from a dead server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw CheckError("cannot listen on '" + options_.socket_path +
                     "': " + detail);
  }
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void SketchServer::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Poll with a short tick so stop() is observed even when no client
    // ever connects (accept() alone would block forever).
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_requested_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SketchServer::serve_connection(int fd) {
  std::vector<std::uint8_t> payload;
  bool shutdown_requested = false;
  try {
    while (!stop_requested_.load(std::memory_order_acquire) &&
           read_frame(fd, payload)) {
      // Chaos sites: a fired recv/send failpoint models the connection
      // dying at that point — drop it with NO reply, so the client sees
      // EOF (a retryable TransportError), never a wrong answer.
      if (failpoint_fired("serve.conn.recv")) break;
      const std::vector<std::uint8_t> response =
          handle_request(payload, shutdown_requested);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (failpoint_fired("serve.conn.send")) break;
      if (!write_frame(fd, response)) break;
      if (shutdown_requested) break;
    }
  } catch (const std::exception& e) {
    // Frame-level corruption: best-effort error reply, then hang up
    // (the stream offset is unrecoverable once a frame is malformed).
    write_frame(fd, status_frame(Status::kError, e.what()));
  }
  ::shutdown(fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    std::erase(conn_fds_, fd);
  }
  ::close(fd);
  if (shutdown_requested) stop();
}

std::vector<std::uint8_t> SketchServer::handle_request(
    std::span<const std::uint8_t> payload, bool& shutdown_requested) {
  WireReader r(payload);
  WireWriter ok;
  ok.u8(static_cast<std::uint8_t>(Status::kOk));
  const auto timeout_frame = [this](const char* message) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return status_frame(Status::kTimeout, message);
  };
  // Pin this request to the serving epoch that is current RIGHT NOW: a
  // concurrent reload swaps the registry pointer but cannot retire the
  // store/engine/executor this request holds until it finishes.
  const std::shared_ptr<ServingEpoch> epoch = registry_.current();
  try {
    // Fires before the request executes, so the kOverloaded reply below
    // is honest: the client may retry without risking double execution.
    fail::inject("serve.wire.decode");
    const auto verb = static_cast<Verb>(r.u8());
    switch (verb) {
      case Verb::kPing:
        r.expect_done();
        return ok.take();
      case Verb::kTopK: {
        QueryOptions q;
        q.k = static_cast<std::size_t>(r.u64());
        r.expect_done();
        std::future<QueryResult> f = epoch->executor.submit(std::move(q));
        if (f.wait_for(options_.request_timeout) !=
            std::future_status::ready) {
          return timeout_frame("query deadline exceeded");
        }
        wire::encode_result(ok, f.get());
        return ok.take();
      }
      case Verb::kSelect: {
        QueryOptions q = wire::decode_query(r);
        r.expect_done();
        std::future<QueryResult> f = epoch->executor.submit(std::move(q));
        if (f.wait_for(options_.request_timeout) !=
            std::future_status::ready) {
          return timeout_frame("query deadline exceeded");
        }
        wire::encode_result(ok, f.get());
        return ok.take();
      }
      case Verb::kEvaluate: {
        const std::vector<VertexId> seeds = r.ids();
        r.expect_done();
        const MarginalGainResult eval = epoch->engine.evaluate(seeds);
        ok.u32(static_cast<std::uint32_t>(eval.incremental_coverage.size()));
        ok.counts(eval.incremental_coverage);
        ok.u64(eval.covered_sketches);
        ok.u64(eval.total_sketches);
        ok.f64(eval.estimated_spread);
        return ok.take();
      }
      case Verb::kBatch: {
        const std::uint32_t count = r.u32();
        std::vector<QueryOptions> queries(count);
        for (QueryOptions& q : queries) q = wire::decode_query(r);
        r.expect_done();
        // Submit all before waiting on any: the whole client batch
        // lands in one coalescing window.
        std::vector<std::future<QueryResult>> futures;
        futures.reserve(queries.size());
        for (QueryOptions& q : queries) {
          futures.push_back(epoch->executor.submit(std::move(q)));
        }
        const auto deadline =
            std::chrono::steady_clock::now() + options_.request_timeout;
        std::vector<QueryResult> results;
        results.reserve(futures.size());
        for (std::future<QueryResult>& f : futures) {
          if (f.wait_until(deadline) != std::future_status::ready) {
            return timeout_frame("batch deadline exceeded");
          }
          results.push_back(f.get());
        }
        ok.u32(static_cast<std::uint32_t>(results.size()));
        for (const QueryResult& result : results) {
          wire::encode_result(ok, result);
        }
        return ok.take();
      }
      case Verb::kInfo: {
        r.expect_done();
        const SketchStoreMeta& meta = epoch->store->meta();
        const SnapshotLoadStats& load = epoch->store->load_stats();
        ok.u32(epoch->store->num_vertices());
        ok.u64(epoch->store->num_sketches());
        ok.u64(epoch->store->k_max());
        ok.str(meta.workload);
        ok.str(meta.model);
        ok.u8(load.mmap_backed ? 1 : 0);
        ok.u64(load.bytes_mapped);
        ok.u64(load.bytes_copied);
        ok.u64(epoch->generation);
        return ok.take();
      }
      case Verb::kStats: {
        r.expect_done();
        const BatchingExecutor::Stats exec = epoch->executor.stats();
        const QueryCache::Stats qcache = epoch->executor.cache_stats();
        ok.u64(requests_served());
        ok.u64(timeouts());
        ok.u64(exec.submitted);
        ok.u64(exec.cache_hits);
        ok.u64(exec.rejected);
        ok.u64(exec.batches);
        ok.u64(exec.largest_batch);
        ok.u64(qcache.hits);
        ok.u64(qcache.misses);
        ok.u64(qcache.evictions);
        ok.u64(static_cast<std::uint64_t>(qcache.entries));
        ok.u64(epoch->generation);
        ok.u64(registry_.reloads());
        ok.u64(registry_.failed_reloads());
        wire::encode_histogram(ok, exec.queue_wait_us);
        wire::encode_histogram(ok, exec.batch_size);
        wire::encode_histogram(ok, exec.exec_us);
        return ok.take();
      }
      case Verb::kReload: {
        const std::string path = r.str();
        r.expect_done();
        const std::string& target =
            path.empty() ? options_.snapshot_path : path;
        if (target.empty()) {
          return status_frame(
              Status::kError,
              "reload needs a snapshot path (the server was started from "
              "an in-memory store)");
        }
        const std::shared_ptr<ServingEpoch> fresh =
            registry_.reload_file(target, options_.reload_load);
        ok.u64(fresh->generation);
        ok.str(target);
        return ok.take();
      }
      case Verb::kShutdown:
        r.expect_done();
        shutdown_requested = true;
        return ok.take();
    }
    return status_frame(Status::kError,
                        "unknown verb " +
                            std::to_string(static_cast<unsigned>(
                                payload.empty() ? 255u : payload[0])));
  } catch (const fail::InjectedFault& e) {
    // An injected fault fired before (serve.wire.decode) or while
    // admitting the request: it was never executed, so kOverloaded —
    // the retryable status — is the truthful reply.
    return status_frame(Status::kOverloaded, e.what());
  } catch (const OverloadError& e) {
    return status_frame(Status::kOverloaded, e.what());
  } catch (const std::exception& e) {
    return status_frame(Status::kError, e.what());
  }
}

void SketchServer::stop() {
  if (stop_requested_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller (or re-entry from a connection thread): just wait
    // for the first stop to finish.
    wait();
    return;
  }
  if (acceptor_.joinable() &&
      std::this_thread::get_id() != acceptor_.get_id()) {
    acceptor_.join();
  }
  // Unblock connection threads stuck in read(): shutdown() makes their
  // blocking reads return 0 without yanking the fd out from under them.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(conn_threads_);
  }
  for (std::thread& t : workers) {
    if (t.get_id() == std::this_thread::get_id()) {
      t.detach();  // stop() reached from this connection's own thread
    } else if (t.joinable()) {
      t.join();
    }
  }
  registry_.shutdown();  // drains admitted queries before returning
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  running_.store(false, std::memory_order_release);
  // Notify under the lock and make this the last touch of the object: a
  // waiter in wait() cannot return (and the owner cannot destroy the
  // server) until this unlock completes.
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_ = true;
    stopped_cv_.notify_all();
  }
}

void SketchServer::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

// --- SketchClient ---

namespace {

/// splitmix64 step — the deterministic jitter stream (seeded per client
/// from RetryOptions::rng_seed, so tests replay backoff schedules).
std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const obs::Counter& client_retries_counter() {
  static const obs::Counter c = obs::counter("client.retries_total");
  return c;
}
const obs::Counter& client_reconnects_counter() {
  static const obs::Counter c = obs::counter("client.reconnects_total");
  return c;
}
const obs::Counter& client_giveups_counter() {
  static const obs::Counter c = obs::counter("client.giveups_total");
  return c;
}

}  // namespace

SketchClient::SketchClient(const std::string& socket_path,
                           RetryOptions retry)
    : socket_path_(socket_path),
      retry_(retry),
      jitter_state_(retry.rng_seed) {
  EIMM_CHECK(retry_.max_attempts >= 1, "retry needs at least one attempt");
  connect_or_throw();
}

SketchClient::~SketchClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SketchClient::connect_or_throw() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EIMM_CHECK(fd_ >= 0, "cannot create AF_UNIX socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("cannot connect to sketch_server at '" +
                         socket_path_ + "': " + detail);
  }
}

void SketchClient::apply_attempt_timeout(
    std::chrono::steady_clock::time_point deadline) {
  // Per-attempt socket timeouts carved from the remaining budget: a
  // hung attempt wakes with EAGAIN (→ TransportError, retryable)
  // instead of eating the whole deadline. time_point::max() means
  // unbounded — clear any timeout a previous bounded call left behind.
  timeval tv{};
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      throw DeadlineExceededError(
          "retry deadline exhausted before the attempt could start");
    }
    tv.tv_sec = static_cast<time_t>(remaining.count() / 1'000'000);
    tv.tv_usec = static_cast<suseconds_t>(remaining.count() % 1'000'000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::vector<std::uint8_t> SketchClient::roundtrip(
    std::span<const std::uint8_t> request) {
  if (fd_ < 0) {
    ++retry_stats_.reconnects;
    client_reconnects_counter().add();
    connect_or_throw();
  }
  // Chaos sites for deterministic retry tests: a fired client-side
  // failpoint kills the connection exactly like a real transport drop.
  if (failpoint_fired("client.send")) {
    ::close(fd_);
    fd_ = -1;
    throw TransportError("injected send failure at failpoint 'client.send'");
  }
  if (!write_frame(fd_, request)) {
    const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
    ::close(fd_);
    fd_ = -1;
    throw TransportError(timed_out ? "send timeout on request frame"
                                   : "cannot send request frame");
  }
  if (failpoint_fired("client.recv")) {
    ::close(fd_);
    fd_ = -1;
    throw TransportError(
        "injected receive failure at failpoint 'client.recv'");
  }
  std::vector<std::uint8_t> response;
  try {
    if (!read_frame(fd_, response)) {
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      ::close(fd_);
      fd_ = -1;
      throw TransportError(
          timed_out ? "receive timeout waiting for the reply frame"
                    : "server closed the connection before replying");
    }
  } catch (const TransportError&) {
    throw;
  } catch (const CheckError& e) {
    // Short read mid-frame (or an oversized length prefix after a
    // desync): the stream is unrecoverable, reconnect before retrying.
    ::close(fd_);
    fd_ = -1;
    throw TransportError(e.what());
  }
  return response;
}

std::vector<std::uint8_t> SketchClient::call(
    std::span<const std::uint8_t> request, bool retryable) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      retry_.deadline.count() > 0 ? Clock::now() + retry_.deadline
                                  : Clock::time_point::max();
  const std::size_t max_attempts = retryable ? retry_.max_attempts : 1;
  std::chrono::milliseconds backoff = retry_.initial_backoff;
  for (std::size_t attempt = 1;; ++attempt) {
    ++retry_stats_.attempts;
    if (attempt > 1) {
      ++retry_stats_.retries;
      client_retries_counter().add();
    }
    try {
      apply_attempt_timeout(deadline);
      std::vector<std::uint8_t> response = roundtrip(request);
      const auto status = response.empty()
                              ? Status::kError
                              : static_cast<Status>(response[0]);
      if (status == Status::kOverloaded || status == Status::kTimeout) {
        static_cast<void>(checked(response));  // throws a TransientError
      }
      return response;  // kOk — or kError, surfaced by the caller's
                        // checked() as a permanent failure
    } catch (const DeadlineExceededError&) {
      ++retry_stats_.giveups;
      client_giveups_counter().add();
      throw;
    } catch (const TransientError& e) {
      if (attempt >= max_attempts) {
        ++retry_stats_.giveups;
        client_giveups_counter().add();
        throw;
      }
      // Exponential backoff with deterministic jitter: sleep in
      // [backoff·(1−j), backoff·(1+j)], never past the deadline.
      const double unit =
          static_cast<double>(splitmix64_next(jitter_state_) >> 11) *
          0x1.0p-53;
      const double factor = 1.0 + retry_.jitter * (2.0 * unit - 1.0);
      auto sleep = std::chrono::milliseconds(std::max<std::int64_t>(
          0, static_cast<std::int64_t>(
                 static_cast<double>(backoff.count()) * factor + 0.5)));
      if (deadline != Clock::time_point::max() &&
          Clock::now() + sleep >= deadline) {
        ++retry_stats_.giveups;
        client_giveups_counter().add();
        throw DeadlineExceededError(
            "retry deadline exceeded after " + std::to_string(attempt) +
            " attempt(s); last failure: " + e.what());
      }
      std::this_thread::sleep_for(sleep);
      backoff = std::min(
          std::chrono::milliseconds(static_cast<std::int64_t>(
              static_cast<double>(backoff.count()) *
              retry_.backoff_multiplier)),
          retry_.max_backoff);
      if (backoff.count() < 1) backoff = std::chrono::milliseconds(1);
    }
  }
}

wire::WireReader SketchClient::checked(std::vector<std::uint8_t>& response) {
  WireReader r{std::span<const std::uint8_t>(response)};
  const auto status = static_cast<Status>(r.u8());
  if (status != Status::kOk) {
    std::string message;
    try {
      message = r.str();
    } catch (const CheckError&) {
      message = "(no diagnostic)";
    }
    switch (status) {
      case Status::kTimeout:
        throw ServerTimeoutError("server timeout: " + message);
      case Status::kOverloaded:
        throw ServerOverloadedError("server overloaded: " + message);
      default:
        throw CheckError("server error: " + message);
    }
  }
  return r;
}

void SketchClient::ping() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kPing));
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  checked(response).expect_done();
}

QueryResult SketchClient::top_k(std::size_t k) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kTopK));
  w.u64(k);
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  WireReader r = checked(response);
  QueryResult result = wire::decode_result(r);
  r.expect_done();
  return result;
}

QueryResult SketchClient::select(const QueryOptions& query) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kSelect));
  wire::encode_query(w, query);
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  WireReader r = checked(response);
  QueryResult result = wire::decode_result(r);
  r.expect_done();
  return result;
}

std::vector<QueryResult> SketchClient::batch(
    const std::vector<QueryOptions>& queries) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kBatch));
  w.u32(static_cast<std::uint32_t>(queries.size()));
  for (const QueryOptions& q : queries) wire::encode_query(w, q);
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  WireReader r = checked(response);
  const std::uint32_t count = r.u32();
  std::vector<QueryResult> results;
  results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    results.push_back(wire::decode_result(r));
  }
  r.expect_done();
  return results;
}

SketchClient::Info SketchClient::info() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kInfo));
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  WireReader r = checked(response);
  Info out;
  out.num_vertices = r.u32();
  out.num_sketches = r.u64();
  out.k_max = r.u64();
  out.workload = r.str();
  out.model = r.str();
  out.mmap_backed = r.u8() != 0;
  out.bytes_mapped = r.u64();
  out.bytes_copied = r.u64();
  out.generation = r.u64();
  r.expect_done();
  return out;
}

SketchClient::ServerStats SketchClient::stats() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kStats));
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  WireReader r = checked(response);
  ServerStats out;
  out.requests = r.u64();
  out.timeouts = r.u64();
  out.executor.submitted = r.u64();
  out.executor.cache_hits = r.u64();
  out.executor.rejected = r.u64();
  out.executor.batches = r.u64();
  out.executor.largest_batch = r.u64();
  out.cache.hits = r.u64();
  out.cache.misses = r.u64();
  out.cache.evictions = r.u64();
  out.cache.entries = static_cast<std::size_t>(r.u64());
  out.generation = r.u64();
  out.reloads = r.u64();
  out.failed_reloads = r.u64();
  out.executor.queue_wait_us = wire::decode_histogram(r);
  out.executor.batch_size = wire::decode_histogram(r);
  out.executor.exec_us = wire::decode_histogram(r);
  r.expect_done();
  return out;
}

std::uint64_t SketchClient::reload(const std::string& snapshot_path) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kReload));
  w.str(snapshot_path);
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/true);
  WireReader r = checked(response);
  const std::uint64_t generation = r.u64();
  (void)r.str();  // the path the server resolved; callers have it
  r.expect_done();
  return generation;
}

void SketchClient::shutdown_server() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(Verb::kShutdown));
  // Never retried: a replay after an ambiguous drop could kill a server
  // that already drained and restarted.
  std::vector<std::uint8_t> response = call(w.bytes(), /*retryable=*/false);
  checked(response).expect_done();
}

}  // namespace eimm
