// Storage for the sampled RRR sets.
//
// The pool is index-addressed: the IMM driver decides how many sets exist
// (θ'), resize()s, and workers fill disjoint slots — no synchronization
// on the container itself. Slots correspond 1:1 to RNG streams, so pool
// content is deterministic under any schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "rrr/set.hpp"

namespace eimm {

/// Flat CSR image of a pool: set `i` owns the ascending vertex run
/// `vertices[offsets[i] .. offsets[i+1])`. This is the frozen layout the
/// serve/ subsystem indexes and snapshots — one allocation per array
/// instead of one per set, so it mmaps and serializes cleanly.
struct FlatPool {
  VertexId num_vertices = 0;
  std::vector<std::uint64_t> offsets;  // size() == set count + 1
  std::vector<VertexId> vertices;      // ascending within each set
};

class RRRPool {
 public:
  explicit RRRPool(VertexId num_vertices) : num_vertices_(num_vertices) {}

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }

  /// Grows the pool to `count` slots (never shrinks). Single-threaded;
  /// called by the driver between sampling rounds.
  void resize(std::size_t count);

  RRRSet& operator[](std::size_t i) noexcept { return sets_[i]; }
  const RRRSet& operator[](std::size_t i) const noexcept { return sets_[i]; }

  [[nodiscard]] const std::vector<RRRSet>& sets() const noexcept { return sets_; }

  /// Total heap footprint of all sets (OOM diagnostics; Table III notes
  /// Ripples OOMs on twitter7 without the adaptive representation).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

  /// Sum of set sizes (== total counter increments during the build).
  [[nodiscard]] std::uint64_t total_vertices() const noexcept;

  /// Average / maximum coverage as a fraction of |V| (Table I columns).
  [[nodiscard]] double average_coverage() const noexcept;
  [[nodiscard]] double max_coverage() const noexcept;

  /// Count of sets currently in bitmap representation.
  [[nodiscard]] std::size_t bitmap_count() const noexcept;

  /// Copies every set into one contiguous CSR image (parallel fill;
  /// bitmap sets are expanded to sorted vertex runs).
  [[nodiscard]] FlatPool flatten() const;

 private:
  VertexId num_vertices_;
  std::vector<RRRSet> sets_;
};

}  // namespace eimm
