// Cheap seed heuristics — the comparison points the example applications
// use to show what principled influence maximization buys.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace eimm {

/// Top-k vertices by out-degree (the folk heuristic for "influencers").
std::vector<VertexId> top_degree_seeds(const CSRGraph& forward, std::size_t k);

/// k distinct uniform-random vertices (deterministic in seed).
std::vector<VertexId> random_seeds(VertexId num_vertices, std::size_t k,
                                   std::uint64_t seed);

}  // namespace eimm
