// Edge-list → CSR construction with the clean-up passes real SNAP inputs
// need: self-loop removal, duplicate-edge removal, optional
// symmetrization (SNAP "undirected" files list each edge once), and
// optional compaction of sparse vertex id spaces.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace eimm {

struct BuildOptions {
  bool remove_self_loops = true;
  bool dedup = true;
  /// Add the reverse of every edge (treat input as undirected).
  bool symmetrize = false;
  /// Renumber vertices to a dense [0, n) id space (drops isolated ids
  /// that never appear in any edge).
  bool compact_ids = false;
};

/// Builds a CSR graph from an edge list. `num_vertices` of 0 means "infer
/// from max id + 1" (ignored when compact_ids is set).
CSRGraph build_csr(std::vector<WeightedEdge> edges, VertexId num_vertices = 0,
                   const BuildOptions& options = {});

/// Convenience: build both orientations at once.
DiffusionGraph build_diffusion_graph(std::vector<WeightedEdge> edges,
                                     VertexId num_vertices = 0,
                                     const BuildOptions& options = {});

}  // namespace eimm
