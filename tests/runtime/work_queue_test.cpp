#include "runtime/work_queue.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(JobPool, CoversAllJobsSingleWorker) {
  JobPool pool(100, 7, 1);
  std::vector<int> seen(100, 0);
  for (JobBatch b = pool.next(0); !b.empty(); b = pool.next(0)) {
    for (std::size_t i = b.begin; i < b.end; ++i) seen[i]++;
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(JobPool, OwnerDrainsInAscendingOrder) {
  JobPool pool(64, 8, 1);
  std::size_t last_end = 0;
  for (JobBatch b = pool.next(0); !b.empty(); b = pool.next(0)) {
    EXPECT_EQ(b.begin, last_end);
    last_end = b.end;
  }
  EXPECT_EQ(last_end, 64u);
}

TEST(JobPool, EmptyPool) {
  JobPool pool(0, 4, 2);
  EXPECT_TRUE(pool.next(0).empty());
  EXPECT_TRUE(pool.next(1).empty());
  EXPECT_EQ(pool.total_batches(), 0u);
}

TEST(JobPool, BatchCountMatchesCeilDiv) {
  JobPool pool(100, 7, 1);  // 100/7 -> 15 batches
  EXPECT_EQ(pool.total_batches(), 15u);
}

TEST(JobPool, EachJobProcessedExactlyOnceParallel) {
  constexpr std::size_t kJobs = 10000;
  const auto workers = static_cast<std::size_t>(omp_get_max_threads());
  JobPool pool(kJobs, 16, workers);
  std::vector<std::atomic<int>> seen(kJobs);
#pragma omp parallel
  {
    const auto wid = static_cast<std::size_t>(omp_get_thread_num());
    for (JobBatch b = pool.next(wid); !b.empty(); b = pool.next(wid)) {
      for (std::size_t i = b.begin; i < b.end; ++i) {
        seen[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "job " << i;
  }
}

TEST(JobPool, StealingKicksInUnderImbalance) {
  // Worker 0's jobs are slow; the others finish instantly and must steal.
  const std::size_t workers = 4;
  constexpr std::size_t kJobs = 64;
  JobPool pool(kJobs, 1, workers);
  std::vector<std::atomic<int>> seen(kJobs);
#pragma omp parallel num_threads(4)
  {
    const auto wid = static_cast<std::size_t>(omp_get_thread_num());
    for (JobBatch b = pool.next(wid); !b.empty(); b = pool.next(wid)) {
      for (std::size_t i = b.begin; i < b.end; ++i) {
        // Jobs in worker 0's original region are artificially slow.
        if (i < kJobs / workers && wid == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        seen[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(seen[i].load(), 1);
  // With three idle workers and one slow one, stealing must have happened
  // (each worker starts with 16 batches; idle ones finish and steal).
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(JobPool, InvalidConstructionThrows) {
  EXPECT_THROW(JobPool(10, 0, 2), CheckError);
  EXPECT_THROW(JobPool(10, 4, 0), CheckError);
}

TEST(JobPool, InvalidWorkerIdThrows) {
  JobPool pool(10, 2, 2);
  EXPECT_THROW(pool.next(2), CheckError);
}

TEST(JobPool, BatchSizeLargerThanJobs) {
  JobPool pool(5, 100, 2);
  std::size_t total = 0;
  for (std::size_t w = 0; w < 2; ++w) {
    for (JobBatch b = pool.next(w); !b.empty(); b = pool.next(w)) {
      total += b.size();
    }
  }
  EXPECT_EQ(total, 5u);
}

}  // namespace
}  // namespace eimm
