// v4 snapshot checksums: save stamps per-section CRC32C values into the
// section table, stream loads verify inline, mmap loads verify lazily
// (first QueryEngine) or eagerly per SnapshotLoadOptions::checksums, and
// every corruption surfaces as a typed bin::FormatError naming the
// section — never a wrong answer or UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/binary.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/crc32c.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

// Header layout (little-endian): magic[8], u32 version, u32
// section_count, u64 file_bytes, then section_count entries of
// {u32 id, u32 crc, u64 offset, u64 bytes}. Pre-v4 the crc slot is the
// zeroed reserved word.
constexpr std::size_t kVersionAt = 8;
constexpr std::size_t kSectionCountAt = 12;
constexpr std::size_t kTableAt = 24;
constexpr std::size_t kEntryBytes = 24;

SketchStore make_store() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 2048;
  return SketchStore::build(g, options, "amazon-checksum");
}

std::string snapshot_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

template <typename T>
T load_at(const std::string& data, std::size_t at) {
  T v{};
  std::memcpy(&v, data.data() + at, sizeof v);
  return v;
}

template <typename T>
void store_at(std::string& data, std::size_t at, T v) {
  std::memcpy(data.data() + at, &v, sizeof v);
}

TEST(SnapshotChecksum, DefaultSaveIsV4WithValidSectionCrcs) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_v4.sks");
  store.save_file(path);
  const std::string data = read_file(path);

  EXPECT_EQ(load_at<std::uint32_t>(data, kVersionAt), 4u);
  const auto sections = load_at<std::uint32_t>(data, kSectionCountAt);
  EXPECT_GE(sections, 7u);
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::size_t entry = kTableAt + s * kEntryBytes;
    const auto stamped = load_at<std::uint32_t>(data, entry + 4);
    const auto offset = load_at<std::uint64_t>(data, entry + 8);
    const auto bytes = load_at<std::uint64_t>(data, entry + 16);
    EXPECT_EQ(stamped, crc32c(data.data() + offset, bytes)) << "section " << s;
  }
}

TEST(SnapshotChecksum, ChecksumOffReproducesLegacyBytes) {
  const SketchStore store = make_store();
  const std::string v4_path = snapshot_path("eimm_ck_on.sks");
  const std::string legacy_path = snapshot_path("eimm_ck_off.sks");
  store.save_file(v4_path);
  SnapshotSaveOptions no_checksum;
  no_checksum.checksum = false;
  store.save_file(legacy_path, no_checksum);

  const std::string v4 = read_file(v4_path);
  std::string legacy = read_file(legacy_path);
  EXPECT_EQ(load_at<std::uint32_t>(legacy, kVersionAt), 2u);

  // The two files differ only in the version word and the crc slots:
  // rewriting those in the legacy bytes must reproduce the v4 bytes.
  ASSERT_EQ(legacy.size(), v4.size());
  store_at(legacy, kVersionAt, std::uint32_t{4});
  const auto sections = load_at<std::uint32_t>(v4, kSectionCountAt);
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::size_t crc_at = kTableAt + s * kEntryBytes + 4;
    EXPECT_EQ(load_at<std::uint32_t>(legacy, crc_at), 0u) << "section " << s;
    store_at(legacy, crc_at, load_at<std::uint32_t>(v4, crc_at));
  }
  EXPECT_EQ(legacy, v4);
}

TEST(SnapshotChecksum, StreamLoadVerifiesInline) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_stream.sks");
  store.save_file(path);

  SnapshotLoadOptions stream;
  stream.mode = SnapshotLoadMode::kStream;
  const SketchStore loaded = SketchStore::load_file(path, stream);
  EXPECT_TRUE(loaded.load_stats().checksummed);
  EXPECT_TRUE(loaded.load_stats().checksums_verified);
  EXPECT_FALSE(loaded.checksums_pending());
  EXPECT_TRUE(store == loaded);
}

TEST(SnapshotChecksum, LazyMapLoadDefersToQueryEngine) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_lazy.sks");
  store.save_file(path);

  const SketchStore mapped = SketchStore::load_file(path);  // kAuto + kLazy
  EXPECT_TRUE(mapped.load_stats().mmap_backed);
  EXPECT_TRUE(mapped.load_stats().checksummed);
  EXPECT_FALSE(mapped.load_stats().checksums_verified);
  EXPECT_TRUE(mapped.checksums_pending());

  // The first engine construction forces verification; afterwards the
  // store no longer reports pending work.
  const QueryEngine engine(mapped);
  EXPECT_FALSE(mapped.checksums_pending());
  EXPECT_EQ(engine.top_k(6).seeds, QueryEngine(store).top_k(6).seeds);
}

TEST(SnapshotChecksum, EagerMapLoadVerifiesUpFront) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_eager.sks");
  store.save_file(path);

  SnapshotLoadOptions eager;
  eager.mode = SnapshotLoadMode::kMap;
  eager.checksums = ChecksumMode::kEager;
  const SketchStore mapped = SketchStore::load_file(path, eager);
  EXPECT_TRUE(mapped.load_stats().checksums_verified);
  EXPECT_FALSE(mapped.checksums_pending());
}

TEST(SnapshotChecksum, CorruptSectionIsCaughtOnEveryVerifyingPath) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_corrupt.sks");
  store.save_file(path);
  std::string data = read_file(path);

  // Flip one byte deep inside the sketch-vertices payload (table entry
  // 2) without touching the table. Structural validation cannot notice
  // — only the section checksum can.
  const auto offset =
      load_at<std::uint64_t>(data, kTableAt + 2 * kEntryBytes + 8);
  const auto bytes =
      load_at<std::uint64_t>(data, kTableAt + 2 * kEntryBytes + 16);
  const std::size_t victim = offset + bytes / 2;
  data[victim] = static_cast<char>(data[victim] ^ 0x10);
  write_file(path, data);

  // Stream load: caught inline.
  SnapshotLoadOptions stream;
  stream.mode = SnapshotLoadMode::kStream;
  try {
    SketchStore::load_file(path, stream);
    FAIL() << "stream load accepted a corrupt section";
  } catch (const bin::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    EXPECT_FALSE(e.section().empty());
    EXPECT_TRUE(e.offset().has_value());
  }

  // Eager mmap load: caught at load time.
  SnapshotLoadOptions eager;
  eager.mode = SnapshotLoadMode::kMap;
  eager.checksums = ChecksumMode::kEager;
  EXPECT_THROW(SketchStore::load_file(path, eager), bin::FormatError);

  // Lazy mmap load: the load itself succeeds (O(table) cold start)...
  const SketchStore mapped = SketchStore::load_file(path);
  EXPECT_TRUE(mapped.checksums_pending());
  // ...and the engine constructor — the serving choke point — throws.
  EXPECT_THROW(QueryEngine{mapped}, bin::FormatError);
  // A failed verification stays retryable, not latched-as-verified.
  EXPECT_TRUE(mapped.checksums_pending());
  EXPECT_THROW(mapped.verify_checksums(), bin::FormatError);
}

TEST(SnapshotChecksum, ChecksumModeOffSkipsVerification) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_skip.sks");
  store.save_file(path);
  std::string data = read_file(path);
  const auto offset =
      load_at<std::uint64_t>(data, kTableAt + 2 * kEntryBytes + 8);
  data[offset] = static_cast<char>(data[offset] ^ 0x10);
  write_file(path, data);

  // kOff is the diagnostics escape hatch: the mmap load accepts the
  // corrupt file and reports nothing pending.
  SnapshotLoadOptions off;
  off.mode = SnapshotLoadMode::kMap;
  off.checksums = ChecksumMode::kOff;
  const SketchStore mapped = SketchStore::load_file(path, off);
  EXPECT_FALSE(mapped.checksums_pending());
  EXPECT_FALSE(mapped.load_stats().checksums_verified);
}

TEST(SnapshotChecksum, CompressedV4RoundTripsOnBothLoaders) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_compressed.sks");
  SnapshotSaveOptions save;
  save.compress = true;
  store.save_file(path, save);

  const std::string data = read_file(path);
  EXPECT_EQ(load_at<std::uint32_t>(data, kVersionAt), 4u);
  EXPECT_EQ(load_at<std::uint32_t>(data, kSectionCountAt), 8u);

  SnapshotLoadOptions stream;
  stream.mode = SnapshotLoadMode::kStream;
  const SketchStore streamed = SketchStore::load_file(path, stream);
  EXPECT_TRUE(streamed.load_stats().compressed);
  EXPECT_TRUE(streamed.load_stats().checksums_verified);
  EXPECT_TRUE(store == streamed);

  SnapshotLoadOptions eager;
  eager.mode = SnapshotLoadMode::kMap;
  eager.checksums = ChecksumMode::kEager;
  const SketchStore mapped = SketchStore::load_file(path, eager);
  EXPECT_TRUE(mapped.load_stats().checksums_verified);
  EXPECT_TRUE(store == mapped);
}

TEST(SnapshotChecksum, PreV4SnapshotsStillLoadWithoutChecksums) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_legacy_load.sks");
  SnapshotSaveOptions legacy;
  legacy.checksum = false;
  store.save_file(path, legacy);

  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kMap, SnapshotLoadMode::kStream}) {
    SnapshotLoadOptions options;
    options.mode = mode;
    options.checksums = ChecksumMode::kEager;  // must be a no-op on v2
    const SketchStore loaded = SketchStore::load_file(path, options);
    EXPECT_FALSE(loaded.load_stats().checksummed);
    EXPECT_FALSE(loaded.checksums_pending());
    EXPECT_TRUE(store == loaded);
  }
}

TEST(SnapshotChecksum, DeepValidateForcesVerificationOnMapLoads) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_ck_deep.sks");
  store.save_file(path);
  std::string data = read_file(path);
  const auto offset =
      load_at<std::uint64_t>(data, kTableAt + 2 * kEntryBytes + 8);
  data[offset] = static_cast<char>(data[offset] ^ 0x01);
  write_file(path, data);

  SnapshotLoadOptions deep;
  deep.mode = SnapshotLoadMode::kMap;
  deep.deep_validate = true;  // implies checksum verification on v4
  EXPECT_THROW(SketchStore::load_file(path, deep), bin::FormatError);
}

}  // namespace
}  // namespace eimm
