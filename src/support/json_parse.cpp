#include "support/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>

#include "support/macros.hpp"

namespace eimm {

bool JsonValue::as_bool() const {
  EIMM_CHECK(is_bool(), "JSON value is not a bool");
  return std::get<bool>(storage_);
}

double JsonValue::as_number() const {
  EIMM_CHECK(is_number(), "JSON value is not a number");
  return std::get<double>(storage_);
}

const std::string& JsonValue::as_string() const {
  EIMM_CHECK(is_string(), "JSON value is not a string");
  return std::get<std::string>(storage_);
}

const JsonArray& JsonValue::as_array() const {
  EIMM_CHECK(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(storage_);
}

const JsonObject& JsonValue::as_object() const {
  EIMM_CHECK(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(storage_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& object = as_object();
  const auto it = object.find(key);
  EIMM_CHECK(it != object.end(), "JSON object missing key");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  if (!is_object()) return false;
  const JsonObject& object = std::get<JsonObject>(storage_);
  return object.find(key) != object.end();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    EIMM_CHECK(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    EIMM_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    EIMM_CHECK(pos_ < text_.size() && text_[pos_] == c,
               "unexpected character in JSON");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        EIMM_CHECK(consume_literal("true"), "malformed literal");
        return JsonValue(true);
      case 'f':
        EIMM_CHECK(consume_literal("false"), "malformed literal");
        return JsonValue(false);
      case 'n':
        EIMM_CHECK(consume_literal("null"), "malformed literal");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.emplace(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      EIMM_CHECK(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      EIMM_CHECK(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Full \uXXXX support: BMP code points directly, astral-plane
          // code points as UTF-16 surrogate pairs (the only way JSON can
          // spell them). Everything is re-encoded as UTF-8.
          std::uint32_t code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            EIMM_CHECK(pos_ + 6 <= text_.size() && text_[pos_] == '\\' &&
                           text_[pos_ + 1] == 'u',
                       "high surrogate not followed by a \\u escape");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            EIMM_CHECK(low >= 0xDC00 && low <= 0xDFFF,
                       "high surrogate not followed by a low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else {
            EIMM_CHECK(code < 0xDC00 || code > 0xDFFF,
                       "lone low surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: EIMM_CHECK(false, "unknown escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    EIMM_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
      else EIMM_CHECK(false, "invalid \\u escape digit");
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    EIMM_CHECK(ec == std::errc{} && ptr == text_.data() + pos_,
               "malformed JSON number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace eimm
