// fused_sampling — scalar vs fused 64-wide RRR generation throughput of
// the sharded zero-copy pipeline (rrr/fused.hpp), across shard counts
// and both diffusion models.
//
// Each row samples the SAME fixed slot range [0, max_rrr) through
// ShardedSampler::generate(SegmentedPool&) twice — once with the scalar
// per-slot kernels, once with fused 64-lane traversals — via the shared
// compare_throughput rep/warmup harness, so "sets/sec" means the same
// work on both sides. Fused IC output is statistically (not bitwise)
// equivalent to scalar, so instead of the bit-match flag the sharded
// bench carries, every model gets a Monte-Carlo spread-ratio check in
// the style of tests/statcheck: full scalar and fused IMM runs, forward
// spread estimation over both seed sets, fatal when the fused seeds'
// spread falls below (1 - tolerance) x scalar. Emits a human table plus
// machine-readable BENCH_fused_sampling.json via io/json_log.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_FUSED_WORKLOAD   workload to sample (default com-YouTube — its
//                         supercritical IC weights keep lane occupancy
//                         high, the regime fusion targets)
//   EIMM_SHARDS_MAX       largest shard count in the sweep (default
//                         max(4, detected NUMA domains))
//   EIMM_FUSED_TOLERANCE  fractional spread-ratio tolerance (default
//                         0.05, matching the statcheck suite)
//   EIMM_SPREAD_SAMPLES   Monte-Carlo samples per spread estimate
//                         (default 1200)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/imm.hpp"
#include "io/json_log.hpp"
#include "numa/topology.hpp"
#include "rrr/fused.hpp"
#include "rrr/sharded.hpp"
#include "simulate/spread.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace eimm;
using namespace eimm::bench;

namespace {

// Seconds spent sampling `num_sets` slots through a fresh zero-copy
// sampler. A fresh pool+sampler per run keeps reps independent: slot
// entries must never outlive the arenas they point into.
double sample_once(const DiffusionGraph& graph, const ShardedConfig& config,
                   std::uint64_t num_sets) {
  SegmentedPool pool(graph.num_vertices());
  pool.resize(num_sets);
  ShardedSampler sampler(graph.reverse, config);
  Timer timer;
  sampler.generate(pool, 0, num_sets, nullptr);
  return timer.seconds();
}

// Monte-Carlo spread of `seeds` under the statcheck-style fixed seeding.
double spread_of(const DiffusionGraph& graph, DiffusionModel model,
                 const std::vector<VertexId>& seeds, std::uint64_t rng_seed,
                 int num_samples) {
  SpreadOptions opt;
  opt.num_samples = num_samples;
  opt.rng_seed = rng_seed ^ 0xC0FFEEull;
  return estimate_spread(graph.forward, model, seeds, opt);
}

}  // namespace

int main() {
  const BenchConfig config = load_config();
  print_banner("fused_sampling — scalar vs fused 64-wide RRR generation",
               config);

  const std::string workload =
      env_string("EIMM_FUSED_WORKLOAD").value_or("com-YouTube");
  const int domains = numa_topology().num_nodes();
  const int max_shards =
      static_cast<int>(env_int("EIMM_SHARDS_MAX", std::max(4, domains)));
  const double tolerance = env_double("EIMM_FUSED_TOLERANCE", 0.05);
  const int spread_samples =
      static_cast<int>(env_int("EIMM_SPREAD_SAMPLES", 1200));

  std::vector<FusedBenchResult> rows;
  AsciiTable table({"Model", "Shards", "Scalar s", "Fused s", "Scalar/s",
                    "Fused/s", "Speedup", "SpreadRatio", "OK"});
  bool spread_ok = true;

  for (const DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold}) {
    const char* model_name =
        model == DiffusionModel::kIndependentCascade ? "IC" : "LT";
    const DiffusionGraph graph = load_workload(config, workload, model);

    // Quality gate, once per model (fused pool content is invariant
    // under the shard count, so one comparison covers the whole sweep):
    // seeds from a full scalar run vs a full fused run, compared by
    // forward Monte-Carlo spread — the bit-match check's statistical
    // replacement.
    ImmOptions options = imm_options(config, model, config.max_threads);
    options.shards = max_shards;
    options.fused_sampling = FusedSampling::kOff;
    const ImmResult scalar_imm = run_imm(graph, options, Engine::kEfficient);
    options.fused_sampling = FusedSampling::kOn;
    const ImmResult fused_imm = run_imm(graph, options, Engine::kEfficient);
    const double scalar_spread = spread_of(graph, model, scalar_imm.seeds,
                                           config.rng_seed, spread_samples);
    const double fused_spread = spread_of(graph, model, fused_imm.seeds,
                                          config.rng_seed, spread_samples);
    const double spread_ratio =
        scalar_spread > 0.0 ? fused_spread / scalar_spread : 1.0;
    const bool within = spread_ratio >= 1.0 - tolerance;
    spread_ok = spread_ok && within;
    std::printf(
        "%s spread: scalar %.1f vs fused %.1f (ratio %.4f, tolerance %.2f)\n",
        model_name, scalar_spread, fused_spread, spread_ratio, tolerance);

    for (const int shards : thread_sweep(max_shards)) {
      ShardedConfig shard_config;
      shard_config.shards = shards;
      shard_config.model = model;
      shard_config.rng_seed = config.rng_seed;
      const std::uint64_t num_sets = config.max_rrr_sets;

      ShardedConfig scalar_config = shard_config;
      scalar_config.fused = false;
      ShardedConfig fused_config = shard_config;
      fused_config.fused = true;
      const ThroughputComparison cmp = compare_throughput(
          std::string(model_name) + "/shards=" + std::to_string(shards),
          num_sets, config.reps,
          [&] { return sample_once(graph, scalar_config, num_sets); },
          [&] { return sample_once(graph, fused_config, num_sets); });

      table.new_row()
          .add(model_name)
          .add(static_cast<std::uint64_t>(shards))
          .add(cmp.baseline_seconds, 3)
          .add(cmp.variant_seconds, 3)
          .add(cmp.baseline_per_second(), 0)
          .add(cmp.variant_per_second(), 0)
          .add(cmp.speedup(), 2)
          .add(spread_ratio, 4)
          .add(within ? "yes" : "NO");

      FusedBenchResult row;
      row.workload = workload;
      row.model = model_name;
      row.shards = shards;
      row.threads = config.max_threads;
      row.num_rrr_sets = num_sets;
      row.scalar_seconds = cmp.baseline_seconds;
      row.fused_seconds = cmp.variant_seconds;
      row.scalar_sets_per_second = cmp.baseline_per_second();
      row.fused_sets_per_second = cmp.variant_per_second();
      row.speedup = cmp.speedup();
      row.spread_ratio = spread_ratio;
      row.spread_within_tolerance = within;
      rows.push_back(row);
    }
  }

  std::printf("\n");
  table.set_title("Fused sampling sweep: " + workload + " (" +
                  std::to_string(domains) + " NUMA domain(s) detected)");
  table.print(std::cout);

  const std::string path = write_fused_bench_json_file(
      bench_json_path("BENCH_fused_sampling.json"), domains, rows);
  std::printf("\nresults: %s\n", path.c_str());

  if (!spread_ok) {
    std::fprintf(stderr,
                 "ERROR: fused seed spread fell below (1 - %.2f) x scalar\n",
                 tolerance);
    return 1;
  }
  return 0;
}
