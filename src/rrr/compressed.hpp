// Delta-varint compressed RRR-set storage — the HBMax-style alternative
// the paper discusses and rejects (§IV-C):
//
//   "Prior effort ... has adopted Huffman coding or bitmap coding to
//    compress RRRsets. While effective in reducing storage requirements,
//    these methods come with a trade-off, notably increasing the
//    computational overhead associated with encoding and decoding."
//
// This module makes that trade-off measurable: a sorted vertex list is
// stored as LEB128-varint-encoded gaps (the shared rrr/gap_codec stream:
// first element absolute + 1, then strictly positive deltas), typically
// 1-2 bytes per member instead of 4. Membership requires a linear decode
// — O(s) versus the adaptive representation's O(log s)/O(1) — which is
// exactly the codec overhead the paper's adaptive scheme avoids.
// bench/micro_rrr quantifies it per set; bench/compressed_pool at pool
// scale. Decoding a corrupt or truncated payload throws CheckError (with
// the byte offset) — never reads out of bounds — so the type is safe to
// back with on-disk input (from_encoded).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "rrr/gap_codec.hpp"

namespace eimm {

class CompressedSet {
 public:
  CompressedSet() = default;

  /// Encodes `vertices` (any order; duplicates removed).
  static CompressedSet encode(std::vector<VertexId> vertices);

  /// Adopts an already-encoded gap stream of `count` members — the
  /// snapshot/test seam for feeding untrusted bytes; decoding validates
  /// lazily (CheckError on the first malformed varint).
  static CompressedSet from_encoded(std::size_t count,
                                    std::vector<std::uint8_t> bytes);

  /// Number of members.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Encoded payload bytes (the memory the compression buys). Reports
  /// the size()-based footprint: encode() shrinks to fit, so this is the
  /// held allocation on the encode side, and a moved-into or slack
  /// buffer is never overstated.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bytes_.size() * sizeof(std::uint8_t);
  }

  /// Membership test by linear decode: O(size). Early-exits once the
  /// running value passes v (gaps are strictly positive). Throws
  /// CheckError on a corrupt payload.
  [[nodiscard]] bool contains(VertexId v) const { return run().contains(v); }

  /// Invokes fn(vertex) for every member in ascending order (see
  /// rrr/gap_codec.hpp for the stream layout).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    run().for_each(std::forward<Fn>(fn));
  }

  /// Full decode back to the sorted vertex list.
  [[nodiscard]] std::vector<VertexId> decode() const;

 private:
  [[nodiscard]] GapRun run() const noexcept {
    return GapRun{bytes_.data(), bytes_.size(),
                  static_cast<std::uint32_t>(count_)};
  }

  std::size_t count_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace eimm
