#include "runtime/atomic_counters.hpp"

#include <omp.h>

namespace eimm {

CounterArray::CounterArray(std::size_t n, MemPolicy policy)
    : array_(n, policy) {
  // mmap zero-fills; nothing further needed. std::atomic<u64> is
  // trivially constructible from zero bytes on all supported ABIs.
  static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));
}

void CounterArray::reset() noexcept {
  const std::size_t n = array_.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    array_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> CounterArray::snapshot() const {
  std::vector<std::uint64_t> out(array_.size());
  for (std::size_t i = 0; i < array_.size(); ++i) out[i] = get(i);
  return out;
}

std::uint64_t CounterArray::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < array_.size(); ++i) sum += get(i);
  return sum;
}

}  // namespace eimm
