#include "numa/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace eimm {
namespace {

TEST(ParseCpuList, SingleValue) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("7"), (std::vector<int>{7}));
}

TEST(ParseCpuList, Range) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParseCpuList, MixedRangesAndSingles) {
  EXPECT_EQ(parse_cpu_list("0-2,5,8-9"),
            (std::vector<int>{0, 1, 2, 5, 8, 9}));
}

TEST(ParseCpuList, EmptyString) {
  EXPECT_TRUE(parse_cpu_list("").empty());
}

TEST(ParseCpuList, IgnoresMalformedFragments) {
  const auto result = parse_cpu_list("abc,2,x-y");
  EXPECT_EQ(result, (std::vector<int>{2}));
}

TEST(ParseCpuList, TrailingComma) {
  EXPECT_EQ(parse_cpu_list("1,2,"), (std::vector<int>{1, 2}));
}

TEST(ParseCpuList, InvertedRangeYieldsNothing) {
  EXPECT_TRUE(parse_cpu_list("5-3").empty());
}

TEST(Topology, AtLeastOneNode) {
  const NumaTopology& topo = numa_topology();
  EXPECT_GE(topo.num_nodes(), 1);
  EXPECT_FALSE(topo.nodes.empty());
}

TEST(Topology, CpuMapCoversHardwareThreads) {
  const NumaTopology& topo = numa_topology();
  EXPECT_GE(topo.cpu_to_node.size(), 1u);
  for (const int node : topo.cpu_to_node) {
    EXPECT_TRUE(std::find(topo.nodes.begin(), topo.nodes.end(), node) !=
                topo.nodes.end())
        << "cpu mapped to unknown node " << node;
  }
}

TEST(Topology, CurrentNodeIsKnown) {
  const NumaTopology& topo = numa_topology();
  const int node = topo.current_node();
  EXPECT_TRUE(std::find(topo.nodes.begin(), topo.nodes.end(), node) !=
              topo.nodes.end());
}

TEST(Topology, IsNumaConsistentWithNodeCount) {
  const NumaTopology& topo = numa_topology();
  EXPECT_EQ(topo.is_numa(), topo.num_nodes() > 1);
}

}  // namespace
}  // namespace eimm
