#include "serve/query_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "seedselect/select.hpp"
#include "support/macros.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

SketchStore make_sampled_store(const std::string& workload,
                               DiffusionModel model, std::size_t sets,
                               std::size_t k_max, std::uint64_t seed = 42) {
  const DiffusionGraph g = make_workload_with_weights(workload, model, 0.01);
  return SketchStore::from_pool(testing::sample_pool(g, model, sets, seed),
                                k_max);
}

TEST(QueryEngine, TopKPrefixMatchesLiveKernel) {
  const SketchStore store = make_sampled_store(
      "com-Amazon", DiffusionModel::kIndependentCascade, 250, 10);
  const QueryEngine engine(store);

  for (std::size_t k = 1; k <= 10; ++k) {
    QueryOptions q;
    q.k = k;
    const QueryResult cached = engine.top_k(k);
    const QueryResult live = engine.select(q);
    EXPECT_EQ(cached.seeds, live.seeds) << "k=" << k;
    EXPECT_EQ(cached.marginal_coverage, live.marginal_coverage) << "k=" << k;
    EXPECT_EQ(cached.covered_sketches, live.covered_sketches) << "k=" << k;
    EXPECT_DOUBLE_EQ(cached.estimated_spread, live.estimated_spread)
        << "k=" << k;
  }
}

TEST(QueryEngine, SmallerKIsAPrefixOfLargerK) {
  const SketchStore store = make_sampled_store(
      "com-DBLP", DiffusionModel::kIndependentCascade, 250, 8);
  const QueryEngine engine(store);
  const QueryResult full = engine.top_k(8);
  const QueryResult three = engine.top_k(3);
  ASSERT_LE(three.seeds.size(), full.seeds.size());
  EXPECT_TRUE(std::equal(three.seeds.begin(), three.seeds.end(),
                         full.seeds.begin()));
}

TEST(QueryEngine, BlacklistExcludesSeeds) {
  const SketchStore store = make_sampled_store(
      "com-Amazon", DiffusionModel::kIndependentCascade, 250, 6);
  const QueryEngine engine(store);
  const QueryResult unconstrained = engine.top_k(6);
  ASSERT_GE(unconstrained.seeds.size(), 2u);

  QueryOptions q;
  q.k = 6;
  q.forbidden = {unconstrained.seeds[0], unconstrained.seeds[1]};
  const QueryResult constrained = engine.select(q);
  for (const VertexId banned : q.forbidden) {
    EXPECT_EQ(std::count(constrained.seeds.begin(), constrained.seeds.end(),
                         banned),
              0);
  }
  // Banning the top picks can only lose coverage.
  EXPECT_LE(constrained.covered_sketches, unconstrained.covered_sketches);
}

TEST(QueryEngine, WhitelistRestrictsSeeds) {
  const SketchStore store = make_sampled_store(
      "com-DBLP", DiffusionModel::kIndependentCascade, 250, 5);
  const QueryEngine engine(store);

  QueryOptions q;
  q.k = 5;
  for (VertexId v = 0; v < store.num_vertices() / 3; ++v) {
    q.candidates.push_back(v);
  }
  const QueryResult result = engine.select(q);
  EXPECT_FALSE(result.seeds.empty());
  for (const VertexId s : result.seeds) {
    EXPECT_LT(s, store.num_vertices() / 3);
  }
}

TEST(QueryEngine, BlacklistWinsOverWhitelist) {
  const SketchStore store = make_sampled_store(
      "com-Amazon", DiffusionModel::kIndependentCascade, 200, 4);
  const QueryEngine engine(store);

  QueryOptions allowed_only;
  allowed_only.k = 1;
  allowed_only.candidates = {engine.top_k(1).seeds[0]};
  ASSERT_EQ(engine.select(allowed_only).seeds.size(), 1u);

  QueryOptions contradictory = allowed_only;
  contradictory.forbidden = contradictory.candidates;
  EXPECT_TRUE(engine.select(contradictory).seeds.empty());
}

TEST(QueryEngine, ConstrainedQueryMatchesEfficientSelectWithMask) {
  // Cross-validation: the serving kernel and the seedselect kernel with
  // an eligibility mask must agree seed-for-seed on the same pool.
  const DiffusionGraph g = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.01);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 300, 5);
  const std::size_t k = 6;
  const SketchStore store = SketchStore::from_pool(pool, k);
  const QueryEngine engine(store);

  QueryOptions q;
  q.k = k;
  q.forbidden = {engine.top_k(1).seeds[0], 3, 11};
  const QueryResult served = engine.select(q);

  std::vector<std::uint8_t> eligible(pool.num_vertices(), 1);
  for (const VertexId v : q.forbidden) eligible[v] = 0;
  CounterArray counters(pool.num_vertices());
  SelectionOptions sopt;
  sopt.k = k;
  sopt.eligible = &eligible;
  const SelectionResult direct = efficient_select(pool, counters, sopt);

  EXPECT_EQ(served.seeds, direct.seeds);
  EXPECT_EQ(served.marginal_coverage, direct.marginal_coverage);
  EXPECT_EQ(served.covered_sketches, direct.covered_sets);
}

TEST(QueryEngine, EvaluateMatchesBruteForceUnion) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.01);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 200, 31);
  const SketchStore store = SketchStore::from_pool(pool, 4);
  const QueryEngine engine(store);

  const std::vector<VertexId> seeds = {5, 9, 5, 40};  // duplicate on purpose
  const MarginalGainResult eval = engine.evaluate(seeds);

  std::vector<std::uint8_t> covered(pool.size(), 0);
  std::uint64_t total = 0;
  std::vector<std::uint64_t> expected_gains;
  for (const VertexId v : seeds) {
    std::uint64_t gain = 0;
    for (std::size_t s = 0; s < pool.size(); ++s) {
      if (covered[s] == 0 && pool[s].contains(v)) {
        covered[s] = 1;
        ++gain;
      }
    }
    expected_gains.push_back(gain);
    total += gain;
  }
  EXPECT_EQ(eval.incremental_coverage, expected_gains);
  EXPECT_EQ(eval.covered_sketches, total);
  EXPECT_EQ(eval.incremental_coverage[2], 0u);  // duplicate adds nothing
}

TEST(QueryEngine, EvaluateOfGreedySeedsMatchesQueryCoverage) {
  const SketchStore store = make_sampled_store(
      "com-Amazon", DiffusionModel::kIndependentCascade, 250, 5);
  const QueryEngine engine(store);
  const QueryResult top = engine.top_k(5);
  const MarginalGainResult eval = engine.evaluate(top.seeds);
  EXPECT_EQ(eval.covered_sketches, top.covered_sketches);
  EXPECT_EQ(eval.incremental_coverage,
            std::vector<std::uint64_t>(top.marginal_coverage.begin(),
                                       top.marginal_coverage.end()));
}

TEST(QueryEngine, BatchMatchesSerialAnswers) {
  const SketchStore store = make_sampled_store(
      "com-DBLP", DiffusionModel::kIndependentCascade, 250, 8);
  const QueryEngine engine(store);

  std::vector<QueryOptions> queries;
  for (std::size_t i = 0; i < 40; ++i) {
    QueryOptions q;
    q.k = 1 + (i % 8);
    if (i % 3 == 1) q.forbidden = {static_cast<VertexId>(i)};
    if (i % 5 == 2) {
      for (VertexId v = 0; v < store.num_vertices() / 2; ++v) {
        q.candidates.push_back(v);
      }
    }
    queries.push_back(std::move(q));
  }

  const std::vector<QueryResult> batch1 = engine.run_batch(queries, 1);
  const std::vector<QueryResult> batch4 = engine.run_batch(queries, 4);
  ASSERT_EQ(batch1.size(), queries.size());
  ASSERT_EQ(batch4.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult serial = engine.answer(queries[i]);
    EXPECT_EQ(batch1[i].seeds, serial.seeds) << "query " << i;
    EXPECT_EQ(batch4[i].seeds, serial.seeds) << "query " << i;
    EXPECT_EQ(batch4[i].covered_sketches, serial.covered_sketches)
        << "query " << i;
  }
}

TEST(QueryEngine, RejectsInvalidQueries) {
  const SketchStore store = make_sampled_store(
      "com-Amazon", DiffusionModel::kIndependentCascade, 100, 4);
  const QueryEngine engine(store);

  QueryOptions zero_k;
  zero_k.k = 0;
  EXPECT_THROW(engine.select(zero_k), CheckError);
  EXPECT_THROW(engine.top_k(0), CheckError);

  QueryOptions above_cap;
  above_cap.k = store.k_max() + 1;
  EXPECT_THROW(engine.select(above_cap), CheckError);
  EXPECT_THROW(engine.top_k(store.k_max() + 1), CheckError);

  QueryOptions bad_candidate;
  bad_candidate.k = 1;
  bad_candidate.candidates = {store.num_vertices()};
  EXPECT_THROW(engine.select(bad_candidate), CheckError);

  QueryOptions bad_forbidden;
  bad_forbidden.k = 1;
  bad_forbidden.forbidden = {store.num_vertices() + 7};
  EXPECT_THROW(engine.select(bad_forbidden), CheckError);

  EXPECT_THROW(engine.evaluate({store.num_vertices()}), CheckError);
}

TEST(QueryEngine, BatchPropagatesInvalidQueryAsCatchableError) {
  // run_batch pre-validates serially, so a malformed query surfaces as
  // the same catchable CheckError a serial answer() call produces
  // (never an exception escaping the OpenMP region).
  const SketchStore store = make_sampled_store(
      "com-Amazon", DiffusionModel::kIndependentCascade, 100, 4);
  const QueryEngine engine(store);

  QueryOptions good;
  good.k = 2;
  QueryOptions bad;
  bad.k = store.k_max() + 1;
  EXPECT_THROW(engine.run_batch({good, bad, good}, 2), CheckError);

  QueryOptions bad_vertex;
  bad_vertex.k = 1;
  bad_vertex.forbidden = {store.num_vertices()};
  EXPECT_THROW(engine.run_batch({bad_vertex}, 1), CheckError);
}

}  // namespace
}  // namespace eimm
