// NUMA-aware array allocation.
//
// NumaArray<T> is the container the engines use for every large shared
// structure (graph CSR copies, the global vertex counter): an
// mmap-backed, page-aligned region with an explicit placement policy and
// a parallel first-touch pass. With one NUMA node it behaves like a
// plain huge array — identical code path, no placement effect.
#pragma once

#include <sys/mman.h>

#include <cstddef>
#include <span>
#include <utility>

#include "numa/policy.hpp"
#include "support/macros.hpp"

namespace eimm {

/// RAII mmap'd buffer with a memory policy applied before first touch.
class NumaBuffer {
 public:
  NumaBuffer() = default;

  /// Maps `bytes` of anonymous memory and applies `policy`.
  NumaBuffer(std::size_t bytes, MemPolicy policy);

  NumaBuffer(const NumaBuffer&) = delete;
  NumaBuffer& operator=(const NumaBuffer&) = delete;
  NumaBuffer(NumaBuffer&& other) noexcept { *this = std::move(other); }
  NumaBuffer& operator=(NumaBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
      policy_applied_ = std::exchange(other.policy_applied_, false);
    }
    return *this;
  }
  ~NumaBuffer() { release(); }

  [[nodiscard]] void* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  /// True when the kernel accepted the placement request (always false on
  /// single-node machines; allocation still succeeds).
  [[nodiscard]] bool policy_applied() const noexcept { return policy_applied_; }

 private:
  void release() noexcept;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool policy_applied_ = false;
};

/// Typed array over a NumaBuffer. T must be trivially destructible (the
/// buffer is released without running destructors); elements are
/// zero-initialized by the kernel and optionally re-touched in parallel.
template <typename T>
class NumaArray {
  static_assert(std::is_trivially_destructible_v<T>,
                "NumaArray elements must be trivially destructible");

 public:
  NumaArray() = default;
  NumaArray(std::size_t count, MemPolicy policy)
      : buffer_(count * sizeof(T), policy), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] T* data() noexcept { return static_cast<T*>(buffer_.data()); }
  [[nodiscard]] const T* data() const noexcept {
    return static_cast<const T*>(buffer_.data());
  }
  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] std::span<T> span() noexcept { return {data(), count_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data(), count_};
  }
  [[nodiscard]] bool policy_applied() const noexcept {
    return buffer_.policy_applied();
  }

 private:
  NumaBuffer buffer_;
  std::size_t count_ = 0;
};

/// Touches every page of [data, data+count) from OpenMP threads with a
/// static schedule, so first-touch placement matches the threads' later
/// access pattern when the policy is kDefault/kLocal.
void parallel_first_touch(void* data, std::size_t bytes);

}  // namespace eimm
