// Build-matrix smoke test: the cheapest possible end-to-end exercise of
// the top-level pipeline (generator -> builder -> weights -> run_imm)
// under every (model, engine) combination. This suite is what CI keeps
// when the heavy integration suites are filtered out, so it must stay
// fast (< 1 s) while still touching every layer the umbrella library
// links together.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eimm {
namespace {

constexpr VertexId kVertices = 200;
constexpr EdgeId kEdges = 800;

DiffusionGraph tiny_er_graph(DiffusionModel model) {
  DiffusionGraph g =
      build_diffusion_graph(gen_erdos_renyi(kVertices, kEdges, 42), kVertices);
  assign_paper_weights(g.reverse, model, 42);
  mirror_weights_to_forward(g.reverse, g.forward);
  return g;
}

ImmOptions smoke_options(DiffusionModel model) {
  ImmOptions opt;
  opt.k = 4;
  opt.epsilon = 0.5;
  opt.model = model;
  opt.rng_seed = 7;
  opt.max_rrr_sets = 20'000;  // keeps LT's huge theta tractable
  return opt;
}

class BuildMatrix : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(BuildMatrix, EfficientEngineRunsEndToEnd) {
  const DiffusionModel model = GetParam();
  const DiffusionGraph g = tiny_er_graph(model);
  const ImmResult result = run_efficient_imm(g, smoke_options(model));

  ASSERT_EQ(result.seeds.size(), 4u);
  const std::set<VertexId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), result.seeds.size());
  for (const VertexId s : result.seeds) EXPECT_LT(s, kVertices);

  EXPECT_GT(result.num_rrr_sets, 0u);
  EXPECT_GT(result.coverage_fraction, 0.0);
  EXPECT_LE(result.coverage_fraction, 1.0);
  EXPECT_GT(result.estimated_spread, 0.0);
  EXPECT_FALSE(result.iterations.empty());
}

TEST_P(BuildMatrix, EnginesAgreeOnSeeds) {
  // Identical pools + lowest-id tie-breaks mean the baseline engine must
  // return the same seed sequence — the cross-validation the kernels
  // document.
  const DiffusionModel model = GetParam();
  const DiffusionGraph g = tiny_er_graph(model);
  const ImmResult efficient = run_efficient_imm(g, smoke_options(model));
  const ImmResult baseline = run_baseline_imm(g, smoke_options(model));
  EXPECT_EQ(efficient.seeds, baseline.seeds);
}

TEST_P(BuildMatrix, DeterministicAcrossRuns) {
  const DiffusionModel model = GetParam();
  const DiffusionGraph g = tiny_er_graph(model);
  const ImmResult a = run_efficient_imm(g, smoke_options(model));
  const ImmResult b = run_efficient_imm(g, smoke_options(model));
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_rrr_sets, b.num_rrr_sets);
}

std::string model_name(const ::testing::TestParamInfo<DiffusionModel>& info) {
  return info.param == DiffusionModel::kIndependentCascade ? "IC" : "LT";
}

INSTANTIATE_TEST_SUITE_P(Models, BuildMatrix,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         model_name);

}  // namespace
}  // namespace eimm
