// Shared configuration and helpers for the paper-reproduction benches.
//
// Every binary honours the same environment knobs so the whole suite can
// be scaled from "smoke test on a laptop" (defaults) toward paper-scale:
//   EIMM_SCALE          workload scale factor (default 0.3 — must match
//                       BenchConfig::scale; tests/bench/common_test
//                       enforces the agreement)
//   EIMM_THREADS        max threads for sweeps (default: all cores)
//   EIMM_BENCH_REPS     repetitions; best (min) time is reported (default 1)
//   EIMM_K              seed budget (default 50, as in the paper)
//   EIMM_EPSILON        accuracy (default 0.5, as in the paper)
//   EIMM_MAX_RRR        RRR-set cap per run (default 1M)
//   EIMM_BENCH_JSON_DIR directory for machine-readable BENCH_*.json
//                       results (default: current directory)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/imm.hpp"
#include "workloads/registry.hpp"

namespace eimm::bench {

struct BenchConfig {
  double scale = 0.3;
  int max_threads = 0;  // resolved to hardware at load time
  int reps = 1;
  std::size_t k = 50;
  double epsilon = 0.5;
  std::uint64_t rng_seed = 0xBE9C;
  std::uint64_t max_rrr_sets = 1u << 20;
};

/// Reads the EIMM_* environment into a config (resolving thread count).
BenchConfig load_config();

/// 1, 2, 4, ..., up to and including max (max appended if not a power
/// of two) — the sweep the paper's strong-scaling figures use.
std::vector<int> thread_sweep(int max);

/// Minimum over `reps` runs of fn() (each returning seconds).
double best_seconds(int reps, const std::function<double()>& fn);

/// One scalar-vs-variant throughput comparison (see compare_throughput):
/// best-of-reps seconds per side over the same `units` of work.
struct ThroughputComparison {
  std::string label;
  std::uint64_t units = 0;  ///< work items each run processes (e.g. RRR sets)
  double baseline_seconds = 0.0;
  double variant_seconds = 0.0;

  [[nodiscard]] double baseline_per_second() const {
    return baseline_seconds > 0.0
               ? static_cast<double>(units) / baseline_seconds
               : 0.0;
  }
  [[nodiscard]] double variant_per_second() const {
    return variant_seconds > 0.0 ? static_cast<double>(units) / variant_seconds
                                 : 0.0;
  }
  /// baseline_seconds / variant_seconds (> 1 means the variant is faster).
  [[nodiscard]] double speedup() const {
    return variant_seconds > 0.0 ? baseline_seconds / variant_seconds : 0.0;
  }
};

/// The rep/warmup loop every baseline-vs-variant bench was re-implementing:
/// runs each side once untimed (warmup — page in the workload, size the
/// arenas), then `reps` timed runs per side, keeping the best. Both
/// callbacks return the seconds of the phase under test and must process
/// the same `units` of work per run.
ThroughputComparison compare_throughput(const std::string& label,
                                        std::uint64_t units, int reps,
                                        const std::function<double()>& baseline,
                                        const std::function<double()>& variant);

/// ImmOptions preset from the config for one model/engine run.
ImmOptions imm_options(const BenchConfig& config, DiffusionModel model,
                       int threads);

/// Workload + weights at the configured scale.
DiffusionGraph load_workload(const BenchConfig& config,
                             const std::string& name, DiffusionModel model);

/// Prints the standard bench banner (binary name, config, host info).
void print_banner(const std::string& title, const BenchConfig& config);

/// Resolved path for a machine-readable result file:
/// $EIMM_BENCH_JSON_DIR/<filename>, defaulting to ./<filename>.
std::string bench_json_path(const std::string& filename);

}  // namespace eimm::bench
