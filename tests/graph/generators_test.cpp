#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

// --- deterministic shapes ---

TEST(Generators, StarShape) {
  const auto edges = gen_star(5);
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& e : edges) EXPECT_EQ(e.src, 0u);
}

TEST(Generators, PathShape) {
  const auto edges = gen_path(4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_EQ(edges[2].dst, 3u);
}

TEST(Generators, CycleShape) {
  const auto edges = gen_cycle(4);
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges.back().src, 3u);
  EXPECT_EQ(edges.back().dst, 0u);
}

TEST(Generators, CompleteShape) {
  const auto edges = gen_complete(5);
  EXPECT_EQ(edges.size(), 20u);  // n(n-1)
}

TEST(Generators, ShapeGuards) {
  EXPECT_THROW(gen_star(1), CheckError);
  EXPECT_THROW(gen_path(1), CheckError);
  EXPECT_THROW(gen_complete(10000), CheckError);
}

// --- random families: determinism and structural properties ---

TEST(Generators, ErdosRenyiDeterministic) {
  const auto a = gen_erdos_renyi(100, 300, 7);
  const auto b = gen_erdos_renyi(100, 300, 7);
  EXPECT_EQ(a, b);
  const auto c = gen_erdos_renyi(100, 300, 8);
  EXPECT_NE(a, c);
}

TEST(Generators, ErdosRenyiEndpointsInRange) {
  for (const auto& e : gen_erdos_renyi(50, 500, 1)) {
    EXPECT_LT(e.src, 50u);
    EXPECT_LT(e.dst, 50u);
  }
}

TEST(Generators, BarabasiAlbertHeavyTail) {
  const auto g = build_csr(gen_barabasi_albert(2000, 2, 11), 0);
  const auto s = compute_graph_stats(g, false);
  // Preferential attachment: the hubs dominate. Max degree far above the
  // average, and the top 1% well above a uniform share.
  EXPECT_GT(static_cast<double>(s.max_out_degree), 8.0 * s.avg_out_degree);
  EXPECT_GT(s.top1pct_degree_share, 0.05);
}

TEST(Generators, BarabasiAlbertMinimumDegree) {
  const auto g = build_csr(gen_barabasi_albert(500, 3, 13), 0);
  // Every non-seed vertex attached with 3 (undirected) edges; dedup can
  // merge a few, but degree must be at least 1.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 1u);
  }
}

TEST(Generators, WattsStrogatzNearRegular) {
  const auto g = build_csr(gen_watts_strogatz(1000, 3, 0.0, 17), 0);
  // With beta=0 the ring lattice is exact: every vertex has degree 2k.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 6u);
  }
}

TEST(Generators, WattsStrogatzRewiringKeepsScale) {
  const auto g = build_csr(gen_watts_strogatz(1000, 3, 0.2, 17), 0);
  const auto s = compute_graph_stats(g, false);
  EXPECT_NEAR(s.avg_out_degree, 6.0, 0.5);  // dedup removes a few
}

TEST(Generators, RmatSizeAndSkew) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8;
  const auto edges = gen_rmat(params, 23);
  EXPECT_EQ(edges.size(), (1u << 12) * 8u);
  const auto g = build_csr(edges, 1u << 12);
  const auto s = compute_graph_stats(g, false);
  // R-MAT with Graph500 parameters is strongly skewed.
  EXPECT_GT(s.top1pct_degree_share, 0.10);
}

TEST(Generators, RmatDeterministic) {
  RmatParams params;
  params.scale = 10;
  EXPECT_EQ(gen_rmat(params, 5), gen_rmat(params, 5));
  EXPECT_NE(gen_rmat(params, 5), gen_rmat(params, 6));
}

TEST(Generators, RmatRejectsBadProbabilities) {
  RmatParams params;
  params.a = 0.9;
  params.b = 0.2;
  params.c = 0.2;  // sums over 1
  EXPECT_THROW(gen_rmat(params, 1), CheckError);
}

TEST(Generators, Grid2dStructure) {
  const auto g = build_csr(gen_grid2d(10, 10, 0, 1), 100);
  // Interior vertices have degree 4; corners 2.
  EXPECT_EQ(g.degree(0), 2u);           // corner
  EXPECT_EQ(g.degree(5 * 10 + 5), 4u);  // interior
  const auto s = compute_graph_stats(g);
  // Bidirectional grid: one big SCC.
  EXPECT_DOUBLE_EQ(s.largest_scc_fraction, 1.0);
}

TEST(Generators, Grid2dShortcutsAdded) {
  const auto base = gen_grid2d(10, 10, 0, 1).size();
  const auto with = gen_grid2d(10, 10, 25, 1).size();
  EXPECT_EQ(with, base + 50u);  // 25 shortcuts, both directions
}

TEST(Generators, PlantedPartitionCommunityBias) {
  const auto edges = gen_planted_partition(1000, 10, 6.0, 0.5, 31);
  // Count intra- vs inter-community edges; intra must dominate.
  std::size_t intra = 0;
  for (const auto& e : edges) {
    if (e.src / 100 == e.dst / 100) ++intra;
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(edges.size()),
            0.75);
}

TEST(Generators, AllFamiliesProduceValidEndpoints) {
  const struct {
    const char* name;
    std::vector<WeightedEdge> edges;
    VertexId n;
  } cases[] = {
      {"er", gen_erdos_renyi(64, 256, 1), 64},
      {"ba", gen_barabasi_albert(64, 2, 1), 64},
      {"ws", gen_watts_strogatz(64, 2, 0.3, 1), 64},
      {"grid", gen_grid2d(8, 8, 4, 1), 64},
      {"pp", gen_planted_partition(64, 4, 3.0, 1.0, 1), 64},
  };
  for (const auto& c : cases) {
    for (const auto& e : c.edges) {
      EXPECT_LT(e.src, c.n) << c.name;
      EXPECT_LT(e.dst, c.n) << c.name;
    }
  }
}

}  // namespace
}  // namespace eimm
