// Minimal JSON writer. The SC'24 artifact emits per-run JSON logs
// (strong-scaling-logs-*); src/io/json_log mirrors that format using this
// writer. Only writing is supported — the project never parses JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace eimm {

/// Streaming JSON writer with explicit begin/end nesting.
/// Keys and values are escaped per RFC 8259. The writer validates nesting
/// depth but (deliberately) not key uniqueness.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true)
      : os_(os), pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by a value or a
  /// begin_object/begin_array call.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// Escapes a string per JSON rules (quotes, backslash, control chars).
  static std::string escape(std::string_view s);

 private:
  enum class Ctx { kTop, kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  bool need_comma_ = false;
  bool after_key_ = false;
  std::vector<Ctx> stack_{Ctx::kTop};
};

}  // namespace eimm
