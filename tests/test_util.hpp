// Shared helpers for the test suites: small deterministic graphs with
// diffusion weights, pool-building shortcuts, and environment scoping.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "diffusion/weights.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "rrr/generate.hpp"
#include "rrr/pool.hpp"

namespace eimm::testing {

/// Scoped environment override that restores the previous value on
/// destruction. Pass nullptr to unset the variable for the scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* previous = std::getenv(name);
    if (previous != nullptr) previous_ = previous;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (previous_.has_value()) {
      ::setenv(name_.c_str(), previous_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

/// Builds a DiffusionGraph from explicit edges.
inline DiffusionGraph make_graph(std::vector<WeightedEdge> edges,
                                 VertexId n = 0) {
  return build_diffusion_graph(std::move(edges), n);
}

/// DiffusionGraph with paper weights for `model` already assigned.
inline DiffusionGraph make_weighted_graph(std::vector<WeightedEdge> edges,
                                          DiffusionModel model,
                                          std::uint64_t seed = 7,
                                          VertexId n = 0) {
  DiffusionGraph g = make_graph(std::move(edges), n);
  assign_paper_weights(g.reverse, model, seed);
  mirror_weights_to_forward(g.reverse, g.forward);
  return g;
}

/// Sets every weight on both orientations to `p` (deterministic graphs
/// where p=1 makes sampling exhaustive and p=0 trivial).
inline void set_uniform_probability(DiffusionGraph& g, float p) {
  g.reverse.ensure_weights(p);
  g.forward.ensure_weights(p);
  for (VertexId v = 0; v < g.reverse.num_vertices(); ++v) {
    for (float& w : g.reverse.mutable_weights(v)) w = p;
    for (float& w : g.forward.mutable_weights(v)) w = p;
  }
}

/// Builds a pool from explicit vertex lists (vector representation).
inline RRRPool make_pool(VertexId n,
                         const std::vector<std::vector<VertexId>>& sets) {
  RRRPool pool(n);
  pool.resize(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    pool[i] = RRRSet::make_vector(sets[i]);
  }
  return pool;
}

/// Samples `count` RRR sets into a pool (serial, deterministic).
inline RRRPool sample_pool(const DiffusionGraph& g, DiffusionModel model,
                           std::size_t count, std::uint64_t seed,
                           bool adaptive = false) {
  RRRPool pool(g.num_vertices());
  pool.resize(count);
  SamplerScratch scratch(g.num_vertices());
  for (std::size_t i = 0; i < count; ++i) {
    auto verts = sample_rrr(g.reverse, model, seed, i, scratch);
    pool[i] = adaptive ? RRRSet::make_adaptive(std::move(verts),
                                               g.num_vertices())
                       : RRRSet::make_vector(std::move(verts));
  }
  return pool;
}

}  // namespace eimm::testing
