// Fig. 7 reproduction: strong scaling under the IC diffusion model,
// EfficientIMM vs the Ripples strategy, normalized to 1-thread Ripples
// (k=50, ε=0.5), across all eight datasets.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Fig. 7: strong scaling, IC model, normalized to Ripples 1T",
               config);

  constexpr DiffusionModel kModel = DiffusionModel::kIndependentCascade;
  for (const WorkloadSpec& spec : workload_specs()) {
    const DiffusionGraph graph = load_workload(config, spec.name, kModel);
    AsciiTable table({"Threads", "Ripples (s)", "EfficientIMM (s)",
                      "Ripples speedup", "EIMM speedup", "EIMM vs Ripples"});
    double ripples_base = 0.0;
    for (const int threads : thread_sweep(config.max_threads)) {
      const ImmOptions opt = imm_options(config, kModel, threads);
      const double ripples = best_seconds(config.reps, [&] {
        return run_baseline_imm(graph, opt).breakdown.total_seconds;
      });
      const double efficient = best_seconds(config.reps, [&] {
        return run_efficient_imm(graph, opt).breakdown.total_seconds;
      });
      if (threads == 1) ripples_base = ripples;
      table.new_row()
          .add(threads)
          .add(ripples, 3)
          .add(efficient, 3)
          .add(format_speedup(ripples_base / ripples, 2))
          .add(format_speedup(ripples_base / efficient, 2))
          .add(format_speedup(ripples / efficient, 2));
    }
    table.set_title("Fig. 7 — " + spec.name + " (IC)");
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: same as Fig. 6 but with the IC regime's few-but-huge\n"
      "RRR sets; paper reports 1.2x-12.1x end-to-end advantages.\n");
  return 0;
}
