// The zero-copy hand-off contract: a view over the legacy RRRPool and a
// view over shard-local SegmentedPool storage holding the SAME sets must
// be indistinguishable slot-by-slot — size, membership, enumeration
// order, and the flattened CSR image — because the selection kernels'
// bit-identical seed guarantee rests on exactly this equivalence. Also
// covers the ShardArena reset() chunk-reuse semantics the sampler's
// merge path depends on.
#include "rrr/pool_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "support/macros.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

/// Builds a SegmentedPool holding the same (sorted) member lists as the
/// reference pool, staged through `workers` round-robin arenas — the
/// layout the sharded sampler produces, minus the threads.
SegmentedPool segment_pool(const RRRPool& reference, std::size_t workers) {
  SegmentedPool segments(reference.num_vertices());
  segments.resize(reference.size());
  segments.ensure_workers(workers);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const std::vector<VertexId> sorted = reference[i].to_vector();
    ShardArena& arena = segments.arena(i % workers);
    segments.set_run(i, arena.view(arena.append(sorted)));
  }
  return segments;
}

RRRPool sampled_pool(bool adaptive, std::size_t count = 300) {
  const DiffusionGraph g = testing::make_weighted_graph(
      gen_erdos_renyi(400, 2500, 17), DiffusionModel::kIndependentCascade);
  return testing::sample_pool(g, DiffusionModel::kIndependentCascade, count,
                              0xFEED, adaptive);
}

void expect_views_identical(const RRRPoolView& a, const RRRPoolView& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.total_vertices(), b.total_vertices());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const RRRSetView sa = a[i];
    const RRRSetView sb = b[i];
    ASSERT_EQ(sa.size(), sb.size()) << "slot " << i;
    std::vector<VertexId> va;
    std::vector<VertexId> vb;
    sa.for_each([&](VertexId v) { va.push_back(v); });
    sb.for_each([&](VertexId v) { vb.push_back(v); });
    ASSERT_EQ(va, vb) << "slot " << i;
    EXPECT_TRUE(std::is_sorted(va.begin(), va.end())) << "slot " << i;
    for (const VertexId v : va) {
      EXPECT_TRUE(sa.contains(v));
      EXPECT_TRUE(sb.contains(v));
    }
  }
  const FlatPool fa = a.flatten();
  const FlatPool fb = b.flatten();
  EXPECT_EQ(fa.num_vertices, fb.num_vertices);
  EXPECT_EQ(fa.offsets, fb.offsets);
  EXPECT_EQ(fa.vertices, fb.vertices);
}

TEST(RRRPoolView, SegmentBackingMatchesLegacyPoolSlotBySlot) {
  const RRRPool pool = sampled_pool(/*adaptive=*/false);
  const SegmentedPool segments = segment_pool(pool, 3);
  expect_views_identical(RRRPoolView(pool), RRRPoolView(segments));
}

TEST(RRRPoolView, SegmentBackingMatchesAdaptivePoolWithBitmaps) {
  // Adaptive pools hold bitmap sets; the segment backing holds sorted
  // runs — the view must erase the representation difference entirely.
  const RRRPool pool = sampled_pool(/*adaptive=*/true);
  ASSERT_GT(pool.bitmap_count(), 0u)
      << "workload did not produce bitmap sets; raise density";
  const SegmentedPool segments = segment_pool(pool, 4);
  const RRRPoolView legacy(pool);
  const RRRPoolView zero_copy(segments);
  expect_views_identical(legacy, zero_copy);
  EXPECT_EQ(legacy.bitmap_count(), pool.bitmap_count());
  EXPECT_EQ(zero_copy.bitmap_count(), 0u);  // runs are always vectors
  EXPECT_TRUE(zero_copy.segmented());
  EXPECT_FALSE(legacy.segmented());
}

TEST(RRRPoolView, ContainsRejectsNonMembersOnBothBackings) {
  const RRRPool pool = sampled_pool(/*adaptive=*/false, 50);
  const SegmentedPool segments = segment_pool(pool, 2);
  const RRRPoolView a(pool);
  const RRRPoolView b(segments);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (VertexId v = 0; v < a.num_vertices(); v += 7) {
      EXPECT_EQ(a[i].contains(v), b[i].contains(v))
          << "slot " << i << " vertex " << v;
    }
  }
}

TEST(RRRSetView, VerticesSpanMatchesSetVectorRepresentation) {
  const RRRSet set = RRRSet::make_vector({5, 1, 9, 3});
  const RRRSetView view(set);
  EXPECT_EQ(view.repr(), RRRRepr::kVector);
  ASSERT_EQ(view.vertices().size(), 4u);
  EXPECT_EQ(view.vertices()[0], 1u);  // make_vector sorts
  EXPECT_EQ(view.vertices()[3], 9u);

  const std::vector<VertexId> run = {1, 3, 5, 9};
  const RRRSetView run_view{std::span<const VertexId>(run)};
  EXPECT_EQ(run_view.repr(), RRRRepr::kVector);
  EXPECT_EQ(run_view.size(), 4u);
  EXPECT_TRUE(std::equal(run_view.vertices().begin(),
                         run_view.vertices().end(), view.vertices().begin()));
}

// --- ShardArena reset/reuse (the merge path's round-to-round contract) ---

TEST(ShardArena, ResetReusesMappedChunksAcrossRounds) {
  ShardArena arena(/*chunk_vertices=*/16);
  std::vector<VertexId> run(10);
  std::iota(run.begin(), run.end(), 0);

  for (int i = 0; i < 4; ++i) arena.append(run);
  const std::uint64_t mapped_after_round1 = arena.mapped_bytes();
  const std::uint64_t staged_after_round1 = arena.staged_bytes();
  ASSERT_GT(mapped_after_round1, 0u);

  arena.reset();
  std::vector<ShardArena::Ref> refs;
  for (int i = 0; i < 4; ++i) refs.push_back(arena.append(run));

  // Same payload volume → no new chunks; staged keeps accumulating.
  EXPECT_EQ(arena.mapped_bytes(), mapped_after_round1);
  EXPECT_EQ(arena.staged_bytes(), 2 * staged_after_round1);
  EXPECT_EQ(arena.runs(), 8u);
  for (const ShardArena::Ref& ref : refs) {
    const auto view = arena.view(ref);
    EXPECT_EQ(std::vector<VertexId>(view.begin(), view.end()), run);
  }
}

TEST(ShardArena, ResetKeepsOversizedChunksUsable) {
  ShardArena arena(/*chunk_vertices=*/4);
  std::vector<VertexId> giant(100);
  std::iota(giant.begin(), giant.end(), 0);
  arena.append({giant.data(), 3});
  arena.append(giant);  // dedicated oversized chunk
  const std::uint64_t mapped = arena.mapped_bytes();

  arena.reset();
  arena.append({giant.data(), 2});
  const auto ref = arena.append(giant);  // must land in the reused chunk
  EXPECT_EQ(arena.mapped_bytes(), mapped);
  const auto view = arena.view(ref);
  EXPECT_EQ(std::vector<VertexId>(view.begin(), view.end()), giant);
}

TEST(SegmentedPool, TracksStagedAndMappedBytesAcrossWorkers) {
  const RRRPool pool = sampled_pool(/*adaptive=*/false, 60);
  const SegmentedPool segments = segment_pool(pool, 3);
  EXPECT_EQ(segments.num_workers(), 3u);
  EXPECT_EQ(segments.staged_bytes(),
            pool.total_vertices() * sizeof(VertexId));
  EXPECT_GE(segments.mapped_bytes(), segments.staged_bytes());
}

TEST(SegmentedPool, NeverShrinks) {
  SegmentedPool segments(10);
  segments.resize(5);
  EXPECT_THROW(segments.resize(3), CheckError);
}

}  // namespace
}  // namespace eimm
