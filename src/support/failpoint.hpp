// Deterministic fault injection for chaos testing.
//
// A failpoint is a named site compiled into production code
// (`fail::inject("serve.admit")`) that does nothing until armed — either
// programmatically (`fail::arm`) or through the environment:
//
//   EIMM_FAILPOINTS=site:mode:arg[:times],...   e.g.
//   EIMM_FAILPOINTS=serve.admit:error:40,io.bin.read:trunc:10:3
//
// Modes: `error` throws InjectedFault at the site, `delay` sleeps for
// `arg` milliseconds, `trunc` tells the site to simulate a truncated
// read/write. For error/trunc, `arg` is the fire probability in percent
// (100 = always); the optional `times` caps how often the site fires.
// Firing is deterministic: each site draws from its own Xoshiro256 stream
// seeded from (EIMM_FAILPOINT_SEED, fnv1a(site)), so a given schedule
// replays identically run to run. Every site keeps hit/fire counts and
// mirrors them into obs counters `failpoint.<site>.{hits,fires}`.
//
// The disarmed fast path is one relaxed atomic load and a predicted
// branch — cheap enough to leave the sites compiled into release builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "support/macros.hpp"

namespace eimm::fail {

enum class Mode { kError, kDelay, kTrunc };

[[nodiscard]] const char* to_string(Mode mode) noexcept;

/// What an armed site does when it fires.
struct Spec {
  Mode mode = Mode::kError;
  /// kError/kTrunc: fire probability in percent (clamped to [0, 100]);
  /// kDelay: sleep duration in milliseconds (always fires).
  std::uint64_t arg = 100;
  /// Fire at most this many times; 0 means unlimited.
  std::uint64_t times = 0;
};

/// Lifetime hit/fire counts of one site (zeros when never armed).
struct SiteStats {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// Thrown at a site armed in `error` mode.
class InjectedFault : public CheckError {
 public:
  using CheckError::CheckError;
};

namespace detail {
// Number of armed sites; -1 until EIMM_FAILPOINTS has been parsed.
extern std::atomic<int> g_armed;
std::optional<Mode> hit_slow(const char* site);
}  // namespace detail

/// Records a hit on `site` and returns the fired mode, or nullopt when
/// the site is disarmed or the probabilistic draw says "not this time".
/// kDelay sleeps before returning.
[[nodiscard]] inline std::optional<Mode> hit(const char* site) {
  if (EIMM_LIKELY(detail::g_armed.load(std::memory_order_acquire) == 0)) {
    return std::nullopt;
  }
  return detail::hit_slow(site);
}

/// Convenience wrapper: throws InjectedFault when the site fires in
/// kError mode, returns true when it fires in kTrunc mode (the caller
/// simulates a truncation), false otherwise. kDelay sleeps and returns
/// false.
bool inject(const char* site);

/// Arms `site` with `spec` (replacing any previous spec and resetting its
/// deterministic stream). Registers the site's obs counters.
void arm(const std::string& site, Spec spec);

/// Disarms one site / every site. Programmatic and env-armed sites alike.
void disarm(const std::string& site);
void disarm_all();

/// Number of armed sites; forces the EIMM_FAILPOINTS parse, so tools can
/// call it once at startup to surface schedule syntax errors early.
std::size_t armed_count();

/// Overrides the deterministic base seed (default EIMM_FAILPOINT_SEED,
/// else 0) for sites armed after this call.
void set_seed(std::uint64_t seed);

/// Parses "mode:arg[:times]" / "site:mode:arg[:times],..."; throws
/// CheckError on malformed input.
[[nodiscard]] Spec parse_spec(const std::string& text);
void configure(const std::string& schedule);

[[nodiscard]] SiteStats stats(const std::string& site);

}  // namespace eimm::fail
