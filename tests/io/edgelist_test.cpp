#include "io/edgelist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(EdgeList, ParsesBasicLines) {
  std::istringstream is("0 1\n1 2\n");
  const auto edges = read_edge_list(is);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_EQ(edges[0].dst, 1u);
  EXPECT_FLOAT_EQ(edges[0].weight, 1.0f);
}

TEST(EdgeList, SkipsCommentsAndBlankLines) {
  std::istringstream is(
      "# SNAP header\n"
      "% matrix-market style comment\n"
      "\n"
      "   \n"
      "3 4\n");
  const auto edges = read_edge_list(is);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].src, 3u);
}

TEST(EdgeList, ParsesTabsAndExtraSpaces) {
  std::istringstream is("0\t1\n  2   3 \n");
  const auto edges = read_edge_list(is);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1].src, 2u);
  EXPECT_EQ(edges[1].dst, 3u);
}

TEST(EdgeList, ParsesWeightColumn) {
  std::istringstream is("0 1 0.25\n1 2\n");
  EdgeListParseOptions opts;
  opts.default_weight = 0.5f;
  const auto edges = read_edge_list(is, opts);
  EXPECT_FLOAT_EQ(edges[0].weight, 0.25f);
  EXPECT_FLOAT_EQ(edges[1].weight, 0.5f);
}

TEST(EdgeList, OneBasedConversion) {
  std::istringstream is("1 2\n5 3\n");
  EdgeListParseOptions opts;
  opts.one_based = true;
  const auto edges = read_edge_list(is, opts);
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_EQ(edges[0].dst, 1u);
  EXPECT_EQ(edges[1].src, 4u);
}

TEST(EdgeList, OneBasedRejectsZero) {
  std::istringstream is("0 2\n");
  EdgeListParseOptions opts;
  opts.one_based = true;
  EXPECT_THROW(read_edge_list(is, opts), CheckError);
}

TEST(EdgeList, MalformedLineThrows) {
  std::istringstream is("0\n");
  EXPECT_THROW(read_edge_list(is), CheckError);
  std::istringstream is2("a b\n");
  EXPECT_THROW(read_edge_list(is2), CheckError);
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               CheckError);
}

TEST(EdgeList, WriteReadRoundTrip) {
  const std::vector<WeightedEdge> original = {
      {0, 1, 0.5f}, {2, 3, 0.75f}, {4, 0, 1.0f}};
  std::ostringstream os;
  write_edge_list(os, original);
  std::istringstream is(os.str());
  const auto parsed = read_edge_list(is);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].src, original[i].src);
    EXPECT_EQ(parsed[i].dst, original[i].dst);
    EXPECT_FLOAT_EQ(parsed[i].weight, original[i].weight);
  }
}

TEST(EdgeList, WriteWithoutWeights) {
  std::ostringstream os;
  write_edge_list(os, {{7, 8, 0.1f}}, /*with_weights=*/false);
  EXPECT_NE(os.str().find("7\t8\n"), std::string::npos);
}

TEST(EdgeList, EmptyStream) {
  std::istringstream is("");
  EXPECT_TRUE(read_edge_list(is).empty());
}

}  // namespace
}  // namespace eimm
