#include "support/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace eimm {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("EIMM_TEST_VAR"); }
  void set(const char* value) { ::setenv("EIMM_TEST_VAR", value, 1); }
};

TEST_F(EnvTest, StringUnsetReturnsNullopt) {
  EXPECT_FALSE(env_string("EIMM_TEST_VAR").has_value());
}

TEST_F(EnvTest, StringRoundTrip) {
  set("hello");
  EXPECT_EQ(env_string("EIMM_TEST_VAR").value(), "hello");
}

TEST_F(EnvTest, IntParsesAndFallsBack) {
  set("42");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 42);
  set("-3");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), -3);
  set("abc");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
  set("12abc");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
  EXPECT_EQ(env_int("EIMM_UNSET_VAR", 7), 7);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  set("2.5");
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.0), 2.5);
  set("garbage");
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.0), 1.0);
}

TEST_F(EnvTest, BoolVariants) {
  for (const char* truthy : {"1", "true", "TRUE", "yes", "on", "On"}) {
    set(truthy);
    EXPECT_TRUE(env_bool("EIMM_TEST_VAR", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "FALSE", "no", "off"}) {
    set(falsy);
    EXPECT_FALSE(env_bool("EIMM_TEST_VAR", true)) << falsy;
  }
  set("maybe");
  EXPECT_TRUE(env_bool("EIMM_TEST_VAR", true));
  EXPECT_FALSE(env_bool("EIMM_TEST_VAR", false));
}

TEST_F(EnvTest, EmptyValueFallsBack) {
  set("");
  EXPECT_EQ(env_string("EIMM_TEST_VAR").value(), "");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.5), 1.5);
  EXPECT_TRUE(env_bool("EIMM_TEST_VAR", true));
  EXPECT_FALSE(env_bool("EIMM_TEST_VAR", false));
}

TEST_F(EnvTest, WhitespaceOnlyFallsBack) {
  set("   ");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, IntOverflowFallsBack) {
  // Out-of-range magnitudes must not silently clamp to LLONG_MAX/MIN —
  // a truncated EIMM_MAX_RRR would change experiment scale unnoticed.
  set("99999999999999999999999999");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
  set("-99999999999999999999999999");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, IntBoundaryValuesParse) {
  set("9223372036854775807");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), INT64_MAX);
  set("-9223372036854775808");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), INT64_MIN);
}

TEST_F(EnvTest, DoubleOverflowFallsBack) {
  set("1e999");
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.5), 1.5);
  set("-1e999");
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, DoubleUnderflowParsesAsSubnormal) {
  // strtod sets ERANGE for subnormals too, but the rounded value is
  // still correct — a tiny epsilon must not silently become the default.
  set("1e-320");
  const double v = env_double("EIMM_TEST_VAR", 1.5);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1e-300);
}

TEST_F(EnvTest, TrailingGarbageFallsBack) {
  set("3.5x");
  EXPECT_DOUBLE_EQ(env_double("EIMM_TEST_VAR", 1.5), 1.5);
  set("0x10");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
  set(" 5");  // leading whitespace is strtoll-legal, trailing is not
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 5);
  set("5 ");
  EXPECT_EQ(env_int("EIMM_TEST_VAR", 7), 7);
}

}  // namespace
}  // namespace eimm
