// The eight SNAP datasets of the paper, mapped to synthetic analogues.
//
// The real datasets cannot be redistributed with this repository, so each
// one is stood in for by a random-graph family whose structure lands in
// the same qualitative regime the paper's Table I documents: dense-SCC
// social graphs with 30-90 % RRR coverage, and one low-coverage outlier
// (as-Skitter behaves like a road network: 1.6 % average coverage).
// The node counts are scaled down ~10-300x so the full benchmark suite
// runs on a laptop; `scale` (EIMM_SCALE env var in the benches) grows
// them back toward paper size. See DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace eimm {

struct WorkloadSpec {
  std::string name;          // paper dataset name, e.g. "com-Amazon"
  std::string family;        // generator family used as the analogue
  std::uint64_t paper_nodes; // Table I figures, for side-by-side reporting
  std::uint64_t paper_edges;
  double paper_avg_coverage;  // Table I avg RRRset coverage (IC, eps=0.5)
  double paper_max_coverage;  // Table I max RRRset coverage
  std::uint32_t base_nodes;   // analogue size at scale = 1.0
};

/// All eight paper datasets in Table I order.
const std::vector<WorkloadSpec>& workload_specs();

/// Spec lookup by paper name (case-sensitive); nullopt when unknown.
std::optional<WorkloadSpec> find_workload(const std::string& name);

/// Builds the analogue graph for `name` at the given scale.
/// Deterministic in (name, scale, seed). Weights are NOT assigned —
/// callers pick a diffusion model via assign_paper_weights.
DiffusionGraph make_workload(const std::string& name, double scale = 1.0,
                             std::uint64_t seed = 42);

/// Convenience: graph + paper-§V-A weights for `model` in one call.
DiffusionGraph make_workload_with_weights(const std::string& name,
                                          DiffusionModel model,
                                          double scale = 1.0,
                                          std::uint64_t seed = 42);

}  // namespace eimm
