// Deterministic, splittable random number generation.
//
// IMM correctness does not depend on the RNG, but *reproducibility* does:
// the engines derive an independent stream for RRR set i from
// (global_seed, i) so that results are identical for any thread count and
// any work-stealing schedule. SplitMix64 is used as the seeding/mixing
// function (it is a bijective finalizer with good avalanche), and
// Xoshiro256** as the bulk generator, following the recommendations of
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace eimm {

/// SplitMix64 step: advances `state` and returns a mixed 64-bit value.
/// Suitable both as a tiny standalone RNG and as a seeding function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values into one; used to derive per-object
/// seeds, e.g. hash_combine64(global_seed, rrr_index).
constexpr std::uint64_t hash_combine64(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// Xoshiro256** 1.0 — fast, 256-bit state, passes BigCrush.
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, though the hot paths below use the bespoke helpers.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from a single 64-bit seed via SplitMix64,
  /// as recommended by the generator's authors.
  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Derives the stream for element `index` under `base_seed`; the result
  /// is independent of which thread calls it.
  static Xoshiro256 for_stream(std::uint64_t base_seed,
                               std::uint64_t index) noexcept {
    return Xoshiro256(hash_combine64(base_seed, index));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_bounded(std::uint64_t bound) noexcept;

  /// Bernoulli trial with probability p (p outside [0,1] clamps).
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace eimm
