// SelectionWorkspace regression suite: the martingale probe loop must
// perform exactly ONE working counter-layout allocation per run, with
// reset+reload between probes — and a reused workspace must be
// indistinguishable from a fresh allocation (probe round N+1 sees fully
// reset counters, never round N's decrements).
#include <gtest/gtest.h>

#include <vector>

#include "core/imm.hpp"
#include "graph/generators.hpp"
#include "seedselect/engine.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

RRRPool pool_of(const DiffusionGraph& g, std::size_t count,
                std::uint64_t seed) {
  return testing::sample_pool(g, DiffusionModel::kIndependentCascade, count,
                              seed, /*adaptive=*/true);
}

DiffusionGraph test_graph(std::uint64_t seed = 23) {
  return testing::make_weighted_graph(gen_erdos_renyi(300, 1800, seed),
                                      DiffusionModel::kIndependentCascade);
}

SelectionEngine engine_with(int counter_shards) {
  SelectionEngineConfig config;
  config.counter_shards = counter_shards;
  config.pin = PinMode::kNone;
  return SelectionEngine(config);
}

TEST(SelectionWorkspace, AllocatesOnceAcrossRepeatedSelections) {
  const DiffusionGraph g = test_graph();
  const RRRPool pool = pool_of(g, 250, 0xA11);
  SelectionOptions options;
  options.k = 5;

  for (const int shards : {1, 3}) {
    const SelectionEngine engine = engine_with(shards);
    SelectionWorkspace ws;
    const SelectionResult first =
        engine.select(SelectionKernel::kEfficient, pool, options, nullptr,
                      &ws);
    EXPECT_EQ(ws.counter_allocations(), 1u) << "shards=" << shards;
    EXPECT_EQ(ws.reuses(), 0u);
    const SelectionResult second =
        engine.select(SelectionKernel::kEfficient, pool, options, nullptr,
                      &ws);
    EXPECT_EQ(ws.counter_allocations(), 1u) << "shards=" << shards;
    EXPECT_EQ(ws.reuses(), 1u);
    EXPECT_EQ(first.seeds, second.seeds);
    EXPECT_EQ(first.marginal_coverage, second.marginal_coverage);
  }
}

TEST(SelectionWorkspace, ReusedCountersAreFullyResetBetweenRounds) {
  // Simulate probe rounds over a GROWING pool: the workspace selects
  // over pool A (mutating its counters down to the leftovers), then over
  // the larger pool B — and must match a fresh, workspace-less selection
  // over B exactly. Any residue from round A would shift counters and
  // change a seed or marginal.
  const DiffusionGraph g = test_graph(29);
  const RRRPool pool_a = pool_of(g, 120, 0xB0B);
  const RRRPool pool_b = pool_of(g, 400, 0xB0B);

  SelectionOptions options;
  options.k = 6;
  for (const int shards : {1, 2, 4}) {
    const SelectionEngine engine = engine_with(shards);
    SelectionWorkspace ws;
    (void)engine.select(SelectionKernel::kEfficient, pool_a, options,
                        nullptr, &ws);
    const SelectionResult reused = engine.select(
        SelectionKernel::kEfficient, pool_b, options, nullptr, &ws);
    const SelectionResult fresh =
        engine.select(SelectionKernel::kEfficient, pool_b, options);
    EXPECT_EQ(reused.seeds, fresh.seeds) << "shards=" << shards;
    EXPECT_EQ(reused.marginal_coverage, fresh.marginal_coverage)
        << "shards=" << shards;
    EXPECT_EQ(reused.covered_sets, fresh.covered_sets);
    EXPECT_EQ(ws.counter_allocations(), 1u) << "shards=" << shards;
  }
}

TEST(SelectionWorkspace, ReloadsFusedBaseCountersBetweenRounds) {
  // The kernel-fusion hand-off: base counters stand in for the initial
  // build, and the workspace must reload them (not accumulate on top of
  // the previous round's state) on every call.
  const DiffusionGraph g = test_graph(31);
  const RRRPool pool = pool_of(g, 200, 0xC0DE);
  CounterArray base(g.num_vertices());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].for_each([&](VertexId v) { base.increment(v); });
  }

  SelectionOptions options;
  options.k = 4;
  for (const int shards : {1, 3}) {
    const SelectionEngine engine = engine_with(shards);
    SelectionWorkspace ws;
    const SelectionResult first = engine.select(
        SelectionKernel::kEfficient, pool, options, &base, &ws);
    const SelectionResult again = engine.select(
        SelectionKernel::kEfficient, pool, options, &base, &ws);
    const SelectionResult reference =
        engine.select(SelectionKernel::kEfficient, pool, options, &base);
    EXPECT_EQ(first.seeds, reference.seeds) << "shards=" << shards;
    EXPECT_EQ(again.seeds, reference.seeds) << "shards=" << shards;
    EXPECT_EQ(ws.counter_allocations(), 1u);
    EXPECT_EQ(ws.reuses(), 1u);
  }
}

TEST(SelectionWorkspace, RipplesKernelSharesAliveScratch) {
  const DiffusionGraph g = test_graph(37);
  const RRRPool pool = pool_of(g, 150, 0xD1CE);
  SelectionOptions options;
  options.k = 4;
  const SelectionEngine engine = engine_with(1);
  SelectionWorkspace ws;
  const SelectionResult a = engine.select(SelectionKernel::kRipples, pool,
                                          options, nullptr, &ws);
  const SelectionResult b = engine.select(SelectionKernel::kRipples, pool,
                                          options, nullptr, &ws);
  const SelectionResult fresh =
      engine.select(SelectionKernel::kRipples, pool, options);
  EXPECT_EQ(a.seeds, fresh.seeds);
  EXPECT_EQ(b.seeds, fresh.seeds);
  // The ripples kernel keeps its thread-local counter layout internal;
  // the workspace only lends alive flags, so no layout is allocated.
  EXPECT_EQ(ws.counter_allocations(), 0u);
}

TEST(SelectionWorkspace, RunImmPerformsExactlyOneLayoutAllocation) {
  // The end-to-end acceptance check: probing rounds + the final
  // selection all share the PoolBuild workspace.
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 8192;
  for (const int shards : {1, 3}) {
    for (const int counter_shards : {1, 2}) {
      options.shards = shards;
      options.counter_shards = counter_shards;
      const ImmResult result = run_imm(g, options, Engine::kEfficient);
      EXPECT_EQ(result.counter_layout_allocations, 1u)
          << "shards=" << shards << " counter_shards=" << counter_shards;
      EXPECT_FALSE(result.seeds.empty());
    }
  }
}

TEST(SelectionWorkspace, BuildRrrPoolProbesReuseTheWorkspace) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 8192;
  const PoolBuild build = build_rrr_pool(g, options, Engine::kEfficient);
  EXPECT_EQ(build.workspace.counter_allocations(), 1u);
  ASSERT_GE(build.iterations.size(), 1u);
  // One probe selection per martingale iteration: all but the first
  // reuse the layout.
  EXPECT_EQ(build.workspace.reuses(), build.iterations.size() - 1);
}

}  // namespace
}  // namespace eimm
