// The two Find_Most_Influential_Set kernels.
//
// ripples_select_t — the baseline strategy the paper profiles (§II-B,
// Challenge 1): vertices are partitioned across threads; every thread
// scans EVERY sorted RRR set and binary-searches the portion that
// intersects its vertex range, maintaining thread-local counters. After
// each pick, every thread again scans every surviving set containing the
// seed to decrement its own counters. Memory traffic:
// O(log(avg |R|) · θ · p).
//
// efficient_select_t — EfficientIMM's Algorithm 2: RRR sets are
// partitioned across threads; each member vertex increments one shared
// 64-bit atomic counter; the arg-max is a two-step parallel reduction;
// after each pick the counter is either decremented over covered sets or
// rebuilt from the survivors — whichever touches fewer vertices
// (§IV-C "Adaptive Vertex Occurrence Counter Update"). The kernel is
// additionally templated on the Counters layout: the flat CounterArray
// (the paper's shared atomic array) or the NUMA ShardedCounterArray
// (per-domain replicas, updates to the caller's home replica, summed
// hierarchical arg-max). Workers resolve a CounterSlab view once per
// parallel region; both layouts produce bit-identical seed sequences.
//
// Both kernels are templated on a Mem policy that observes every data
// access (counters, set payloads); NullMem compiles to nothing, and
// src/cachesim provides a tracing policy that feeds the L1/L2 model for
// the Table IV reproduction. They are additionally templated on the Pool
// storage: the legacy RRRPool or an RRRPoolView (rrr/pool_view.hpp) over
// shard-local arena segments — the zero-copy hand-off from the sharded
// sampler. Both kernels break counter ties toward the lowest vertex id,
// so they return identical seed sequences on the same pool content,
// whichever storage backs it — a cross-validation the test suite
// enforces.
#pragma once

#include <omp.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "runtime/atomic_counters.hpp"
#include "runtime/partition.hpp"
#include "runtime/reduction.hpp"
#include "runtime/work_queue.hpp"
#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"
#include "support/macros.hpp"

namespace eimm {

/// Memory-access observer that observes nothing (production path).
struct NullMem {
  static constexpr bool kTracing = false;
  static void touch(const void* addr, std::size_t bytes) noexcept {
    EIMM_UNUSED(addr);
    EIMM_UNUSED(bytes);
  }
};

struct SelectionOptions {
  std::size_t k = 50;
  /// Choose decrement-vs-rebuild per round (EfficientIMM §IV-C). When
  /// false, always decrement (the non-adaptive ablation of Fig. 5).
  bool adaptive_update = true;
  /// Skip the initial counter build because the generation kernel already
  /// incremented counters in place (kernel fusion, Algorithm 3).
  bool counters_prebuilt = false;
  /// Distribute RRR-set batches through the stealing JobPool instead of a
  /// static split (§IV-C "Dynamic Job Balancing").
  bool dynamic_balance = true;
  /// Jobs per batch for the JobPool.
  std::size_t batch_size = 64;
  /// Optional per-vertex eligibility mask (size ≥ the counter array's
  /// size): vertices with a zero entry are never picked as seeds, though
  /// their counters are still maintained. Pool-level constrained
  /// selection; also the reference the serve/ QueryEngine's constrained
  /// kernel is cross-validated against
  /// (tests/serve/query_engine_test.cpp).
  const std::vector<std::uint8_t>* eligible = nullptr;
  /// Reusable per-set alive-flag storage: when non-null the kernel uses
  /// (and fully re-initializes) this vector instead of allocating its
  /// own — the SelectionWorkspace reuse path for the martingale probe
  /// loop. Contents on return are the final alive flags.
  std::vector<std::uint8_t>* alive_scratch = nullptr;
};

struct SelectionResult {
  std::vector<VertexId> seeds;
  /// Counter value of each seed at pick time (its marginal coverage).
  std::vector<std::uint64_t> marginal_coverage;
  /// Number of RRR sets covered by the final seed set.
  std::uint64_t covered_sets = 0;
  /// Pool size at selection time (θ).
  std::uint64_t total_sets = 0;
  /// How many rounds chose rebuild over decrement (diagnostics).
  std::uint32_t rebuild_rounds = 0;

  /// F(S): fraction of RRR sets covered — the martingale estimator input.
  [[nodiscard]] double coverage_fraction() const noexcept {
    return total_sets ? static_cast<double>(covered_sets) /
                            static_cast<double>(total_sets)
                      : 0.0;
  }
};

namespace detail {

/// Traced iteration over one RRR set: touches the payload the way the
/// real representation lays it out (vector elements or bitmap words).
/// `SetT` is RRRSet or RRRSetView — both expose the same surface, so the
/// kernels run unchanged over legacy pools and zero-copy views.
template <typename Mem, typename SetT, typename Fn>
void for_each_traced(const SetT& set, Fn&& fn) {
  if (set.repr() == RRRRepr::kVector) {
    const auto& verts = set.vertices();
    for (const VertexId v : verts) {
      Mem::touch(&v, sizeof(VertexId));
      fn(v);
    }
  } else {
    // Bitmap: the kernel streams whole words and expands set bits.
    set.for_each([&](VertexId v) {
      Mem::touch(&v, sizeof(std::uint64_t));
      fn(v);
    });
  }
}

/// Traced membership test (binary search probes / single bit test).
template <typename Mem, typename SetT>
bool contains_traced(const SetT& set, VertexId v) {
  if (set.repr() == RRRRepr::kVector) {
    const auto& verts = set.vertices();
    std::size_t lo = 0, hi = verts.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      Mem::touch(verts.data() + mid, sizeof(VertexId));
      if (verts[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < verts.size() && verts[lo] == v;
  }
  Mem::touch(&set, sizeof(std::uint64_t));
  return set.contains(v);
}

/// Arg-max over either counter layout. The production path uses the
/// layout's parallel reduction (two-step flat, hierarchical sharded);
/// the traced path scans serially so every counter read reaches the
/// cache model.
template <typename Mem, typename Counters>
ArgMaxResult argmax_counters(const Counters& counters,
                             const std::uint8_t* eligible = nullptr) {
  if constexpr (!Mem::kTracing) {
    return parallel_argmax(counters, eligible);
  } else {
    ArgMaxResult best{0, 0};
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (eligible != nullptr && eligible[i] == 0) continue;
      Mem::touch(&counters, sizeof(std::uint64_t));
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {
        best.value = v;
        best.index = i;
      }
    }
    return best;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// EfficientIMM kernel (Algorithm 2)
// ---------------------------------------------------------------------------

template <typename Mem = NullMem, typename Counters = CounterArray,
          typename PoolT = RRRPool>
SelectionResult efficient_select_t(const PoolT& pool, Counters& counters,
                                   const SelectionOptions& options) {
  const std::size_t num_sets = pool.size();
  const VertexId n = pool.num_vertices();
  EIMM_CHECK(counters.size() >= n, "counter array smaller than vertex count");
  EIMM_CHECK(options.k > 0, "k must be positive");
  const std::uint8_t* eligible = nullptr;
  if (options.eligible != nullptr) {
    // The arg-max scans the whole counter array, so the mask must cover
    // every counter slot, not just |V|.
    EIMM_CHECK(options.eligible->size() >= counters.size(),
               "eligibility mask smaller than counter array");
    eligible = options.eligible->data();
  }

  SelectionResult result;
  result.total_sets = num_sets;
  // Alive flags: workspace-provided scratch (assign() fully resets it, so
  // a reused buffer starts every call from the all-alive state) or a
  // call-local vector.
  std::vector<std::uint8_t> own_alive;
  std::vector<std::uint8_t>& alive =
      options.alive_scratch != nullptr ? *options.alive_scratch : own_alive;
  alive.assign(num_sets, 1);

  const auto workers = static_cast<std::size_t>(omp_get_max_threads());

  // Initial counter build (skipped under kernel fusion): partition the
  // RRR sets, broadcast each member into the worker's counter slab (the
  // one shared array, or its home NUMA replica under the sharded layout).
  if (!options.counters_prebuilt) {
    if (options.dynamic_balance) {
      JobPool jobs(num_sets, options.batch_size, workers);
#pragma omp parallel
      {
        CounterSlab slab = counters.local();
        const auto wid = static_cast<std::size_t>(omp_get_thread_num());
        for (JobBatch batch = jobs.next(wid); !batch.empty();
             batch = jobs.next(wid)) {
          for (std::size_t i = batch.begin; i < batch.end; ++i) {
            detail::for_each_traced<Mem>(pool[i], [&](VertexId v) {
              Mem::touch(&counters, sizeof(std::uint64_t));
              slab.increment(v);
            });
          }
        }
      }
    } else {
#pragma omp parallel
      {
        CounterSlab slab = counters.local();
#pragma omp for schedule(static)
        for (std::size_t i = 0; i < num_sets; ++i) {
          detail::for_each_traced<Mem>(pool[i], [&](VertexId v) {
            Mem::touch(&counters, sizeof(std::uint64_t));
            slab.increment(v);
          });
        }
      }
    }
  }

  std::uint64_t alive_count = num_sets;
  const std::size_t rounds = std::min<std::size_t>(options.k, n);
  for (std::size_t round = 0; round < rounds; ++round) {
    const ArgMaxResult best = detail::argmax_counters<Mem>(counters, eligible);
    if (best.value == 0) break;  // no eligible vertex covers an alive set
    const auto seed = static_cast<VertexId>(best.index);
    result.seeds.push_back(seed);
    result.marginal_coverage.push_back(best.value);

    // The counter value of the winner IS the number of alive sets the
    // seed covers — no survey pass needed. Decrementing touches the
    // covered sets, rebuilding touches the survivors: pick whichever is
    // the smaller side (§IV-C "Adaptive Vertex Occurrence Counter
    // Update"). This is exactly where skewed datasets explode: the first
    // seeds cover most of the pool, so decrement does nearly all the
    // work just to throw it away, while rebuild touches almost nothing.
    const std::uint64_t covered_count = best.value;
    result.covered_sets += covered_count;
    const bool rebuild =
        options.adaptive_update && 2 * covered_count > alive_count;
    alive_count -= covered_count;

    if (rebuild) {
      ++result.rebuild_rounds;
      // Rebuild: zero the counter, re-broadcast only the survivors.
      counters.reset();
#pragma omp parallel
      {
        CounterSlab slab = counters.local();
#pragma omp for schedule(dynamic, 16)
        for (std::size_t i = 0; i < num_sets; ++i) {
          if (!alive[i]) continue;
          if (detail::contains_traced<Mem>(pool[i], seed)) {
            alive[i] = 0;
            continue;
          }
          detail::for_each_traced<Mem>(pool[i], [&](VertexId v) {
            Mem::touch(&counters, sizeof(std::uint64_t));
            slab.increment(v);
          });
        }
      }
    } else {
      // Decrement: remove each covered set's contribution. Under the
      // sharded layout the decrement lands on the DECREMENTING thread's
      // home replica — possibly not the one the matching increment hit;
      // the summed view stays exact either way (modular arithmetic, see
      // atomic_counters.hpp), which is what makes the §IV-C adaptive
      // update shard-layout-agnostic.
#pragma omp parallel
      {
        CounterSlab slab = counters.local();
#pragma omp for schedule(dynamic, 16)
        for (std::size_t i = 0; i < num_sets; ++i) {
          if (!alive[i]) continue;
          if (!detail::contains_traced<Mem>(pool[i], seed)) continue;
          alive[i] = 0;
          detail::for_each_traced<Mem>(pool[i], [&](VertexId v) {
            Mem::touch(&counters, sizeof(std::uint64_t));
            slab.decrement(v);
          });
        }
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Ripples baseline kernel (§II-B)
// ---------------------------------------------------------------------------

template <typename Mem = NullMem, typename PoolT = RRRPool>
SelectionResult ripples_select_t(const PoolT& pool,
                                 const SelectionOptions& options) {
  const std::size_t num_sets = pool.size();
  const VertexId n = pool.num_vertices();
  EIMM_CHECK(options.k > 0, "k must be positive");

  SelectionResult result;
  result.total_sets = num_sets;
  std::vector<std::uint8_t> own_alive;
  std::vector<std::uint8_t>& alive =
      options.alive_scratch != nullptr ? *options.alive_scratch : own_alive;
  alive.assign(num_sets, 1);

  // Thread-local counters over a static vertex partition. Stored as one
  // flat array indexed by vertex: thread t owns [vl, vh) and only touches
  // its own slice, mimicking Ripples' per-thread counter vectors.
  std::vector<std::uint64_t> local_counters(n, 0);

  // Initial count: EVERY thread traverses EVERY RRR set and uses binary
  // search to find the slice of the (sorted) set that intersects its
  // vertex range — the access pattern Challenge 1 blames.
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [vl, vh] = block_range(n, nthreads, tid);
    for (std::size_t i = 0; i < num_sets; ++i) {
      const auto& set = pool[i];
      if (set.repr() == RRRRepr::kVector) {
        const auto& verts = set.vertices();
        // Binary search for the lower bound of the thread's range...
        std::size_t lo = 0, hi = verts.size();
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          Mem::touch(verts.data() + mid, sizeof(VertexId));
          if (verts[mid] < vl) lo = mid + 1;
          else hi = mid;
        }
        // ...then walk members inside [vl, vh).
        for (std::size_t j = lo; j < verts.size() && verts[j] < vh; ++j) {
          Mem::touch(verts.data() + j, sizeof(VertexId));
          Mem::touch(local_counters.data() + verts[j], sizeof(std::uint64_t));
          local_counters[verts[j]]++;
        }
      } else {
        set.for_each([&](VertexId v) {
          if (v >= vl && v < vh) {
            Mem::touch(local_counters.data() + v, sizeof(std::uint64_t));
            local_counters[v]++;
          }
        });
      }
    }
  }

  const std::size_t rounds = std::min<std::size_t>(options.k, n);
  for (std::size_t round = 0; round < rounds; ++round) {
    // Reduce the per-thread maxima (lowest-id tie-break, same as the
    // efficient kernel, so seed sequences are comparable).
    ArgMaxResult best{0, 0};
    for (VertexId v = 0; v < n; ++v) {
      Mem::touch(local_counters.data() + v, sizeof(std::uint64_t));
      if (local_counters[v] > best.value) {
        best.value = local_counters[v];
        best.index = v;
      }
    }
    if (best.value == 0) break;
    const auto seed = static_cast<VertexId>(best.index);
    result.seeds.push_back(seed);
    result.marginal_coverage.push_back(best.value);

    // Decrement pass: every thread re-scans every alive set, binary-
    // searching for the seed; sets containing it are retired and their
    // members' counters (within the thread's range) decremented.
    std::uint64_t covered_count = 0;
#pragma omp parallel reduction(+ : covered_count)
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
      const auto [vl, vh] = block_range(n, nthreads, tid);
      for (std::size_t i = 0; i < num_sets; ++i) {
        if (!alive[i]) continue;
        if (!detail::contains_traced<Mem>(pool[i], seed)) continue;
        if (tid == 0) ++covered_count;  // count each set once
        const auto& set = pool[i];
        if (set.repr() == RRRRepr::kVector) {
          const auto& verts = set.vertices();
          std::size_t lo = 0, hi = verts.size();
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            Mem::touch(verts.data() + mid, sizeof(VertexId));
            if (verts[mid] < vl) lo = mid + 1;
            else hi = mid;
          }
          for (std::size_t j = lo; j < verts.size() && verts[j] < vh; ++j) {
            Mem::touch(verts.data() + j, sizeof(VertexId));
            Mem::touch(local_counters.data() + verts[j],
                       sizeof(std::uint64_t));
            local_counters[verts[j]]--;
          }
        } else {
          set.for_each([&](VertexId v) {
            if (v >= vl && v < vh) {
              Mem::touch(local_counters.data() + v, sizeof(std::uint64_t));
              local_counters[v]--;
            }
          });
        }
      }
      // Retire covered sets after all threads finished decrementing.
#pragma omp barrier
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < num_sets; ++i) {
        if (alive[i] && detail::contains_traced<Mem>(pool[i], seed)) {
          alive[i] = 0;
        }
      }
    }
    result.covered_sets += covered_count;
  }
  return result;
}

/// Production-path wrappers (NullMem), defined in select.cpp.
SelectionResult efficient_select(const RRRPool& pool, CounterArray& counters,
                                 const SelectionOptions& options);
SelectionResult ripples_select(const RRRPool& pool,
                               const SelectionOptions& options);

}  // namespace eimm
