#include "rrr/gap_codec.hpp"

#include <string>

namespace eimm {

namespace detail {

void fail_varint(const char* reason, std::size_t pos) {
  throw CheckError(std::string(reason) + " at byte offset " +
                   std::to_string(pos) + " of gap stream");
}

}  // namespace detail

std::size_t append_gap_stream(std::vector<std::uint8_t>& out,
                              std::span<const VertexId> sorted) {
  const std::size_t before = out.size();
  VertexId previous = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::uint64_t encoded =
        (i == 0) ? static_cast<std::uint64_t>(sorted[i]) + 1
                 : static_cast<std::uint64_t>(sorted[i] - previous);
    write_varint(out, encoded);
    previous = sorted[i];
  }
  return out.size() - before;
}

std::uint64_t gap_stream_bytes(std::span<const VertexId> sorted) noexcept {
  std::uint64_t total = 0;
  VertexId previous = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::uint64_t encoded =
        (i == 0) ? static_cast<std::uint64_t>(sorted[i]) + 1
                 : static_cast<std::uint64_t>(sorted[i] - previous);
    total += varint_bytes(encoded);
    previous = sorted[i];
  }
  return total;
}

std::vector<VertexId> GapRun::decode() const {
  std::vector<VertexId> out;
  out.reserve(count);
  for_each([&](VertexId v) { out.push_back(v); });
  return out;
}

}  // namespace eimm
