#include "rrr/pool.hpp"

#include <algorithm>

#include "support/macros.hpp"

namespace eimm {

void RRRPool::resize(std::size_t count) {
  EIMM_CHECK(count >= sets_.size(), "RRRPool never shrinks");
  sets_.resize(count);
}

std::uint64_t RRRPool::memory_bytes() const noexcept {
  std::uint64_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const auto& s : sets_) bytes += s.memory_bytes();
  return bytes;
}

std::uint64_t RRRPool::total_vertices() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : sets_) total += s.size();
  return total;
}

double RRRPool::average_coverage() const noexcept {
  if (sets_.empty() || num_vertices_ == 0) return 0.0;
  return static_cast<double>(total_vertices()) /
         (static_cast<double>(sets_.size()) *
          static_cast<double>(num_vertices_));
}

double RRRPool::max_coverage() const noexcept {
  if (num_vertices_ == 0) return 0.0;
  std::size_t max_size = 0;
  for (const auto& s : sets_) max_size = std::max(max_size, s.size());
  return static_cast<double>(max_size) / static_cast<double>(num_vertices_);
}

std::size_t RRRPool::bitmap_count() const noexcept {
  std::size_t c = 0;
  for (const auto& s : sets_) c += (s.repr() == RRRRepr::kBitmap) ? 1 : 0;
  return c;
}

FlatPool RRRPool::flatten() const {
  FlatPool flat;
  flat.num_vertices = num_vertices_;
  flat.offsets.resize(sets_.size() + 1);
  flat.offsets[0] = 0;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    flat.offsets[i + 1] = flat.offsets[i] + sets_[i].size();
  }
  flat.vertices.resize(flat.offsets.back());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    std::uint64_t cursor = flat.offsets[i];
    sets_[i].for_each(
        [&](VertexId v) { flat.vertices[cursor++] = v; });
  }
  return flat;
}

}  // namespace eimm
