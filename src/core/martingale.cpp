#include "core/martingale.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/macros.hpp"

namespace eimm {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

MartingaleParams compute_martingale_params(VertexId n, std::size_t k,
                                           double epsilon, double ell) {
  EIMM_CHECK(n >= 2, "graph too small for IMM");
  EIMM_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  EIMM_CHECK(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");

  MartingaleParams p;
  p.n = n;
  p.k = k;
  p.epsilon = epsilon;
  p.epsilon_prime = std::sqrt(2.0) * epsilon;

  const double dn = static_cast<double>(n);
  const double ln_n = std::log(dn);
  // Union-bound boost (Tang et al. §4.2): with the boosted ℓ the whole
  // algorithm, probing included, succeeds with probability 1 - 1/n^ℓ.
  p.ell = ell * (1.0 + std::log(2.0) / ln_n);
  p.log_choose_nk = log_binomial(n, k);

  const double eps_p = p.epsilon_prime;
  const double log2n = std::log2(dn);
  // λ' = (2 + 2/3 ε') (ln C(n,k) + ℓ ln n + ln log2 n) n / ε'^2
  p.lambda_prime = (2.0 + 2.0 / 3.0 * eps_p) *
                   (p.log_choose_nk + p.ell * ln_n + std::log(log2n)) * dn /
                   (eps_p * eps_p);

  // λ* = 2n ((1-1/e)α + β)^2 ε^-2, with
  // α = sqrt(ℓ ln n + ln 2), β = sqrt((1-1/e)(ln C(n,k) + ℓ ln n + ln 2)).
  const double one_minus_inv_e = 1.0 - 1.0 / std::exp(1.0);
  const double alpha = std::sqrt(p.ell * ln_n + std::log(2.0));
  const double beta = std::sqrt(one_minus_inv_e *
                                (p.log_choose_nk + p.ell * ln_n + std::log(2.0)));
  const double term = one_minus_inv_e * alpha + beta;
  p.lambda_star = 2.0 * dn * term * term / (epsilon * epsilon);
  return p;
}

unsigned MartingaleParams::max_iterations() const noexcept {
  const double log2n = std::log2(static_cast<double>(n));
  const auto iters = static_cast<long>(std::ceil(log2n)) - 1;
  return iters < 1 ? 1u : static_cast<unsigned>(iters);
}

std::uint64_t MartingaleParams::theta_for_iteration(unsigned i) const noexcept {
  const double x = static_cast<double>(n) / std::exp2(static_cast<double>(i));
  const double theta = lambda_prime / std::max(x, 1.0);
  return theta < 1.0 ? 1ULL : static_cast<std::uint64_t>(theta);
}

std::uint64_t MartingaleParams::theta_final(double lower_bound) const noexcept {
  const double lb = std::max(lower_bound, 1.0);
  const double theta = lambda_star / lb;
  return theta < 1.0 ? 1ULL : static_cast<std::uint64_t>(theta);
}

bool MartingaleParams::accepts(double coverage_fraction,
                               unsigned i) const noexcept {
  const double x = static_cast<double>(n) / std::exp2(static_cast<double>(i));
  return static_cast<double>(n) * coverage_fraction >=
         (1.0 + epsilon_prime) * x;
}

double MartingaleParams::lower_bound(double coverage_fraction) const noexcept {
  return static_cast<double>(n) * coverage_fraction / (1.0 + epsilon_prime);
}

std::uint64_t run_martingale_probing(
    const MartingaleParams& params,
    const std::function<void(std::uint64_t)>& generate_to,
    const std::function<double()>& select_coverage,
    const std::function<void(const MartingaleIteration&)>& observe) {
  static const obs::Counter rounds = obs::counter("martingale.rounds_total");
  double lower_bound = 1.0;
  for (unsigned i = 1; i <= params.max_iterations(); ++i) {
    MartingaleIteration record;
    record.iteration = i;
    record.theta = params.theta_for_iteration(i);
    obs::TraceSpan span("martingale.round", "iteration", i, "theta",
                        static_cast<std::int64_t>(record.theta));
    rounds.add();
    generate_to(record.theta);
    record.coverage = select_coverage();
    record.lower_bound = params.lower_bound(record.coverage);
    record.accepted = params.accepts(record.coverage, i);
    if (observe) observe(record);
    if (record.accepted) {
      lower_bound = record.lower_bound;
      break;
    }
    // Keep the best certified-free estimate as a fallback LB so that a
    // probe loop that never triggers still produces a sane θ.
    lower_bound = std::max(lower_bound, record.lower_bound / 2.0);
  }

  // Set Theta + top-up generation (generate_to is idempotent below the
  // high-water mark, so an already-large pool is left alone).
  const std::uint64_t theta = params.theta_final(lower_bound);
  generate_to(theta);
  return theta;
}

std::uint64_t cap_theta_request(std::uint64_t target, std::uint64_t max_sets,
                                bool& capped) {
  if (target <= max_sets) return target;
  capped = true;
  EIMM_LOG_WARN << "theta " << target << " capped at max_rrr_sets="
                << max_sets << "; approximation guarantee weakened";
  return max_sets;
}

}  // namespace eimm
