#include "support/env.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace eimm {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || (end != nullptr && *end != '\0') ||
      errno == ERANGE) {
    return fallback;
  }
  return static_cast<std::int64_t>(v);
}

double env_double(const char* name, double fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s->c_str(), &end);
  // ERANGE also fires on underflow to a subnormal (strtod("1e-320")),
  // which is still the correctly rounded value — only reject overflow.
  if (end == s->c_str() || (end != nullptr && *end != '\0') ||
      (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))) {
    return fallback;
  }
  return v;
}

bool env_bool(const char* name, bool fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  return fallback;
}

}  // namespace eimm
