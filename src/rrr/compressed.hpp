// Delta-varint compressed RRR-set storage — the HBMax-style alternative
// the paper discusses and rejects (§IV-C):
//
//   "Prior effort ... has adopted Huffman coding or bitmap coding to
//    compress RRRsets. While effective in reducing storage requirements,
//    these methods come with a trade-off, notably increasing the
//    computational overhead associated with encoding and decoding."
//
// This module makes that trade-off measurable: a sorted vertex list is
// stored as LEB128-varint-encoded gaps (first element absolute, then
// strictly positive deltas), typically 1-2 bytes per member instead of 4.
// Membership requires a linear decode — O(s) versus the adaptive
// representation's O(log s)/O(1) — which is exactly the codec overhead
// the paper's adaptive scheme avoids. bench/micro_rrr quantifies it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace eimm {

class CompressedSet {
 public:
  CompressedSet() = default;

  /// Encodes `vertices` (any order; duplicates removed).
  static CompressedSet encode(std::vector<VertexId> vertices);

  /// Number of members.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Encoded payload bytes (the memory the compression buys).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bytes_.capacity() * sizeof(std::uint8_t);
  }

  /// Membership test by linear decode: O(size). Early-exits once the
  /// running value passes v (gaps are strictly positive).
  [[nodiscard]] bool contains(VertexId v) const noexcept;

  /// Invokes fn(vertex) for every member in ascending order.
  /// Encoding: the first varint is v0+1, each subsequent one is the gap
  /// v_i - v_{i-1} (strictly positive for a deduplicated sorted list).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::size_t pos = 0;
    VertexId current = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      const std::uint64_t value = read_varint(pos);
      current = (i == 0) ? static_cast<VertexId>(value - 1)
                         : static_cast<VertexId>(current + value);
      fn(current);
    }
  }

  /// Full decode back to the sorted vertex list.
  [[nodiscard]] std::vector<VertexId> decode() const;

 private:
  [[nodiscard]] std::uint64_t read_varint(std::size_t& pos) const noexcept;
  static void write_varint(std::vector<std::uint8_t>& out,
                           std::uint64_t value);

  std::size_t count_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace eimm
