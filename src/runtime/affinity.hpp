// Thread-to-NUMA-domain pinning (§IV-B follow-through).
//
// PR 3 made RRR *storage* domain-local but left thread placement to the
// OS scheduler (ROADMAP: "placement relies on OMP_PROC_BIND") — a
// migrated thread drags its working set to a remote domain and the
// mbind(kLocal) staging pages stop being local. This layer owns the
// worker→cpu→domain map:
//
//   * PinMode — EIMM_PIN=auto|none|compact|spread (or set_pin_mode for
//     CLIs). `auto` resolves to compact on NUMA hosts and to a no-op on
//     single-node hosts, so laptops/CI keep the identical code path.
//   * make_pin_plan — builds the worker→cpu assignment from the live
//     numa::topology: compact fills one domain before the next (worker
//     groups match the ShardPlan's contiguous shard groups), spread
//     round-robins domains (one worker per domain per turn).
//   * pin_openmp_team — pins the current OpenMP team (one worker per
//     thread id, so later parallel regions of the same team reuse the
//     pinned OS threads) and returns the EFFECTIVE map read back via
//     sched_getcpu, logged once under EIMM_VERBOSE so mis-pinning is
//     diagnosable instead of silent.
//
// Pinning is a performance hint, never a correctness requirement: every
// entry point degrades to a no-op when the topology is flat, the mode is
// none, or the pthread affinity call is rejected (cpusets, sandboxes).
// Re-pinning is idempotent — callers may pin per phase without tracking
// whether a previous phase already did.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "numa/topology.hpp"

namespace eimm {

enum class PinMode {
  kNone,     // leave threads wherever the scheduler puts them
  kAuto,     // compact on NUMA hosts, none on single-node hosts
  kCompact,  // fill domain 0's cpus, then domain 1's, ...
  kSpread,   // round-robin: one cpu from each domain in turn
};

constexpr std::string_view to_string(PinMode mode) noexcept {
  switch (mode) {
    case PinMode::kNone: return "none";
    case PinMode::kAuto: return "auto";
    case PinMode::kCompact: return "compact";
    case PinMode::kSpread: return "spread";
  }
  return "none";
}

/// Parses "none" | "auto" | "compact" | "spread" (case-insensitive).
/// Anything else returns `fallback` and sets *ok to false — the negative
/// path EIMM_PIN resolution warns on instead of aborting a run.
PinMode parse_pin_mode(const std::string& s, PinMode fallback,
                       bool* ok = nullptr);

/// Process-wide mode: a set_pin_mode() override wins, then EIMM_PIN,
/// then kAuto. Unparseable EIMM_PIN values warn and resolve to kAuto.
PinMode resolve_pin_mode();

/// Explicit override (CLI --pin); wins over EIMM_PIN until reset.
void set_pin_mode(PinMode mode);
/// Drops the override; resolution returns to EIMM_PIN / kAuto.
void reset_pin_mode();

/// Resolves kAuto against a topology: compact when >1 domain, else none.
PinMode effective_pin_mode(PinMode mode, const NumaTopology& topo) noexcept;

/// The worker→cpu assignment one team of `workers` threads should use.
/// Inactive (empty) when the effective mode is none or the topology
/// exposes no usable cpu map — callers skip pinning entirely.
struct PinPlan {
  PinMode mode = PinMode::kNone;  ///< effective mode the plan encodes
  std::vector<int> worker_cpu;    ///< worker w → cpu id
  std::vector<int> worker_domain; ///< worker w → NUMA node of that cpu

  [[nodiscard]] bool active() const noexcept { return !worker_cpu.empty(); }
  [[nodiscard]] std::size_t workers() const noexcept {
    return worker_cpu.size();
  }
};

PinPlan make_pin_plan(PinMode mode, std::size_t workers,
                      const NumaTopology& topo);

/// Pins the calling thread to one cpu. False when cpu < 0, the platform
/// has no pthread affinity, or the kernel rejected the mask (the caller
/// proceeds unpinned). Calling again with the same cpu is a no-op that
/// still reports success — idempotent re-pinning.
bool pin_current_thread(int cpu);

/// Applies `plan` to the calling thread as worker `worker` (modulo the
/// plan width, so oversubscribed teams wrap). Returns the cpu pinned to,
/// or -1 for inactive plans / rejected masks.
int apply_pin(const PinPlan& plan, std::size_t worker);

/// Cpus the calling thread is currently allowed on (pthread affinity
/// mask read-back; empty when unsupported). Test/diagnostic helper.
std::vector<int> current_affinity_cpus();

/// Sets the calling thread's affinity mask to exactly `cpus`. False when
/// empty, unsupported, or rejected by the kernel.
bool set_affinity_cpus(const std::vector<int>& cpus);

/// RAII guard that snapshots the calling thread's affinity mask and
/// restores it on destruction. Pinning is deliberately sticky for the
/// compute phases (run_imm owns its process's threads, and OpenMP pool
/// threads are re-pinned by the next phase's pin_openmp_team call) —
/// but serving entry points called from arbitrary application threads
/// (QueryEngine::run_batch) wrap themselves in this guard so a pinned
/// batch never permanently narrows the CALLER's thread, whose mask
/// later-spawned threads would inherit.
class ScopedAffinityRestore {
 public:
  ScopedAffinityRestore() : saved_(current_affinity_cpus()) {}
  ~ScopedAffinityRestore() {
    if (!saved_.empty()) set_affinity_cpus(saved_);
  }
  ScopedAffinityRestore(const ScopedAffinityRestore&) = delete;
  ScopedAffinityRestore& operator=(const ScopedAffinityRestore&) = delete;

 private:
  std::vector<int> saved_;
};

/// One row of the effective pinning map.
struct PinnedThread {
  int thread = -1;  ///< OpenMP thread id (== plan worker index)
  int cpu = -1;     ///< cpu the thread reported AFTER pinning
  int domain = 0;   ///< NUMA node of that cpu
  bool pinned = false;
};

/// Pins the current OpenMP team under `mode` (spawns one parallel
/// region; later regions reuse the same pinned OS threads) and returns
/// the effective thread→cpu→domain map. Empty when the effective mode is
/// none. The first active map of the process is logged to stderr under
/// EIMM_VERBOSE. Safe to call repeatedly — re-pinning is idempotent.
std::vector<PinnedThread> pin_openmp_team(PinMode mode);

/// pin_openmp_team(resolve_pin_mode()).
std::vector<PinnedThread> pin_openmp_team();

}  // namespace eimm
