#include "rrr/huffman.hpp"

#include <algorithm>
#include <queue>

#include "rrr/compressed.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

/// Computes Huffman code lengths from symbol frequencies via the
/// classic two-queue/heap construction; lengths are capped naturally
/// (256 symbols -> max depth 255 fits uint8).
std::array<std::uint8_t, 256> compute_code_lengths(
    const std::array<std::uint64_t, 256>& freq) {
  struct Node {
    std::uint64_t weight;
    int index;          // tie-break for determinism
    int left = -1;
    int right = -1;
    int symbol = -1;    // >= 0 for leaves
  };
  std::vector<Node> nodes;
  auto cmp = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight !=
        nodes[static_cast<std::size_t>(b)].weight) {
      return nodes[static_cast<std::size_t>(a)].weight >
             nodes[static_cast<std::size_t>(b)].weight;
    }
    return nodes[static_cast<std::size_t>(a)].index >
           nodes[static_cast<std::size_t>(b)].index;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  for (int s = 0; s < 256; ++s) {
    if (freq[static_cast<std::size_t>(s)] == 0) continue;
    nodes.push_back({freq[static_cast<std::size_t>(s)],
                     static_cast<int>(nodes.size()), -1, -1, s});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }

  std::array<std::uint8_t, 256> lengths{};
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    // Single-symbol alphabet: give it a 1-bit code.
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back({nodes[static_cast<std::size_t>(a)].weight +
                         nodes[static_cast<std::size_t>(b)].weight,
                     static_cast<int>(nodes.size()), a, b, -1});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first walk assigning depths as code lengths (iterative).
  std::vector<std::pair<int, std::uint8_t>> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      lengths[static_cast<std::size_t>(node.symbol)] =
          depth == 0 ? 1 : depth;  // degenerate guard
      continue;
    }
    stack.push_back({node.left, static_cast<std::uint8_t>(depth + 1)});
    stack.push_back({node.right, static_cast<std::uint8_t>(depth + 1)});
  }
  return lengths;
}

/// Canonical code assignment: symbols sorted by (length, value) get
/// consecutive codes; decode only needs the lengths array.
struct CanonicalBook {
  std::array<std::uint32_t, 256> codes{};
  std::array<std::uint8_t, 256> lengths{};
};

CanonicalBook build_canonical(const std::array<std::uint8_t, 256>& lengths) {
  CanonicalBook book;
  book.lengths = lengths;
  std::vector<int> symbols;
  for (int s = 0; s < 256; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return a < b;
  });
  std::uint32_t code = 0;
  std::uint8_t previous_length = 0;
  for (const int s : symbols) {
    const std::uint8_t length = lengths[static_cast<std::size_t>(s)];
    code <<= (length - previous_length);
    book.codes[static_cast<std::size_t>(s)] = code;
    ++code;
    previous_length = length;
  }
  return book;
}

class BitWriter {
 public:
  void write(std::uint32_t code, std::uint8_t length) {
    for (int b = length - 1; b >= 0; --b) {
      if (bit_ == 0) bytes_.push_back(0);
      if ((code >> b) & 1u) {
        bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_));
      }
      bit_ = (bit_ + 1) % 8;
    }
    total_bits_ += length;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::uint64_t bits() const noexcept { return total_bits_; }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace

HuffmanCodec::Encoded HuffmanCodec::encode(
    const std::vector<std::uint8_t>& data) {
  Encoded out;
  if (data.empty()) return out;

  std::array<std::uint64_t, 256> freq{};
  for (const std::uint8_t byte : data) ++freq[byte];
  out.code_lengths = compute_code_lengths(freq);
  const CanonicalBook book = build_canonical(out.code_lengths);

  BitWriter writer;
  for (const std::uint8_t byte : data) {
    writer.write(book.codes[byte], book.lengths[byte]);
  }
  out.payload_bits = writer.bits();
  out.bits = writer.take();
  out.bits.shrink_to_fit();
  return out;
}

std::vector<std::uint8_t> HuffmanCodec::decode(const Encoded& encoded) {
  std::vector<std::uint8_t> out;
  if (encoded.payload_bits == 0) return out;

  const CanonicalBook book = build_canonical(encoded.code_lengths);
  // Canonical decode tables: first code and symbol offset per length.
  std::array<std::uint32_t, 33> first_code{};
  std::array<std::uint32_t, 33> first_index{};
  std::vector<std::uint8_t> ordered_symbols;
  {
    std::vector<int> symbols;
    for (int s = 0; s < 256; ++s) {
      if (book.lengths[static_cast<std::size_t>(s)] > 0) symbols.push_back(s);
    }
    std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
      const auto la = book.lengths[static_cast<std::size_t>(a)];
      const auto lb = book.lengths[static_cast<std::size_t>(b)];
      if (la != lb) return la < lb;
      return a < b;
    });
    for (const int s : symbols) {
      ordered_symbols.push_back(static_cast<std::uint8_t>(s));
    }
    std::uint32_t code = 0;
    std::size_t index = 0;
    for (std::uint8_t length = 1; length <= 32; ++length) {
      code <<= 1;
      first_code[length] = code;
      first_index[length] = static_cast<std::uint32_t>(index);
      while (index < ordered_symbols.size() &&
             book.lengths[ordered_symbols[index]] == length) {
        ++index;
        ++code;
      }
    }
  }

  std::uint32_t code = 0;
  std::uint8_t length = 0;
  for (std::uint64_t bit = 0; bit < encoded.payload_bits; ++bit) {
    const std::size_t byte_index = static_cast<std::size_t>(bit / 8);
    EIMM_CHECK(byte_index < encoded.bits.size(),
               "truncated Huffman payload");
    const int bit_in_byte = static_cast<int>(7 - (bit % 8));
    code = (code << 1) |
           ((encoded.bits[byte_index] >> bit_in_byte) & 1u);
    ++length;
    EIMM_CHECK(length <= 32, "invalid Huffman stream (no code matched)");
    // A code of this length is valid when it falls inside the canonical
    // range [first_code[len], first_code[len] + count[len]).
    const std::uint32_t offset = code - first_code[length];
    const std::uint32_t symbol_index = first_index[length] + offset;
    if (code >= first_code[length] &&
        symbol_index < ordered_symbols.size() &&
        book.lengths[ordered_symbols[symbol_index]] == length) {
      out.push_back(ordered_symbols[symbol_index]);
      code = 0;
      length = 0;
    }
  }
  EIMM_CHECK(length == 0, "dangling bits at end of Huffman stream");
  return out;
}

HuffmanSet HuffmanSet::encode(std::vector<VertexId> vertices) {
  // Reuse the varint gap encoding as the byte stream to compress.
  const CompressedSet varint = CompressedSet::encode(std::move(vertices));
  // Re-expand to bytes: CompressedSet stores exactly the stream we want.
  // (decode+re-encode keeps the coupling loose at negligible cost.)
  std::vector<std::uint8_t> gap_bytes;
  {
    const std::vector<VertexId> sorted = varint.decode();
    VertexId previous = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      std::uint64_t value = (i == 0)
                                ? static_cast<std::uint64_t>(sorted[i]) + 1
                                : static_cast<std::uint64_t>(sorted[i] -
                                                             previous);
      previous = sorted[i];
      while (value >= 0x80) {
        gap_bytes.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
      }
      gap_bytes.push_back(static_cast<std::uint8_t>(value));
    }
  }
  HuffmanSet set;
  set.count_ = varint.size();
  set.encoded_ = HuffmanCodec::encode(gap_bytes);
  return set;
}

std::vector<VertexId> HuffmanSet::decode() const {
  std::vector<VertexId> out;
  out.reserve(count_);
  const std::vector<std::uint8_t> gap_bytes = HuffmanCodec::decode(encoded_);
  std::size_t pos = 0;
  VertexId previous = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      EIMM_CHECK(pos < gap_bytes.size(), "truncated gap stream");
      const std::uint8_t byte = gap_bytes[pos++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    previous = (i == 0) ? static_cast<VertexId>(value - 1)
                        : static_cast<VertexId>(previous + value);
    out.push_back(previous);
  }
  return out;
}

bool HuffmanSet::contains(VertexId v) const {
  // Full decode per lookup: deliberately exposes the codec overhead.
  const std::vector<VertexId> members = decode();
  return std::binary_search(members.begin(), members.end(), v);
}

}  // namespace eimm
