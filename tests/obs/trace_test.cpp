// Trace-span coverage: the disabled fast path, per-thread buffering
// with shared tid attribution, Chrome trace-event JSON emission
// (validated with the repo's own JSON parser), and an end-to-end
// run_imm whose span names cover sampling shards, martingale rounds,
// and selection.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "core/imm.hpp"
#include "obs/metrics.hpp"
#include "support/json_parse.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_path("");
    reset_trace_events();
  }
  void TearDown() override {
    set_trace_path("");
    reset_trace_events();
  }
};

JsonValue parse_events(const std::string& text) {
  const JsonValue doc = parse_json(text);
  EXPECT_TRUE(doc.is_object());
  return doc.at("traceEvents");
}

std::set<std::string> event_names(const JsonValue& events) {
  std::set<std::string> names;
  for (const JsonValue& event : events.as_array()) {
    names.insert(event.at("name").as_string());
  }
  return names;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  {
    TraceSpan span("should.not.appear", "k", 1);
    span.arg("extra", 2);
  }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(flush_trace(), "");
}

TEST_F(TraceTest, SpanRecordsWhenEnabled) {
  const std::string path = ::testing::TempDir() + "/eimm_trace_basic.json";
  set_trace_path(path);
  ASSERT_TRUE(trace_enabled());
  EXPECT_EQ(trace_path(), path);
  {
    TraceSpan span("unit.span", "shard", 3, "domain", 0);
    span.arg("worker", 7);
  }
  EXPECT_EQ(trace_event_count(), 1u);
}

TEST_F(TraceTest, JsonOutputIsChromeTraceFormat) {
  set_trace_path(::testing::TempDir() + "/eimm_trace_fmt.json");
  { TraceSpan span("fmt.outer", "k", 5); }
  { TraceSpan span("fmt.inner"); }

  std::ostringstream os;
  write_trace_json(os);
  const JsonValue events = parse_events(os.str());
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.as_array().size(), 2u);

  const std::set<std::string> names = event_names(events);
  EXPECT_TRUE(names.count("fmt.outer"));
  EXPECT_TRUE(names.count("fmt.inner"));
  for (const JsonValue& event : events.as_array()) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("cat").as_string(), "eimm");
    EXPECT_TRUE(event.at("ts").is_number());
    EXPECT_TRUE(event.at("dur").is_number());
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    EXPECT_TRUE(event.at("tid").is_number());
    if (event.at("name").as_string() == "fmt.outer") {
      EXPECT_DOUBLE_EQ(event.at("args").at("k").as_number(), 5.0);
    }
  }
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  set_trace_path(::testing::TempDir() + "/eimm_trace_tids.json");
  { TraceSpan span("tid.main"); }
  std::thread worker([] { TraceSpan span("tid.worker"); });
  worker.join();

  std::ostringstream os;
  write_trace_json(os);
  const JsonValue events = parse_events(os.str());
  double main_tid = -1.0;
  double worker_tid = -1.0;
  for (const JsonValue& event : events.as_array()) {
    if (event.at("name").as_string() == "tid.main") {
      main_tid = event.at("tid").as_number();
    } else if (event.at("name").as_string() == "tid.worker") {
      worker_tid = event.at("tid").as_number();
    }
  }
  EXPECT_GE(main_tid, 0.0);
  EXPECT_GE(worker_tid, 0.0);
  EXPECT_NE(main_tid, worker_tid);
}

TEST_F(TraceTest, FlushWritesFileAndIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/eimm_trace_flush.json";
  set_trace_path(path);
  { TraceSpan span("flush.one"); }
  EXPECT_EQ(flush_trace(), path);
  { TraceSpan span("flush.two"); }
  EXPECT_EQ(flush_trace(), path);  // rewrites a superset

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const std::set<std::string> names = event_names(parse_events(text.str()));
  EXPECT_TRUE(names.count("flush.one"));
  EXPECT_TRUE(names.count("flush.two"));
}

TEST_F(TraceTest, ResetDiscardsBufferedEvents) {
  set_trace_path(::testing::TempDir() + "/eimm_trace_reset.json");
  { TraceSpan span("reset.victim"); }
  ASSERT_EQ(trace_event_count(), 1u);
  reset_trace_events();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, RunImmEmitsPhaseSpans) {
  set_trace_path(::testing::TempDir() + "/eimm_trace_e2e.json");
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 4;
  options.max_rrr_sets = 4096;
  options.shards = 2;
  (void)run_efficient_imm(g, options);

  std::ostringstream os;
  write_trace_json(os);
  const std::set<std::string> names = event_names(parse_events(os.str()));
  EXPECT_TRUE(names.count("run_imm"));
  EXPECT_TRUE(names.count("sampling.generate"));
  EXPECT_TRUE(names.count("sampler.shard"));
  EXPECT_TRUE(names.count("martingale.round"));
  EXPECT_TRUE(names.count("selection.select"));
  EXPECT_TRUE(names.count("selection.final"));
}

}  // namespace
}  // namespace eimm::obs
