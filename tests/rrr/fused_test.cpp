#include "rrr/fused.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "rrr/generate.hpp"
#include "runtime/rng_stream.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using testing::ScopedEnv;
using testing::make_graph;
using testing::make_weighted_graph;
using testing::set_uniform_probability;

constexpr std::uint64_t kSeed = 0xBE9C;

// Checks the FusedScratch all-zero invariant the traversals must restore.
void expect_scratch_clean(const FusedScratch& scratch) {
  for (const std::uint64_t w : scratch.visited) EXPECT_EQ(w, 0u);
  for (const std::uint64_t w : scratch.pending) EXPECT_EQ(w, 0u);
}

TEST(ResolveFusedSampling, ExplicitWinsEnvFillsAuto) {
  ScopedEnv on("EIMM_FUSED", "1");
  EXPECT_FALSE(resolve_fused_sampling(FusedSampling::kOff));
  EXPECT_TRUE(resolve_fused_sampling(FusedSampling::kOn));
  EXPECT_TRUE(resolve_fused_sampling(FusedSampling::kAuto));
  ScopedEnv off("EIMM_FUSED", nullptr);
  EXPECT_FALSE(resolve_fused_sampling(FusedSampling::kAuto));
}

TEST(BernoulliMask, DegenerateProbabilities) {
  Xoshiro256 rng = rng_stream(kSeed, 0);
  EXPECT_EQ(bernoulli_mask(rng, 0.0), 0u);
  EXPECT_EQ(bernoulli_mask(rng, -1.0), 0u);
  EXPECT_EQ(bernoulli_mask(rng, 1.0), ~std::uint64_t{0});
  EXPECT_EQ(bernoulli_mask(rng, 2.0), ~std::uint64_t{0});
  // Below the 2^-32 quantization grid rounds to never.
  EXPECT_EQ(bernoulli_mask(rng, 1e-12), 0u);
}

TEST(BernoulliMask, MatchesProbabilityStatistically) {
  // 4096 masks x 64 lanes = 262144 Bernoulli trials per p: the sample
  // fraction's standard error is sqrt(p(1-p)/262144) <= 0.001, so the
  // 0.01 band is a ~10 sigma gate.
  for (const double p : {0.1, 0.3, 0.5, 0.737, 0.9}) {
    Xoshiro256 rng = rng_stream(kSeed, static_cast<std::uint64_t>(p * 1000));
    std::uint64_t ones = 0;
    constexpr int kMasks = 4096;
    for (int i = 0; i < kMasks; ++i) {
      ones += static_cast<std::uint64_t>(std::popcount(bernoulli_mask(rng, p)));
    }
    const double fraction = static_cast<double>(ones) / (64.0 * kMasks);
    EXPECT_NEAR(fraction, p, 0.01) << "p = " << p;
  }
}

TEST(BernoulliMask, LanesAreIndependentAcrossDraws) {
  // Adjacent masks from one stream must not correlate lane-wise (the
  // bit-serial construction reuses draws across lanes WITHIN a mask, but
  // every mask consumes fresh draws). Count per-lane transitions: for
  // p=0.5 each lane's consecutive-mask pair hits each of the 4 outcomes
  // with probability 1/4.
  Xoshiro256 rng = rng_stream(kSeed, 99);
  constexpr int kPairs = 8192;
  std::uint64_t both = 0;
  std::uint64_t prev = bernoulli_mask(rng, 0.5);
  for (int i = 0; i < kPairs; ++i) {
    const std::uint64_t cur = bernoulli_mask(rng, 0.5);
    both += static_cast<std::uint64_t>(std::popcount(prev & cur));
    prev = cur;
  }
  const double fraction = static_cast<double>(both) / (64.0 * kPairs);
  EXPECT_NEAR(fraction, 0.25, 0.01);
}

TEST(FusedSampling, ProbabilityOneMatchesReverseReachableClosure) {
  // p = 1 removes the randomness from the flips: every lane's IC set is
  // exactly the reverse-reachable closure of its root, fused or scalar.
  auto g = make_graph(gen_path(8));
  set_uniform_probability(g, 1.0f);
  FusedScratch scratch(g.num_vertices());
  const FusedTraversalStats stats =
      sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed,
                       /*block=*/0, 0, kFusedLanes, scratch);
  EXPECT_EQ(stats.lanes, kFusedLanes);

  SamplerScratch scalar_scratch(g.num_vertices());
  for (unsigned l = 0; l < kFusedLanes; ++l) {
    std::vector<VertexId> expected = sample_rrr(
        g.reverse, DiffusionModel::kIndependentCascade, kSeed, l,
        scalar_scratch);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(scratch.members[l], expected) << "lane " << l;
    EXPECT_TRUE(std::is_sorted(scratch.members[l].begin(),
                               scratch.members[l].end()));
  }
  expect_scratch_clean(scratch);
}

TEST(FusedSampling, ProbabilityZeroIsRootOnlyAndRootsMatchScalar) {
  auto g = make_graph(gen_path(8));
  set_uniform_probability(g, 0.0f);
  FusedScratch scratch(g.num_vertices());
  sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed,
                   /*block=*/3, 0, kFusedLanes, scratch);
  SamplerScratch scalar_scratch(g.num_vertices());
  for (unsigned l = 0; l < kFusedLanes; ++l) {
    // Lane l of block 3 is global slot 3*64+l — same root as scalar.
    const auto expected = sample_rrr(
        g.reverse, DiffusionModel::kIndependentCascade, kSeed, 3 * 64 + l,
        scalar_scratch);
    ASSERT_EQ(scratch.members[l].size(), 1u);
    EXPECT_EQ(scratch.members[l][0], expected[0]);
  }
  expect_scratch_clean(scratch);
}

TEST(FusedSampling, LTSetsAreBitIdenticalToScalar) {
  // LT lanes replay the scalar walk draw-for-draw from the same stream,
  // so equivalence is exact, not statistical.
  auto g = make_weighted_graph(gen_erdos_renyi(200, 1200, /*seed=*/11),
                               DiffusionModel::kLinearThreshold);
  FusedScratch scratch(g.num_vertices());
  SamplerScratch scalar_scratch(g.num_vertices());
  for (const std::uint64_t block : {0ull, 1ull, 9ull}) {
    sample_rrr_fused(g.reverse, DiffusionModel::kLinearThreshold, kSeed, block,
                     0, kFusedLanes, scratch);
    for (unsigned l = 0; l < kFusedLanes; ++l) {
      std::vector<VertexId> expected =
          sample_rrr(g.reverse, DiffusionModel::kLinearThreshold, kSeed,
                     block * kFusedLanes + l, scalar_scratch);
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(scratch.members[l], expected)
          << "block " << block << " lane " << l;
    }
    expect_scratch_clean(scratch);
  }
}

TEST(FusedSampling, PartialLaneWindowTouchesOnlyItsLanes) {
  // A martingale round boundary clips the block's lane window; lanes
  // outside [lane_begin, lane_end) must not be drawn from or emitted.
  auto g = make_weighted_graph(gen_erdos_renyi(100, 600, /*seed=*/5),
                               DiffusionModel::kIndependentCascade);
  FusedScratch scratch(g.num_vertices());
  for (unsigned l = 0; l < kFusedLanes; ++l) scratch.members[l].assign(1, 0);
  const FusedTraversalStats stats =
      sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed,
                       /*block=*/2, /*lane_begin=*/5, /*lane_end=*/9, scratch);
  EXPECT_EQ(stats.lanes, 4u);
  for (unsigned l = 5; l < 9; ++l) {
    EXPECT_FALSE(scratch.members[l].empty());
    EXPECT_TRUE(std::is_sorted(scratch.members[l].begin(),
                               scratch.members[l].end()));
  }
  // Untouched lanes keep their sentinel content (the traversal never
  // clears lanes outside the window).
  for (unsigned l = 0; l < 5; ++l) EXPECT_EQ(scratch.members[l].size(), 1u);
  for (unsigned l = 9; l < kFusedLanes; ++l) {
    EXPECT_EQ(scratch.members[l].size(), 1u);
  }
  expect_scratch_clean(scratch);
}

TEST(FusedSampling, FewerVerticesThanLanesSharesRoots) {
  // n < 64 forces root collisions; coalescing must merge those lanes
  // from the very first expansion without corrupting per-lane sets.
  auto g = make_weighted_graph(gen_erdos_renyi(7, 30, /*seed=*/3),
                               DiffusionModel::kIndependentCascade);
  FusedScratch scratch(g.num_vertices());
  const FusedTraversalStats stats =
      sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed,
                       /*block=*/0, 0, kFusedLanes, scratch);
  EXPECT_EQ(stats.lanes, kFusedLanes);
  EXPECT_LE(stats.touched, 7u);
  for (unsigned l = 0; l < kFusedLanes; ++l) {
    EXPECT_GE(scratch.members[l].size(), 1u);
    EXPECT_LE(scratch.members[l].size(), 7u);
    EXPECT_TRUE(std::is_sorted(scratch.members[l].begin(),
                               scratch.members[l].end()));
    EXPECT_TRUE(std::adjacent_find(scratch.members[l].begin(),
                                   scratch.members[l].end()) ==
                scratch.members[l].end());
  }
  expect_scratch_clean(scratch);
}

TEST(FusedSampling, SingleVertexGraphRejectedLikeScalar) {
  // An edgeless graph can carry no weights, so the fused kernel must
  // reject it with the same CheckError the scalar dispatch throws — not
  // crash or emit garbage lanes.
  auto g = make_graph({}, /*n=*/1);
  FusedScratch scratch(1);
  SamplerScratch scalar_scratch(1);
  EXPECT_THROW(sample_rrr_fused(g.reverse,
                                DiffusionModel::kIndependentCascade, kSeed, 0,
                                0, kFusedLanes, scratch),
               CheckError);
  EXPECT_THROW(sample_rrr(g.reverse, DiffusionModel::kIndependentCascade,
                          kSeed, 0, scalar_scratch),
               CheckError);
}

TEST(FusedSampling, TwoVertexGraphIsTheMinimalWorkingCase) {
  // The smallest weightable graph: 0 -> 1 with p = 1. Every lane's set
  // is {root} or {0, 1} depending on which root its stream draws.
  auto g = make_graph({{0, 1, 1.0f}}, /*n=*/2);
  set_uniform_probability(g, 1.0f);
  FusedScratch scratch(2);
  const FusedTraversalStats stats =
      sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed,
                       0, 0, kFusedLanes, scratch);
  EXPECT_EQ(stats.lanes, kFusedLanes);
  EXPECT_LE(stats.touched, 2u);
  const std::vector<VertexId> root0 = {0};
  const std::vector<VertexId> both = {0, 1};
  for (unsigned l = 0; l < kFusedLanes; ++l) {
    // Root 1 pulls in 0 through the live edge; root 0 has no in-edges.
    EXPECT_TRUE(scratch.members[l] == root0 || scratch.members[l] == both)
        << "lane " << l;
  }
  expect_scratch_clean(scratch);
}

TEST(FusedSampling, RejectsEmptyGraphAndBadWindows) {
  CSRGraph empty({0}, {});
  empty.ensure_weights(0.5f);
  FusedScratch scratch(1);
  EXPECT_THROW(sample_rrr_fused(empty, DiffusionModel::kIndependentCascade,
                                kSeed, 0, 0, kFusedLanes, scratch),
               CheckError);

  auto g = make_graph(gen_path(4));
  set_uniform_probability(g, 0.5f);
  FusedScratch s4(4);
  EXPECT_THROW(sample_rrr_fused(g.reverse,
                                DiffusionModel::kIndependentCascade, kSeed, 0,
                                /*lane_begin=*/3, /*lane_end=*/3, s4),
               CheckError);
  EXPECT_THROW(sample_rrr_fused(g.reverse,
                                DiffusionModel::kIndependentCascade, kSeed, 0,
                                /*lane_begin=*/0, /*lane_end=*/65, s4),
               CheckError);

  CSRGraph bare({0, 1}, {0});  // weights missing entirely
  FusedScratch s1(1);
  EXPECT_THROW(sample_rrr_fused(bare, DiffusionModel::kIndependentCascade,
                                kSeed, 0, 0, kFusedLanes, s1),
               CheckError);
}

TEST(FusedSampling, ArenaVariantMatchesMembersVariant) {
  // sample_rrr_fused_into is the staging-path twin: same traversal, runs
  // scattered straight into arena allocations. Outputs must be equal.
  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    auto g = make_weighted_graph(gen_erdos_renyi(300, 2400, /*seed=*/17),
                                 model);
    FusedScratch a(g.num_vertices());
    FusedScratch b(g.num_vertices());
    ShardArena arena;
    std::array<ShardArena::Ref, kFusedLanes> refs;
    for (const std::uint64_t block : {0ull, 4ull}) {
      const FusedTraversalStats sa =
          sample_rrr_fused(g.reverse, model, kSeed, block, 0, kFusedLanes, a);
      const FusedTraversalStats sb = sample_rrr_fused_into(
          g.reverse, model, kSeed, block, 0, kFusedLanes, b, arena,
          refs.data());
      EXPECT_EQ(sa.lanes, sb.lanes);
      EXPECT_EQ(sa.touched, sb.touched);
      EXPECT_EQ(sa.members, sb.members);
      for (unsigned l = 0; l < kFusedLanes; ++l) {
        const std::span<const VertexId> run = arena.view(refs[l]);
        EXPECT_EQ(std::vector<VertexId>(run.begin(), run.end()), a.members[l])
            << "block " << block << " lane " << l;
      }
      expect_scratch_clean(a);
      expect_scratch_clean(b);
    }
  }
}

TEST(FusedSampling, DeterministicAcrossScratchReuse) {
  // Slot content = f(seed, block, lane window): repeating a traversal on
  // a dirty-history scratch must reproduce the first run bit-for-bit.
  auto g = make_weighted_graph(gen_erdos_renyi(150, 900, /*seed=*/23),
                               DiffusionModel::kIndependentCascade);
  FusedScratch scratch(g.num_vertices());
  sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed, 1, 0,
                   kFusedLanes, scratch);
  std::array<std::vector<VertexId>, kFusedLanes> first;
  for (unsigned l = 0; l < kFusedLanes; ++l) first[l] = scratch.members[l];

  sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed, 9, 0,
                   kFusedLanes, scratch);  // unrelated block in between
  sample_rrr_fused(g.reverse, DiffusionModel::kIndependentCascade, kSeed, 1, 0,
                   kFusedLanes, scratch);
  for (unsigned l = 0; l < kFusedLanes; ++l) {
    EXPECT_EQ(scratch.members[l], first[l]) << "lane " << l;
  }
}

}  // namespace
}  // namespace eimm
