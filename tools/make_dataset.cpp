// make_dataset — materializes the workload analogues as files, the
// offline counterpart of the artifact's download_dataset.sh (which
// fetches the real SNAP archives; those cannot be redistributed here).
//
//   make_dataset --out datasets [--scale 1.0] [--format edgelist|binary]
//   make_dataset --only com-Amazon --out datasets
//
// Emits one file per analogue plus a MANIFEST.tsv with basic stats so a
// user can eyeball what was generated.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "graph/stats.hpp"
#include "io/binary.hpp"
#include "io/edgelist.hpp"
#include "workloads/registry.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --out DIR [--scale F] [--seed N]\n"
               "          [--format edgelist|binary] [--only NAME]\n",
               argv0);
  std::exit(error != nullptr ? 2 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eimm;

  std::string out_dir;
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::string format = "edgelist";
  std::optional<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--out") out_dir = next();
    else if (arg == "--scale") scale = std::strtod(next().c_str(), nullptr);
    else if (arg == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--format") format = next();
    else if (arg == "--only") only = next();
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else usage(argv[0], ("unknown option " + arg).c_str());
  }
  if (out_dir.empty()) usage(argv[0], "--out is required");
  if (format != "edgelist" && format != "binary") {
    usage(argv[0], "--format must be edgelist or binary");
  }

  std::filesystem::create_directories(out_dir);
  std::ofstream manifest(out_dir + "/MANIFEST.tsv");
  manifest << "name\tfile\tnodes\tedges\tavg_degree\tfamily\n";

  for (const WorkloadSpec& spec : workload_specs()) {
    if (only && spec.name != *only) continue;
    std::printf("generating %-12s (scale %.2f) ... ", spec.name.c_str(),
                scale);
    std::fflush(stdout);
    const DiffusionGraph graph = make_workload(spec.name, scale, seed);
    const GraphStats stats = compute_graph_stats(graph.forward, false);

    std::string file;
    if (format == "binary") {
      file = out_dir + "/" + spec.name + ".csr";
      write_binary_csr_file(file, graph.forward);
    } else {
      file = out_dir + "/" + spec.name + ".txt";
      std::ofstream os(file);
      // Re-derive the edge list from the CSR for a canonical sorted dump.
      std::vector<WeightedEdge> edges;
      edges.reserve(graph.num_edges());
      for (VertexId u = 0; u < graph.num_vertices(); ++u) {
        for (const VertexId v : graph.forward.neighbors(u)) {
          edges.push_back({u, v, 1.0f});
        }
      }
      write_edge_list(os, edges, /*with_weights=*/false);
    }
    manifest << spec.name << '\t' << file << '\t' << stats.num_vertices
             << '\t' << stats.num_edges << '\t' << stats.avg_out_degree
             << '\t' << spec.family << '\n';
    std::printf("%s (%u nodes, %llu edges)\n", file.c_str(),
                stats.num_vertices,
                static_cast<unsigned long long>(stats.num_edges));
  }
  std::printf("manifest: %s/MANIFEST.tsv\n", out_dir.c_str());
  return 0;
}
