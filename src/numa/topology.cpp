#include "numa/topology.hpp"

#include <sched.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

namespace eimm {

std::vector<int> parse_cpu_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto dash = token.find('-');
    try {
      if (dash == std::string::npos) {
        out.push_back(std::stoi(token));
      } else {
        const int lo = std::stoi(token.substr(0, dash));
        const int hi = std::stoi(token.substr(dash + 1));
        for (int i = lo; i <= hi; ++i) out.push_back(i);
      }
    } catch (const std::exception&) {
      // Ignore malformed fragments; sysfs content is trusted but this
      // parser is also exercised with arbitrary strings in tests.
    }
  }
  return out;
}

namespace {

NumaTopology discover() {
  NumaTopology topo;
  std::ifstream online("/sys/devices/system/node/online");
  if (online.good()) {
    std::string line;
    std::getline(online, line);
    topo.nodes = parse_cpu_list(line);
  }
  if (topo.nodes.empty()) topo.nodes = {0};

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  topo.cpu_to_node.assign(hw, 0);
  for (const int node : topo.nodes) {
    std::ifstream cpus("/sys/devices/system/node/node" +
                       std::to_string(node) + "/cpulist");
    if (!cpus.good()) continue;
    std::string line;
    std::getline(cpus, line);
    for (const int cpu : parse_cpu_list(line)) {
      if (cpu >= 0 && static_cast<unsigned>(cpu) < topo.cpu_to_node.size()) {
        topo.cpu_to_node[static_cast<unsigned>(cpu)] = node;
      }
    }
  }
  return topo;
}

}  // namespace

int NumaTopology::current_node() const noexcept {
  const int cpu = sched_getcpu();
  if (cpu < 0 || static_cast<std::size_t>(cpu) >= cpu_to_node.size()) return nodes.empty() ? 0 : nodes.front();
  return cpu_to_node[static_cast<std::size_t>(cpu)];
}

const NumaTopology& numa_topology() {
  static const NumaTopology topo = discover();
  return topo;
}

}  // namespace eimm
