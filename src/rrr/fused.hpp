// Fused 64-wide RRR sampling: one traversal produces 64 sets.
//
// The scalar kernels in rrr/generate.hpp pay one full BFS/walk per RRR
// set, re-reading every frontier vertex's adjacency once per set. This
// module packs 64 concurrent simulations ("lanes") into a single
// `uint64_t` visited word per vertex and propagates all of them with one
// bitwise-OR frontier pass, following the fusing technique of Göktürk &
// Kaya ("Fusing and Vectorization", PAPERS.md) and the sage exemplar
// (SNIPPETS.md snippet 1):
//
//   IC — label-correcting BFS with mask COALESCING: a per-vertex
//   `pending` word accumulates the lanes that arrived at the vertex
//   since it was last expanded, and the vertex sits in the work queue
//   while that word fills up. Popping v consumes the whole accumulated
//   mask m at once: for each in-edge (w -> v) with probability p, only
//   lanes in `m & ~visited[w]` may traverse it; their coin flips come
//   either from the per-lane RNG streams (few candidate lanes) or from
//   a single 64-bit Bernoulli(p) mask (many lanes — one mask replaces
//   up to 64 scalar draws). Newly reached lanes OR into visited[w] and
//   pending[w], re-queueing w only on a 0 -> nonzero pending
//   transition. Coalescing is what makes fusion pay: lanes flowing
//   toward the same high-influence vertices merge into dense masks, so
//   one adjacency scan (and often one Bernoulli mask) serves dozens of
//   lanes where the scalar kernel would re-walk the list per set. Each
//   lane still expands each vertex at most once and flips each edge at
//   most once — the scalar IC live-edge semantics, 64-wide.
//
//   LT — every lane performs its own reverse random walk (one
//   in-neighbor pick per step, lane falls out on no-pick or cycle), but
//   all walks share the visited words, the touched list, and the emit
//   pass. Because each lane draws from its own stream in scalar order,
//   fused LT sets are bit-identical to their scalar counterparts; only
//   the shared bookkeeping is fused.
//
// RNG contract (runtime/rng_stream.hpp): lane `l` of traversal block `b`
// covers global RRR slot b*64+l and seeds from rng_stream(seed, b*64+l)
// — the SAME stream the scalar sampler would use for that slot, so fused
// roots (and whole LT sets) match scalar. The block-level IC mask stream
// comes from an rng_split domain salted by (block, lane_begin): when a
// martingale round boundary splits a block into two traversals, the two
// lane windows draw from disjoint mask streams, so no randomness is ever
// reused. Consequently IC set contents depend on the traversal's lane
// window — deterministic for a fixed (seed, round schedule), but NOT
// bitwise-equal to the scalar path; equivalence is statistical and
// enforced by tests/statcheck/fused_determinism_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "rrr/pool_view.hpp"
#include "support/rng.hpp"

namespace eimm {

/// Lanes per fused traversal — the width of the visited word.
inline constexpr unsigned kFusedLanes = 64;

/// Fused-mode request, mirroring the PoolCompression tri-state idiom:
/// explicit on/off wins, kAuto resolves the EIMM_FUSED environment
/// variable (default off — fused IC output is statistically, not
/// bitwise, equivalent to the scalar pipeline).
enum class FusedSampling { kAuto, kOff, kOn };

/// Applies the kAuto -> EIMM_FUSED defaulting; returns the final answer.
[[nodiscard]] bool resolve_fused_sampling(FusedSampling requested);

[[nodiscard]] std::string_view to_string(FusedSampling mode) noexcept;

/// Per-worker reusable state for fused traversals. `visited` and
/// `pending` must be all-zero between traversals; the IC expansion
/// consumes every pending word it queues, and sample_rrr_fused clears
/// the visited words it touched during its emit pass (O(touched), not
/// O(|V|)), restoring the invariant without epoch stamps — a 64-bit
/// lane word has no spare room for an epoch, and the touched list
/// already names every dirty word.
struct FusedScratch {
  explicit FusedScratch(VertexId n) : visited(n, 0), pending(n, 0) {
    queue.reserve(256);
    touched.reserve(256);
  }

  std::vector<std::uint64_t> visited;  ///< lane bitset per vertex
  /// Lanes that reached the vertex but have not been expanded from it
  /// yet; the coalescing accumulator (IC only).
  std::vector<std::uint64_t> pending;
  /// Work queue with index cursor; a vertex re-enters only on a
  /// pending 0 -> nonzero transition, so entries consume whole masks.
  std::vector<VertexId> queue;
  std::vector<VertexId> touched;  ///< distinct vertices with visited != 0
  /// Per-lane member output, sorted ascending after a traversal.
  std::array<std::vector<VertexId>, kFusedLanes> members;
  std::array<Xoshiro256, kFusedLanes> lane_rng;
  std::array<VertexId, kFusedLanes> current;  ///< LT walk positions
};

/// Diagnostics from one traversal (feeds the sampler.fused metrics).
struct FusedTraversalStats {
  unsigned lanes = 0;            ///< sets emitted (= lane window width)
  std::uint64_t touched = 0;     ///< distinct vertices any lane visited
  std::uint64_t members = 0;     ///< Σ set sizes across the window
};

/// Draws 64 iid Bernoulli(p) bits in ~8 uniform draws (expected) via a
/// bit-serial MSB-first comparison: quantize q = round(p·2^32), then let
/// draw k supply bit k of all 64 lanes' uniform variates and resolve
/// each lane's U < q/2^32 comparison the moment its prefix differs from
/// q's. Every draw halves the undecided lanes in expectation, so the
/// loop runs ~log2(64)+2 rounds regardless of p's precision. The mask
/// is EXACTLY Bernoulli(q/2^32) per bit; quantization error vs p is
/// < 2^-33 — far below anything the statcheck harness can see.
[[nodiscard]] std::uint64_t bernoulli_mask(Xoshiro256& rng, double p) noexcept;

/// Runs one fused traversal for lanes [lane_begin, lane_end) of traversal
/// block `block` (global slots block*64+lane). On return
/// scratch.members[l] holds lane l's sorted RRR set (root included) for
/// every lane in the window, and scratch.visited is all-zero again.
/// `reverse` must carry diffusion weights; lane_begin < lane_end <= 64.
FusedTraversalStats sample_rrr_fused(const CSRGraph& reverse,
                                     DiffusionModel model,
                                     std::uint64_t base_seed,
                                     std::uint64_t block, unsigned lane_begin,
                                     unsigned lane_end, FusedScratch& scratch);

/// The staging-path variant: identical traversal, but each lane's sorted
/// members are scattered STRAIGHT into runs allocated from `arena` (no
/// intermediate per-lane buffer, one write per member). refs_out must
/// have room for lane_end - lane_begin entries; refs_out[l - lane_begin]
/// receives lane l's arena run. scratch.members is left untouched.
FusedTraversalStats sample_rrr_fused_into(
    const CSRGraph& reverse, DiffusionModel model, std::uint64_t base_seed,
    std::uint64_t block, unsigned lane_begin, unsigned lane_end,
    FusedScratch& scratch, ShardArena& arena, ShardArena::Ref* refs_out);

}  // namespace eimm
