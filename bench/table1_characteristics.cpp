// Table I reproduction: "Input Graph and Ripples RRRset Characteristics"
// (IC diffusion model, ε = 0.5).
//
// For each of the eight dataset analogues, samples an IC RRR-set pool
// and reports average/max coverage next to the paper's numbers. The
// analogues are scaled-down synthetic stand-ins (DESIGN.md §2), so node
// and edge counts differ by construction; the quantity this table is
// *about* — the coverage regime induced by the SCC structure — should
// land in the same band.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "rrr/generate.hpp"
#include "rrr/pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Table I: graph and RRR-set characteristics (IC, eps=0.5)",
               config);

  AsciiTable table({"Graph", "Nodes", "Edges", "Avg cov %", "Max cov %",
                    "Paper avg %", "Paper max %"});

  constexpr std::size_t kSampleSets = 400;
  for (const WorkloadSpec& spec : workload_specs()) {
    const DiffusionGraph g =
        load_workload(config, spec.name, DiffusionModel::kIndependentCascade);
    RRRPool pool(g.num_vertices());
    pool.resize(kSampleSets);
    SamplerScratch scratch(g.num_vertices());
    for (std::size_t i = 0; i < kSampleSets; ++i) {
      pool[i] = RRRSet::make_vector(
          sample_rrr(g.reverse, DiffusionModel::kIndependentCascade,
                     config.rng_seed, i, scratch));
    }
    table.new_row()
        .add(spec.name)
        .add(static_cast<std::uint64_t>(g.num_vertices()))
        .add(static_cast<std::uint64_t>(g.num_edges()))
        .add(100.0 * pool.average_coverage(), 1)
        .add(100.0 * pool.max_coverage(), 1)
        .add(100.0 * spec.paper_avg_coverage, 1)
        .add(100.0 * spec.paper_max_coverage, 1);
  }
  table.set_title("Table I (analogue scale vs paper regime)");
  table.print(std::cout);
  std::printf(
      "\nShape check: social analogues land in the dense-coverage regime\n"
      "(>30%% avg), as-Skitter stays in the sparse regime (<10%% avg).\n");
  return 0;
}
