// Binary serialization — load big graphs (and sketch-store snapshots)
// without re-parsing text. Little-endian, versioned headers.
//
// The eimm::bin helpers are the shared on-disk vocabulary: every binary
// format in the project (CSR graphs here, sketch-store snapshots in
// src/serve) is an 8-byte magic + u32 version header followed by PODs
// and length-prefixed POD vectors, so truncation and type mismatches
// fail with a CheckError instead of UB.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "graph/csr.hpp"
#include "support/macros.hpp"

namespace eimm {

namespace bin {

namespace detail {
/// Throws CheckError (EIMM_CHECK only takes literal messages; the bin
/// helpers want the format name in the text).
[[noreturn]] void fail(const std::string& message);
inline void require(bool ok, const char* prefix, const char* what) {
  if (!ok) fail(std::string(prefix) + what);
}
/// Bytes left between the read position and EOF, or nullopt when the
/// stream is not seekable. Guards length-prefixed reads: a corrupted
/// length field must raise CheckError, not a multi-exabyte allocation.
std::optional<std::uint64_t> remaining_bytes(std::istream& is);
}  // namespace detail

/// Writes the 8-byte magic (shorter tags are NUL-padded) + version.
void write_header(std::ostream& os, std::string_view magic,
                  std::uint32_t version);

/// Reads and validates a header written by write_header. Returns the
/// stored version; throws CheckError on bad magic or version != expected.
/// `what` names the format in error messages ("sketch-store snapshot").
std::uint32_t read_header(std::istream& is, std::string_view magic,
                          std::uint32_t expected_version, const char* what);

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v, const char* what = "binary file") {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  detail::require(is.good(), "truncated ", what);
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is, const char* what = "binary file") {
  std::uint64_t size = 0;
  read_pod(is, size, what);
  if (const auto left = detail::remaining_bytes(is)) {
    detail::require(size <= *left / sizeof(T), "truncated payload in ", what);
  }
  std::vector<T> v;
  try {
    v.resize(size);
  } catch (const std::exception&) {
    // Non-seekable stream with a corrupt length: the pre-check above
    // couldn't run, so keep the CheckError contract here.
    detail::require(false, "implausible payload length in ", what);
  }
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  detail::require(is.good(), "truncated payload in ", what);
  return v;
}

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is, const char* what = "binary file");

}  // namespace bin

/// Writes the CSR arrays with a magic/version header.
void write_binary_csr(std::ostream& os, const CSRGraph& g);
void write_binary_csr_file(const std::string& path, const CSRGraph& g);

/// Reads a graph previously written by write_binary_csr. Throws
/// CheckError on bad magic, version, or truncated payload.
CSRGraph read_binary_csr(std::istream& is);
CSRGraph read_binary_csr_file(const std::string& path);

}  // namespace eimm
