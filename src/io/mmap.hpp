// Read-only memory-mapped files — the serving-side answer to snapshot
// cold starts. A SketchStore snapshot mapped MAP_SHARED|PROT_READ is
// backed by the page cache, so N server processes loading the same file
// share ONE physical copy of the sketch payload and a load costs page
// table setup instead of a full read+copy of the pool.
//
// MappedFile is deliberately tiny: open, map, expose (data, size), and
// unmap on destruction. Alignment guarantees come from mmap itself (the
// base is page-aligned), so a page-aligned on-disk section can be
// reinterpreted as a typed array directly from the mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace eimm {

/// A read-only, shared, page-cache-backed mapping of one file. Move-only;
/// the mapping (and the pointers served from it) lives until destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only (PROT_READ, MAP_SHARED). Throws CheckError when
  /// the file cannot be opened, stat'ed, or mapped. Zero-length files are
  /// rejected (a valid snapshot always has a header).
  static MappedFile open_readonly(const std::string& path);

  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Releases the mapping early (idempotent; also run by the destructor).
  void reset() noexcept;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace eimm
