// imm_cli — the command-line driver, analogous to Ripples' `imm` tool.
//
// Runs either engine on a SNAP edge list, a binary graph, or one of the
// built-in workload analogues, and writes an artifact-style JSON log.
//
//   imm_cli --workload com-Amazon --model IC --k 50 --epsilon 0.5
//   imm_cli --graph soc-pokec.txt --model LT --engine ripples --threads 8
//   imm_cli --workload twitter7 --scale 0.5 --log-dir strong-scaling-logs
//
// Options:
//   --graph PATH        SNAP edge-list input (mutually exclusive with
//                       --workload / --binary)
//   --binary PATH       binary CSR input (see make_dataset)
//   --workload NAME     built-in analogue (com-Amazon ... twitter7)
//   --scale F           workload scale factor (default 1.0)
//   --undirected        symmetrize the input edge list
//   --model IC|LT       diffusion model (default IC)
//   --engine efficient|ripples   (default efficient)
//   --k N               seed budget (default 50)
//   --epsilon F         accuracy (default 0.5)
//   --threads N         OpenMP threads (default: all)
//   --seed N            RNG seed (default 0x5EEDBA5E)
//   --max-rrr N         RRR-set cap (default 4194304)
//   --no-fusion --no-adaptive-repr --no-adaptive-update --no-balance
//   --no-numa           disable individual EfficientIMM features
//   --pin MODE          thread pinning: auto|none|compact|spread
//                       (default: EIMM_PIN, then auto)
//   --counter-shards N  NUMA counter replicas for selection (default:
//                       EIMM_COUNTER_SHARDS, then the domain count;
//                       1 = legacy flat counter)
//   --pool-compress M   compressed RRR pool backing: off|varint|huffman
//                       (default: EIMM_POOL_COMPRESS, then off); seeds
//                       are bit-identical for every mode
//   --fused             fused 64-wide RRR generation (default:
//                       EIMM_FUSED, then off); IC output is
//                       statistically, not bitwise, equivalent to the
//                       scalar pipeline (LT stays bit-identical)
//   --simulate N        verify seeds with N Monte-Carlo cascades
//   --log-dir DIR       write the artifact-style JSON log into DIR
//   --metrics PATH      write the obs metrics-registry snapshot as JSON
//                       (set EIMM_TRACE=out.json for a Chrome trace)
//   --verbose           print martingale iteration telemetry (also set
//                       EIMM_VERBOSE=1 for the effective pinning map)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "io/binary.hpp"
#include "io/edgelist.hpp"
#include "io/json_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/affinity.hpp"
#include "simulate/spread.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace eimm;

struct CliOptions {
  std::optional<std::string> graph_path;
  std::optional<std::string> binary_path;
  std::optional<std::string> workload;
  double scale = 1.0;
  bool undirected = false;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  Engine engine = Engine::kEfficient;
  ImmOptions imm;
  int simulate_samples = 0;
  std::optional<std::string> log_dir;
  std::optional<std::string> metrics_path;
  bool verbose = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s (--graph PATH | --binary PATH | --workload NAME)\n"
               "          [--scale F] [--undirected] [--model IC|LT]\n"
               "          [--engine efficient|ripples] [--k N] [--epsilon F]\n"
               "          [--threads N] [--seed N] [--max-rrr N]\n"
               "          [--no-fusion] [--no-adaptive-repr]\n"
               "          [--no-adaptive-update] [--no-balance] [--no-numa]\n"
               "          [--pin auto|none|compact|spread]\n"
               "          [--counter-shards N]\n"
               "          [--pool-compress off|varint|huffman] [--fused]\n"
               "          [--simulate N] [--log-dir DIR] [--verbose]\n"
               "          [--metrics OUT.json]\n",
               argv0);
  std::exit(error != nullptr ? 2 : 0);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  options.imm.max_rrr_sets = 1u << 22;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--graph") options.graph_path = next();
    else if (arg == "--binary") options.binary_path = next();
    else if (arg == "--workload") options.workload = next();
    else if (arg == "--scale") options.scale = std::strtod(next().c_str(), nullptr);
    else if (arg == "--undirected") options.undirected = true;
    else if (arg == "--model") options.model = parse_model(next());
    else if (arg == "--engine") {
      const std::string engine = next();
      if (engine == "efficient") options.engine = Engine::kEfficient;
      else if (engine == "ripples") options.engine = Engine::kRipples;
      else usage(argv[0], "engine must be 'efficient' or 'ripples'");
    } else if (arg == "--k") {
      options.imm.k = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--epsilon") {
      options.imm.epsilon = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--threads") {
      options.imm.threads = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (arg == "--seed") {
      options.imm.rng_seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--max-rrr") {
      options.imm.max_rrr_sets = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--pin") {
      bool ok = false;
      const PinMode mode = parse_pin_mode(next(), PinMode::kAuto, &ok);
      if (!ok) usage(argv[0], "--pin must be auto|none|compact|spread");
      set_pin_mode(mode);
    } else if (arg == "--counter-shards") {
      const long shards = std::strtol(next().c_str(), nullptr, 10);
      if (shards < 1) usage(argv[0], "--counter-shards must be >= 1");
      options.imm.counter_shards = static_cast<int>(shards);
    } else if (arg == "--pool-compress") {
      const std::string mode = next();
      if (mode == "off" || mode == "none") {
        options.imm.pool_compress = PoolCompression::kNone;
      } else if (mode == "varint") {
        options.imm.pool_compress = PoolCompression::kVarint;
      } else if (mode == "huffman") {
        options.imm.pool_compress = PoolCompression::kHuffman;
      } else {
        usage(argv[0], "--pool-compress must be off|varint|huffman");
      }
    } else if (arg == "--fused") {
      options.imm.fused_sampling = FusedSampling::kOn;
    } else if (arg == "--no-fusion") options.imm.kernel_fusion = false;
    else if (arg == "--no-adaptive-repr") options.imm.adaptive_representation = false;
    else if (arg == "--no-adaptive-update") options.imm.adaptive_update = false;
    else if (arg == "--no-balance") options.imm.dynamic_balance = false;
    else if (arg == "--no-numa") options.imm.numa_aware = false;
    else if (arg == "--simulate") {
      options.simulate_samples = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (arg == "--log-dir") options.log_dir = next();
    else if (arg == "--metrics") options.metrics_path = next();
    else if (arg == "--verbose") options.verbose = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else usage(argv[0], ("unknown option " + arg).c_str());
  }
  const int sources = (options.graph_path ? 1 : 0) +
                      (options.binary_path ? 1 : 0) +
                      (options.workload ? 1 : 0);
  if (sources != 1) {
    usage(argv[0], "exactly one of --graph / --binary / --workload required");
  }
  options.imm.model = options.model;
  return options;
}

int run_cli(int argc, char** argv) {
  CliOptions options = parse_cli(argc, argv);

  // --- Load the graph ---
  DiffusionGraph graph;
  std::string dataset_name;
  if (options.workload) {
    dataset_name = *options.workload;
    if (!find_workload(dataset_name)) {
      std::fprintf(stderr, "unknown workload '%s'; available:\n",
                   dataset_name.c_str());
      for (const auto& spec : workload_specs()) {
        std::fprintf(stderr, "  %s\n", spec.name.c_str());
      }
      return 2;
    }
    graph = make_workload(dataset_name, options.scale, options.imm.rng_seed);
  } else if (options.graph_path) {
    dataset_name = *options.graph_path;
    BuildOptions build;
    build.symmetrize = options.undirected;
    graph = build_diffusion_graph(read_edge_list_file(*options.graph_path),
                                  0, build);
  } else {
    dataset_name = *options.binary_path;
    graph = DiffusionGraph::from_forward(
        read_binary_csr_file(*options.binary_path));
  }
  assign_paper_weights(graph.reverse, options.model,
                       hash_combine64(options.imm.rng_seed, 0x77));

  const GraphStats stats = compute_graph_stats(graph.forward, false);
  std::printf("dataset: %s (%s)\n", dataset_name.c_str(),
              describe(stats).c_str());
  std::printf("engine: %s, model: %s, k=%zu, eps=%.3f\n",
              std::string(to_string(options.engine)).c_str(),
              std::string(to_string(options.model)).c_str(), options.imm.k,
              options.imm.epsilon);

  // --- Run ---
  const ImmResult result = run_imm(graph, options.imm, options.engine);

  std::printf("\nseeds:");
  for (const VertexId s : result.seeds) std::printf(" %u", s);
  std::printf("\nestimated spread: %.1f (%.2f%% of |V|)\n",
              result.estimated_spread,
              100.0 * result.coverage_fraction);
  std::printf("theta: %llu, sets generated: %llu%s, bitmap sets: %llu\n",
              static_cast<unsigned long long>(result.theta),
              static_cast<unsigned long long>(result.num_rrr_sets),
              result.theta_capped ? " (CAPPED)" : "",
              static_cast<unsigned long long>(result.bitmap_sets));
  std::printf("time: %.3fs = %.3fs sampling + %.3fs selection (%d threads)\n",
              result.breakdown.total_seconds,
              result.breakdown.sampling_seconds,
              result.breakdown.selection_seconds, result.threads_used);
  std::printf("numa: %d sampling shard(s), %d counter shard(s), pin=%s%s\n",
              result.shards_used, result.counter_shards_used,
              std::string(to_string(effective_pin_mode(resolve_pin_mode(),
                                                       numa_topology())))
                  .c_str(),
              result.fused_sampling_used ? ", fused sampling" : "");
  if (result.pool_compression_used != PoolCompression::kNone) {
    std::printf("pool: %s-compressed, %llu payload bytes, encode %.3fs\n",
                std::string(to_string(result.pool_compression_used)).c_str(),
                static_cast<unsigned long long>(
                    result.compressed_payload_bytes),
                result.encode_seconds);
  }

  if (options.verbose) {
    std::printf("\nmartingale iterations:\n");
    for (const MartingaleIteration& it : result.iterations) {
      std::printf("  i=%u theta=%llu coverage=%.4f LB=%.1f %s\n",
                  it.iteration, static_cast<unsigned long long>(it.theta),
                  it.coverage, it.lower_bound,
                  it.accepted ? "ACCEPTED" : "rejected");
    }
  }

  if (options.simulate_samples > 0) {
    mirror_weights_to_forward(graph.reverse, graph.forward);
    SpreadOptions spread_options;
    spread_options.num_samples = options.simulate_samples;
    const double simulated = estimate_spread(graph.forward, options.model,
                                             result.seeds, spread_options);
    std::printf("\nMonte-Carlo verification (%d cascades): spread %.1f "
                "(estimator said %.1f)\n",
                options.simulate_samples, simulated,
                result.estimated_spread);
  }

  if (options.log_dir) {
    ExperimentRecord record;
    record.dataset = dataset_name;
    record.algorithm = std::string(to_string(options.engine));
    record.diffusion = std::string(to_string(options.model));
    record.threads = result.threads_used;
    record.k = static_cast<int>(options.imm.k);
    record.epsilon = options.imm.epsilon;
    record.rng_seed = options.imm.rng_seed;
    record.total_seconds = result.breakdown.total_seconds;
    record.sampling_seconds = result.breakdown.sampling_seconds;
    record.selection_seconds = result.breakdown.selection_seconds;
    record.num_rrr_sets = result.num_rrr_sets;
    record.rrr_memory_bytes = result.rrr_memory_bytes;
    record.seeds = result.seeds;
    const std::string path = write_experiment_json_file(*options.log_dir,
                                                        record);
    std::printf("log: %s\n", path.c_str());
  }

  if (options.metrics_path) {
    const std::string path =
        write_metrics_json_file(*options.metrics_path, obs::snapshot_metrics());
    std::printf("metrics: %s\n", path.c_str());
  }
  if (obs::trace_enabled()) {
    // Flush eagerly (the atexit hook would also do it) so the path is
    // printed and write errors surface as a CLI diagnostic.
    std::printf("trace: %s\n", obs::flush_trace().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    // Unreadable graph files and impossible parameters must exit with a
    // one-line diagnostic, never an unhandled-exception trace.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
