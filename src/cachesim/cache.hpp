// Trace-driven set-associative cache model.
//
// Table IV of the paper reports hardware L1+L2 miss counts for the two
// Find_Most_Influential_Set kernels. Without PMU access, this software
// model replays the kernels' exact memory-access streams (via the Mem
// policy they are templated on) through a two-level LRU hierarchy. It
// captures capacity/conflict behaviour per thread; coherence traffic is
// out of scope (documented in DESIGN.md) — the paper's >20x asymmetry is
// driven by capacity misses from redundant traversal, which this models.
#pragma once

#include <cstdint>
#include <vector>

namespace eimm {

struct CacheLevelConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t associativity = 8;
  std::uint32_t line_bytes = 64;
};

struct CacheConfig {
  /// Defaults follow AMD EPYC 7763 (paper testbed): 32 KiB 8-way L1D,
  /// 512 KiB 8-way private L2, 64 B lines.
  CacheLevelConfig l1{32 * 1024, 8, 64};
  CacheLevelConfig l2{512 * 1024, 8, 64};
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;

  /// The metric Table IV reports.
  [[nodiscard]] std::uint64_t l1_plus_l2_misses() const noexcept {
    return l1_misses + l2_misses;
  }
  CacheStats& operator+=(const CacheStats& other) noexcept {
    accesses += other.accesses;
    l1_misses += other.l1_misses;
    l2_misses += other.l2_misses;
    return *this;
  }
};

/// One set-associative LRU cache level.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& config);

  /// Looks up the line containing `line_addr` (already line-aligned id).
  /// Returns true on hit; on miss the line is installed (LRU eviction).
  bool access_line(std::uint64_t line_id) noexcept;

  void reset() noexcept;

 private:
  std::uint32_t ways_;
  std::uint64_t num_sets_;
  std::uint64_t set_mask_;
  /// tags_[set * ways + way]; kInvalid when empty.
  std::vector<std::uint64_t> tags_;
  /// LRU stamps parallel to tags_.
  std::vector<std::uint64_t> stamps_;
  std::uint64_t tick_ = 0;
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
};

/// Two-level inclusive-enough hierarchy: L1 miss falls through to L2.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheConfig& config = {});

  /// Records an access of `bytes` bytes at `addr`, touching every line
  /// the range spans.
  void access(const void* addr, std::size_t bytes) noexcept;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset() noexcept;

 private:
  std::uint32_t line_bytes_;
  CacheLevel l1_;
  CacheLevel l2_;
  CacheStats stats_;
};

}  // namespace eimm
