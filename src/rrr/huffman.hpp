// Canonical Huffman codec over byte streams — the compression HBMax
// (Chen et al., PACT'22; cited as [2] in the paper) applies to RRR-set
// storage. EfficientIMM's §IV-C argues the codec overhead is why it
// prefers the adaptive vector/bitmap scheme; this module implements the
// contrasted technique so the trade-off is concrete:
//
//   HuffmanSet = canonical-Huffman(varint gap stream of the sorted set)
//
// Gap bytes of social-graph sketches are heavily skewed toward small
// values, which is exactly where Huffman shines — typically another
// 1.3-2x over the plain varint encoding — at the price of bit-serial
// decode on every membership test or iteration.
//
// The codec is factored into reusable stages so the pool-scale
// CompressedPool (rrr/compressed_pool.hpp) can share ONE codebook across
// millions of slots: lengths_from_frequencies() turns a byte histogram
// into deterministic canonical code lengths, HuffmanEncodeTable /
// HuffmanDecodeTable materialize the per-symbol codes and the canonical
// decode tables from those lengths, and decode_one() is the bounds-
// checked bit-serial inner step (CheckError on truncated or invalid
// streams — never an out-of-bounds read).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "support/macros.hpp"

namespace eimm {

namespace detail {
[[noreturn]] void fail_huffman(const char* reason, std::uint64_t bit);
}  // namespace detail

/// Canonical per-symbol codes built from code lengths (encode side).
struct HuffmanEncodeTable {
  std::array<std::uint32_t, 256> codes{};
  std::array<std::uint8_t, 256> lengths{};

  static HuffmanEncodeTable build(
      const std::array<std::uint8_t, 256>& lengths);
};

/// Canonical decode tables: first code and symbol offset per length,
/// plus the (length, value)-ordered symbol list. Built once per stream
/// (or once per pool), then decode_one() is table-lookup only.
struct HuffmanDecodeTable {
  /// Width of the one-lookup fast path: every code of length <=
  /// kFastBits decodes via one table read. Gap-byte alphabets are
  /// heavily skewed, so in practice this covers ~all symbols.
  static constexpr int kFastBits = 8;

  std::array<std::uint32_t, 33> first_code{};
  std::array<std::uint32_t, 33> first_index{};
  std::array<std::uint8_t, 256> lengths{};
  /// (symbol << 8) | code_length per kFastBits-wide window; 0 = the
  /// window starts a code longer than kFastBits (take the serial path).
  std::array<std::uint16_t, 1u << kFastBits> fast{};
  std::vector<std::uint8_t> ordered_symbols;

  static HuffmanDecodeTable build(
      const std::array<std::uint8_t, 256>& lengths);

  /// Decodes one symbol from the MSB-first bit stream at `bits`,
  /// advancing `cursor` (a bit offset). `bit_limit` bounds the stream;
  /// throws CheckError when the code runs past it or matches no symbol.
  [[nodiscard]] std::uint8_t decode_one(const std::uint8_t* bits,
                                        std::uint64_t bit_limit,
                                        std::uint64_t& cursor) const {
    if (cursor + kFastBits <= bit_limit) {
      // One aligned window read: bytes up to (cursor + 7) >> 3 exist
      // whenever a full window fits under bit_limit.
      const std::uint64_t byte_index = cursor >> 3;
      const unsigned shift = static_cast<unsigned>(cursor & 7);
      std::uint32_t window =
          static_cast<std::uint32_t>(bits[byte_index] << shift);
      if (shift != 0) {
        window |= bits[byte_index + 1] >> (8u - shift);
      }
      const std::uint16_t entry = fast[window & 0xFFu];
      if (entry != 0) {
        cursor += entry & 0xFFu;
        return static_cast<std::uint8_t>(entry >> 8);
      }
    }
    std::uint32_t code = 0;
    std::uint8_t length = 0;
    while (cursor < bit_limit && length < 32) {
      const std::uint64_t byte_index = cursor >> 3;
      const int bit_in_byte = static_cast<int>(7 - (cursor & 7));
      code = (code << 1) | ((bits[byte_index] >> bit_in_byte) & 1u);
      ++cursor;
      ++length;
      const std::uint32_t offset = code - first_code[length];
      const std::uint32_t symbol_index = first_index[length] + offset;
      if (code >= first_code[length] &&
          symbol_index < ordered_symbols.size() &&
          lengths[ordered_symbols[symbol_index]] == length) {
        return ordered_symbols[symbol_index];
      }
    }
    if (length >= 32) {
      detail::fail_huffman("invalid Huffman stream (no code matched)",
                           cursor);
    }
    detail::fail_huffman("truncated Huffman stream", cursor);
  }
};

/// General-purpose canonical Huffman coding of byte payloads.
class HuffmanCodec {
 public:
  struct Encoded {
    /// Canonical code lengths per symbol (0 = symbol absent), enough to
    /// reconstruct the codebook on decode.
    std::array<std::uint8_t, 256> code_lengths{};
    std::uint64_t payload_bits = 0;
    std::vector<std::uint8_t> bits;

    /// size()-based footprint: encode() shrinks to fit, and a decode-side
    /// or moved-into buffer with slack capacity is never overstated.
    [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
      return bits.size() + sizeof(code_lengths) + sizeof(payload_bits);
    }
  };

  /// Deterministic Huffman code lengths from a byte-frequency table
  /// (0 = absent symbol; ties broken by symbol registration order).
  static std::array<std::uint8_t, 256> lengths_from_frequencies(
      const std::array<std::uint64_t, 256>& freq);

  /// Encodes `data`; deterministic (canonical codes, ties by symbol).
  static Encoded encode(const std::vector<std::uint8_t>& data);

  /// Decodes a payload produced by encode(). Throws CheckError on a
  /// corrupt stream (invalid prefix or truncated bits).
  static std::vector<std::uint8_t> decode(const Encoded& encoded);
};

/// An RRR set stored as Huffman-compressed varint gaps (HBMax style).
class HuffmanSet {
 public:
  HuffmanSet() = default;

  /// Builds from member vertices (any order; duplicates removed). The
  /// gap stream is produced directly by the shared rrr/gap_codec
  /// encoder — bit-identical to compressing CompressedSet's bytes, a
  /// coupling tests/rrr/huffman_test pins.
  static HuffmanSet encode(std::vector<VertexId> vertices);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return encoded_.memory_bytes();
  }

  /// The underlying Huffman payload (bit-identity tests and diagnostics).
  [[nodiscard]] const HuffmanCodec::Encoded& encoded() const noexcept {
    return encoded_;
  }

  /// Membership via full decode — the codec overhead §IV-C refers to.
  [[nodiscard]] bool contains(VertexId v) const;

  /// Decodes back to the sorted member list.
  [[nodiscard]] std::vector<VertexId> decode() const;

 private:
  std::size_t count_ = 0;
  HuffmanCodec::Encoded encoded_;
};

}  // namespace eimm
