#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "support/env.hpp"
#include "support/macros.hpp"

namespace eimm::obs {
namespace {

// Cell budget per slab. Counters take 1 cell, histograms 2 + buckets;
// the budget fits ~80 histograms or thousands of counters, far above
// what the instrumentation layer registers.
constexpr std::size_t kMaxCells = 4096;
constexpr std::size_t kMaxGauges = 256;
constexpr std::size_t kHistogramCells = 2 + kHistogramBuckets;

// One per-thread block of metric cells. Zero-initialised; only ever
// written by its owning thread, read by snapshots.
struct Slab {
  std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
};

struct MetricEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t cell = 0;  // slab cell (counter/histogram) or gauge index
};

struct Registry {
  std::mutex mu;
  std::vector<MetricEntry> entries;
  std::uint32_t cells_used = 0;
  std::uint32_t gauges_used = 0;
  // Every slab ever handed to a thread. Slabs of exited threads stay
  // alive here so their counts survive into later snapshots; the vector
  // grows with thread churn, which is bounded in practice because the
  // engines run fixed thread teams.
  std::vector<std::shared_ptr<Slab>> slabs;
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

Slab& thread_slab() {
  thread_local Slab* slab = [] {
    auto fresh = std::make_shared<Slab>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.slabs.push_back(fresh);
    return fresh.get();
  }();
  return *slab;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_bool("EIMM_METRICS", true)};
  return flag;
}

std::uint32_t register_metric(std::string_view name, MetricKind kind,
                              std::size_t cells) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const MetricEntry& entry : r.entries) {
    if (entry.name == name) {
      EIMM_CHECK(entry.kind == kind,
                 "metric '" + std::string(name) +
                     "' re-registered with a different kind");
      return entry.cell;
    }
  }
  std::uint32_t cell = 0;
  if (kind == MetricKind::kGauge) {
    EIMM_CHECK(r.gauges_used < kMaxGauges, "metric gauge budget exhausted");
    cell = r.gauges_used++;
  } else {
    EIMM_CHECK(r.cells_used + cells <= kMaxCells,
               "metric cell budget exhausted");
    cell = r.cells_used;
    r.cells_used += static_cast<std::uint32_t>(cells);
  }
  r.entries.push_back(MetricEntry{std::string(name), kind, cell});
  return cell;
}

}  // namespace

bool metrics_enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

void Counter::add(std::uint64_t delta) const noexcept {
  if (!metrics_enabled()) return;
  thread_slab().cells[cell_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t value) const noexcept {
  if (!metrics_enabled()) return;
  registry().gauges[cell_].store(value, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) const noexcept {
  if (!metrics_enabled()) return;
  registry().gauges[cell_].fetch_add(delta, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t value) const noexcept {
  if (!metrics_enabled()) return;
  Slab& slab = thread_slab();
  slab.cells[cell_].fetch_add(1, std::memory_order_relaxed);
  slab.cells[cell_ + 1].fetch_add(value, std::memory_order_relaxed);
  slab.cells[cell_ + 2 + histogram_bucket(value)].fetch_add(
      1, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter(register_metric(name, MetricKind::kCounter, 1));
}

Gauge gauge(std::string_view name) {
  return Gauge(register_metric(name, MetricKind::kGauge, 1));
}

Histogram histogram(std::string_view name) {
  return Histogram(register_metric(name, MetricKind::kHistogram,
                                   kHistogramCells));
}

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b == 0) return 0.0;
    const double lo = static_cast<double>(histogram_bucket_floor(b));
    const double hi = lo * 2.0;
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[b]);
    return lo + within * (hi - lo);
  }
  return static_cast<double>(histogram_bucket_floor(kHistogramBuckets - 1)) * 2.0;
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) noexcept {
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  return *this;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const MetricValue& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(r.mu);
  out.entries.reserve(r.entries.size());
  for (const MetricEntry& entry : r.entries) {
    MetricValue value;
    value.name = entry.name;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kGauge:
        value.gauge = r.gauges[entry.cell].load(std::memory_order_relaxed);
        break;
      case MetricKind::kCounter:
        for (const auto& slab : r.slabs) {
          value.value +=
              slab->cells[entry.cell].load(std::memory_order_relaxed);
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& slab : r.slabs) {
          value.histogram.count +=
              slab->cells[entry.cell].load(std::memory_order_relaxed);
          value.histogram.sum +=
              slab->cells[entry.cell + 1].load(std::memory_order_relaxed);
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            value.histogram.buckets[b] += slab->cells[entry.cell + 2 + b].load(
                std::memory_order_relaxed);
          }
        }
        break;
    }
    out.entries.push_back(std::move(value));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& slab : r.slabs) {
    for (std::uint32_t c = 0; c < r.cells_used; ++c) {
      slab->cells[c].store(0, std::memory_order_relaxed);
    }
  }
  for (std::uint32_t g = 0; g < r.gauges_used; ++g) {
    r.gauges[g].store(0, std::memory_order_relaxed);
  }
}

}  // namespace eimm::obs
