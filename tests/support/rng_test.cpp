#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace eimm {
namespace {

TEST(SplitMix64, DeterministicAndAdvancesState) {
  std::uint64_t s1 = 42, s2 = 42;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1, s2);
  // Second draw differs from the first (state advanced).
  EXPECT_NE(splitmix64(s1), a);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(HashCombine64, OrderSensitive) {
  EXPECT_NE(hash_combine64(1, 2), hash_combine64(2, 1));
  EXPECT_EQ(hash_combine64(10, 20), hash_combine64(10, 20));
}

TEST(HashCombine64, SpreadsNearbyIndices) {
  // Consecutive stream indices must produce well-separated seeds.
  std::set<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    values.insert(hash_combine64(0xABCD, i));
  }
  EXPECT_EQ(values.size(), 1000u);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, ForStreamIndependentOfCallOrder) {
  Xoshiro256 s5_first = Xoshiro256::for_stream(9, 5);
  Xoshiro256 s9_first = Xoshiro256::for_stream(9, 9);
  Xoshiro256 s5_second = Xoshiro256::for_stream(9, 5);
  EXPECT_EQ(s5_first(), s5_second());
  Xoshiro256 s5_again = Xoshiro256::for_stream(9, 5);
  (void)s9_first;
  EXPECT_EQ(Xoshiro256::for_stream(9, 5)(), s5_again());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBoundedZeroAndOne) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_bounded(0), 0u);
  EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Xoshiro256, NextBoundedRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) histogram[rng.next_bounded(kBuckets)]++;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int count : histogram) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(Xoshiro256, NextBoolExtremes) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, NextBoolRate) {
  Xoshiro256 rng(29);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  std::vector<int> v{3, 1, 2};
  std::shuffle(v.begin(), v.end(), rng);  // compiles and runs
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace eimm
