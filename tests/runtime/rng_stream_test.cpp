#include "runtime/rng_stream.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace eimm {
namespace {

TEST(RngStream, BitCompatibleWithHistoricalForStream) {
  // The scalar sampling pipeline reroutes through rng_stream; EIMM_FUSED=0
  // pools stay bit-identical to pre-helper builds only if the helper IS
  // for_stream. Compare full state evolution, not just the first draw.
  for (const std::uint64_t seed : {0ull, 1ull, 0xBE9Cull, ~0ull}) {
    for (const std::uint64_t index : {0ull, 1ull, 63ull, 64ull, 1'000'000ull}) {
      Xoshiro256 a = rng_stream(seed, index);
      Xoshiro256 b = Xoshiro256::for_stream(seed, index);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
    }
  }
}

TEST(RngStream, LaneStreamIsTheGlobalSlotStream) {
  // Lane l of block b covers global slot b*64+l and must use exactly that
  // slot's stream — the contract that makes fused roots (and whole LT
  // sets) match their scalar counterparts.
  Xoshiro256 lane = rng_lane_stream(0xBE9C, /*block=*/7, 64, /*lane=*/13);
  Xoshiro256 slot = rng_stream(0xBE9C, 7 * 64 + 13);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(lane(), slot());
}

TEST(RngSplit, DistinctDomainsGiveDistinctSubSeeds) {
  const std::uint64_t seed = 0xBE9C;
  std::set<std::uint64_t> seen;
  seen.insert(seed);
  for (std::uint64_t domain = 0; domain < 64; ++domain) {
    EXPECT_TRUE(seen.insert(rng_split(seed, domain)).second)
        << "domain " << domain << " collided";
  }
}

TEST(RngSplit, DoesNotAliasThePerIndexStreamSpace) {
  // Single mixing would make rng_split(s, d) == the seed material of
  // stream d under s; the extra splitmix round must break that. Check
  // that split-derived streams diverge from every nearby un-split stream.
  const std::uint64_t seed = 20240924;
  const std::uint64_t sub = rng_split(seed, rng_domain::kFusedMask);
  for (std::uint64_t index = 0; index < 128; ++index) {
    Xoshiro256 split_stream = rng_stream(sub, index);
    Xoshiro256 plain_stream = rng_stream(seed, index);
    EXPECT_NE(split_stream(), plain_stream());
  }
}

TEST(RngSplit, SplitStreamsPassStatisticalSmoke) {
  // Statistical independence smoke for the split seam: uniforms from the
  // split space must stay uniform (mean ~ 0.5, variance ~ 1/12) and
  // uncorrelated with the base space's stream at the same index. With
  // n = 65536 iid U(0,1) draws the mean's standard error is ~0.0011, so
  // a +-0.01 band is a ~9 sigma gate — loose enough to never flake,
  // tight enough to catch a broken mixer.
  constexpr int kDraws = 65536;
  const std::uint64_t seed = 0xBE9C;
  Xoshiro256 base = rng_stream(seed, 0);
  Xoshiro256 split = rng_stream(rng_split(seed, rng_domain::kFusedMask), 0);

  double sum = 0.0, sum_sq = 0.0, cross = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double a = base.next_double();
    const double b = split.next_double();
    sum += b;
    sum_sq += b * b;
    cross += (a - 0.5) * (b - 0.5);
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  const double covariance = cross / kDraws;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(variance, 1.0 / 12.0, 0.01);
  // Correlation of independent U(0,1) pairs: sd of the sample covariance
  // is (1/12)/sqrt(n) ~ 0.0003; allow ~10 sigma.
  EXPECT_NEAR(covariance, 0.0, 0.004);
}

TEST(RngSplit, IsConstexprAndDeterministic) {
  constexpr std::uint64_t a = rng_split(1, 2);
  EXPECT_EQ(a, rng_split(1, 2));
  EXPECT_NE(a, rng_split(1, 3));
  EXPECT_NE(a, rng_split(2, 2));
}

}  // namespace
}  // namespace eimm
