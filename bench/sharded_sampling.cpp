// sharded_sampling — per-shard-count throughput of the NUMA-sharded RRR
// sampling pipeline (rrr/sharded.hpp).
//
// Builds the same pool once per shard count and reports the sampling
// phase's wall time and sets/second, plus a bit-match check of the
// flattened CSR image against the unsharded (shards=1) build — the
// pipeline's contract is that shard count moves only placement and
// scheduling, never content. Emits a human table plus machine-readable
// BENCH_sharded.json (workload, shards, threads, sampling seconds,
// sets/sec, match flag) labelled with the host's detected NUMA domain
// count via io/json_log.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_SHARD_WORKLOAD  workload to sample (default com-DBLP)
//   EIMM_SHARDS_MAX      largest shard count in the sweep (default
//                        max(8, detected NUMA domains))
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "io/json_log.hpp"
#include "numa/topology.hpp"
#include "rrr/sharded.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace eimm;
using namespace eimm::bench;

int main() {
  const BenchConfig config = load_config();
  print_banner("sharded_sampling — NUMA-sharded RRR generation", config);

  const std::string workload =
      env_string("EIMM_SHARD_WORKLOAD").value_or("com-DBLP");
  const int domains = numa_topology().num_nodes();
  const int max_shards = static_cast<int>(
      env_int("EIMM_SHARDS_MAX", std::max(8, domains)));

  const DiffusionGraph graph =
      load_workload(config, workload, DiffusionModel::kIndependentCascade);
  ImmOptions options = imm_options(
      config, DiffusionModel::kIndependentCascade, config.max_threads);

  options.shards = 1;
  const PoolBuild reference = build_rrr_pool(graph, options,
                                             Engine::kEfficient);
  const FlatPool reference_flat = reference.view().flatten();
  std::printf("reference (shards=1): %llu sets, %.3fs sampling\n\n",
              static_cast<unsigned long long>(reference.size()),
              reference.sampling_seconds);

  std::vector<ShardedBenchResult> rows;
  AsciiTable table({"Shards", "Threads", "Sampling s", "Sets/s", "Steals",
                    "Bit-match"});
  for (const int shards : thread_sweep(max_shards)) {
    options.shards = shards;
    bool matches = true;
    // best_seconds returns the minimum sampling time over the reps; the
    // bit-match flag must hold for every rep, not just the fastest.
    const double sampling_seconds = best_seconds(config.reps, [&] {
      const PoolBuild build =
          build_rrr_pool(graph, options, Engine::kEfficient);
      const FlatPool flat = build.view().flatten();
      matches = matches && flat.offsets == reference_flat.offsets &&
                flat.vertices == reference_flat.vertices;
      return build.sampling_seconds;
    });
    const double sets_per_second =
        sampling_seconds > 0.0
            ? static_cast<double>(reference.size()) / sampling_seconds
            : 0.0;

    // Per-shard diagnostics for the final pool size (one extra round).
    ShardedConfig shard_config;
    shard_config.shards = shards;
    shard_config.model = options.model;
    shard_config.rng_seed = options.rng_seed;
    shard_config.batch_size = options.batch_size;
    ShardedSampler sampler(graph.reverse, shard_config);
    RRRPool probe(graph.num_vertices());
    probe.resize(reference.size());
    sampler.generate(probe, 0, reference.size(), nullptr);
    std::uint64_t steals = 0;
    for (const std::uint64_t s : sampler.stats().steals_per_shard) {
      steals += s;
    }

    table.new_row()
        .add(static_cast<std::uint64_t>(shards))
        .add(static_cast<std::uint64_t>(config.max_threads))
        .add(sampling_seconds, 3)
        .add(sets_per_second, 0)
        .add(steals)
        .add(matches ? "yes" : "NO");

    ShardedBenchResult row;
    row.workload = workload;
    row.shards = shards;
    row.threads = config.max_threads;
    row.sampling_seconds = sampling_seconds;
    row.sets_per_second = sets_per_second;
    row.num_rrr_sets = reference.size();
    row.pool_matches_unsharded = matches;
    rows.push_back(row);
    if (!matches) {
      std::fprintf(stderr,
                   "ERROR: shards=%d produced a different CSR image\n",
                   shards);
    }
  }

  std::printf("\n");
  table.set_title("Sharded sampling sweep: " + workload + " (" +
                  std::to_string(domains) + " NUMA domain(s) detected)");
  table.print(std::cout);

  const std::string path = write_sharded_bench_json_file(
      bench_json_path("BENCH_sharded.json"), domains, rows);
  std::printf("\nresults: %s\n", path.c_str());

  for (const ShardedBenchResult& row : rows) {
    if (!row.pool_matches_unsharded) return 1;
  }
  return 0;
}
