#include "rrr/generate.hpp"

#include "runtime/rng_stream.hpp"
#include "support/macros.hpp"

namespace eimm {

std::vector<VertexId> sample_rrr(const CSRGraph& reverse, DiffusionModel model,
                                 std::uint64_t base_seed, std::uint64_t index,
                                 SamplerScratch& scratch) {
  EIMM_CHECK(reverse.has_weights(), "reverse graph needs diffusion weights");
  EIMM_CHECK(reverse.num_vertices() > 0, "empty graph");
  // Per-index stream via the audited runtime/rng_stream seam —
  // bit-compatible with the historical Xoshiro256::for_stream seeding.
  Xoshiro256 rng = rng_stream(base_seed, index);
  const auto root =
      static_cast<VertexId>(rng.next_bounded(reverse.num_vertices()));
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return sample_rrr_ic(reverse, root, rng, scratch);
    case DiffusionModel::kLinearThreshold:
      return sample_rrr_lt(reverse, root, rng, scratch);
  }
  return {root};
}

}  // namespace eimm
