// Storage for the sampled RRR sets.
//
// The pool is index-addressed: the IMM driver decides how many sets exist
// (θ'), resize()s, and workers fill disjoint slots — no synchronization
// on the container itself. Slots correspond 1:1 to RNG streams, so pool
// content is deterministic under any schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "rrr/set.hpp"

namespace eimm {

class RRRPool {
 public:
  explicit RRRPool(VertexId num_vertices) : num_vertices_(num_vertices) {}

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }

  /// Grows the pool to `count` slots (never shrinks). Single-threaded;
  /// called by the driver between sampling rounds.
  void resize(std::size_t count);

  RRRSet& operator[](std::size_t i) noexcept { return sets_[i]; }
  const RRRSet& operator[](std::size_t i) const noexcept { return sets_[i]; }

  [[nodiscard]] const std::vector<RRRSet>& sets() const noexcept { return sets_; }

  /// Total heap footprint of all sets (OOM diagnostics; Table III notes
  /// Ripples OOMs on twitter7 without the adaptive representation).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

  /// Sum of set sizes (== total counter increments during the build).
  [[nodiscard]] std::uint64_t total_vertices() const noexcept;

  /// Average / maximum coverage as a fraction of |V| (Table I columns).
  [[nodiscard]] double average_coverage() const noexcept;
  [[nodiscard]] double max_coverage() const noexcept;

  /// Count of sets currently in bitmap representation.
  [[nodiscard]] std::size_t bitmap_count() const noexcept;

 private:
  VertexId num_vertices_;
  std::vector<RRRSet> sets_;
};

}  // namespace eimm
