#include "core/martingale.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(LogBinomial, KnownValues) {
  EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(log_binomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_DOUBLE_EQ(log_binomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial(7, 7), 0.0);
}

TEST(LogBinomial, Symmetry) {
  EXPECT_NEAR(log_binomial(100, 30), log_binomial(100, 70), 1e-9);
}

TEST(LogBinomial, KGreaterThanNIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_binomial(3, 5)));
  EXPECT_LT(log_binomial(3, 5), 0.0);
}

TEST(LogBinomial, LargeArgumentsStable) {
  // C(4e7, 50) overflows any float; the log form must stay finite.
  const double v = log_binomial(41'652'230, 50);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(MartingaleParams, DerivedConstants) {
  const auto p = compute_martingale_params(100'000, 50, 0.5);
  EXPECT_NEAR(p.epsilon_prime, std::sqrt(2.0) * 0.5, 1e-12);
  EXPECT_GT(p.ell, 1.0);  // boosted above the requested 1.0
  EXPECT_GT(p.lambda_prime, 0.0);
  EXPECT_GT(p.lambda_star, 0.0);
}

TEST(MartingaleParams, ValidationGuards) {
  EXPECT_THROW(compute_martingale_params(1, 1, 0.5), CheckError);
  EXPECT_THROW(compute_martingale_params(100, 0, 0.5), CheckError);
  EXPECT_THROW(compute_martingale_params(100, 101, 0.5), CheckError);
  EXPECT_THROW(compute_martingale_params(100, 10, 0.0), CheckError);
  EXPECT_THROW(compute_martingale_params(100, 10, 1.0), CheckError);
}

TEST(MartingaleParams, ThetaDoublesPerIteration) {
  const auto p = compute_martingale_params(1 << 16, 50, 0.5);
  for (unsigned i = 1; i + 1 <= p.max_iterations(); ++i) {
    const double ratio = static_cast<double>(p.theta_for_iteration(i + 1)) /
                         static_cast<double>(p.theta_for_iteration(i));
    EXPECT_NEAR(ratio, 2.0, 0.01) << "iteration " << i;
  }
}

TEST(MartingaleParams, MaxIterationsMatchesLog2) {
  EXPECT_EQ(compute_martingale_params(1 << 10, 5, 0.5).max_iterations(), 9u);
  EXPECT_EQ(compute_martingale_params(1 << 16, 5, 0.5).max_iterations(), 15u);
  // Tiny graphs still get at least one probing iteration.
  EXPECT_GE(compute_martingale_params(2, 1, 0.5).max_iterations(), 1u);
}

TEST(MartingaleParams, ThetaFinalInverseInLowerBound) {
  const auto p = compute_martingale_params(10'000, 20, 0.5);
  const auto theta_small_lb = p.theta_final(10.0);
  const auto theta_large_lb = p.theta_final(1000.0);
  EXPECT_GT(theta_small_lb, theta_large_lb);
  EXPECT_NEAR(static_cast<double>(theta_small_lb) /
                  static_cast<double>(theta_large_lb),
              100.0, 1.0);
}

TEST(MartingaleParams, ThetaFinalClampsLowerBound) {
  const auto p = compute_martingale_params(10'000, 20, 0.5);
  EXPECT_EQ(p.theta_final(0.0), p.theta_final(1.0));
  EXPECT_EQ(p.theta_final(-5.0), p.theta_final(1.0));
}

TEST(MartingaleParams, AcceptanceThreshold) {
  const auto p = compute_martingale_params(1024, 10, 0.5);
  // Iteration 1 probes x = n/2 = 512. Acceptance needs
  // n * F >= (1 + eps') * 512.
  const double boundary =
      (1.0 + p.epsilon_prime) * 512.0 / 1024.0;
  EXPECT_TRUE(p.accepts(boundary + 1e-9, 1));
  EXPECT_FALSE(p.accepts(boundary - 1e-3, 1));
}

TEST(MartingaleParams, LowerBoundFormula) {
  const auto p = compute_martingale_params(1000, 10, 0.5);
  EXPECT_NEAR(p.lower_bound(0.34), 1000.0 * 0.34 / (1.0 + p.epsilon_prime),
              1e-9);
}

TEST(MartingaleParams, SmallerEpsilonNeedsMoreSamples) {
  const auto loose = compute_martingale_params(10'000, 20, 0.5);
  const auto tight = compute_martingale_params(10'000, 20, 0.1);
  EXPECT_GT(tight.lambda_star, loose.lambda_star);
  EXPECT_GT(tight.lambda_prime, loose.lambda_prime);
}

TEST(MartingaleParams, LargerKNeedsMoreSamples) {
  const auto small_k = compute_martingale_params(10'000, 5, 0.5);
  const auto large_k = compute_martingale_params(10'000, 100, 0.5);
  EXPECT_GT(large_k.lambda_star, small_k.lambda_star);
}

}  // namespace
}  // namespace eimm
