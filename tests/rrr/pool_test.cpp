#include "rrr/pool.hpp"

#include <gtest/gtest.h>

#include "support/macros.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

TEST(RRRPool, ResizeAndFill) {
  RRRPool pool(10);
  pool.resize(3);
  EXPECT_EQ(pool.size(), 3u);
  pool[0] = RRRSet::make_vector({1, 2});
  EXPECT_EQ(pool[0].size(), 2u);
}

TEST(RRRPool, NeverShrinks) {
  RRRPool pool(10);
  pool.resize(5);
  EXPECT_THROW(pool.resize(3), CheckError);
}

TEST(RRRPool, CoverageStats) {
  RRRPool pool = testing::make_pool(10, {{0, 1, 2, 3, 4},  // 50%
                                         {0},              // 10%
                                         {5, 6}});         // 20%
  EXPECT_EQ(pool.total_vertices(), 8u);
  EXPECT_NEAR(pool.average_coverage(), 8.0 / 30.0, 1e-12);
  EXPECT_NEAR(pool.max_coverage(), 0.5, 1e-12);
}

TEST(RRRPool, EmptyPoolStats) {
  RRRPool pool(10);
  EXPECT_DOUBLE_EQ(pool.average_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(pool.max_coverage(), 0.0);
  EXPECT_EQ(pool.total_vertices(), 0u);
}

TEST(RRRPool, BitmapCount) {
  RRRPool pool(100);
  pool.resize(3);
  pool[0] = RRRSet::make_vector({1});
  pool[1] = RRRSet::make_bitmap({1, 2, 3}, 100);
  pool[2] = RRRSet::make_bitmap({4}, 100);
  EXPECT_EQ(pool.bitmap_count(), 2u);
}

TEST(RRRPool, MemoryBytesGrowsWithContent) {
  RRRPool pool(1000);
  pool.resize(1);
  const auto empty_bytes = pool.memory_bytes();
  std::vector<VertexId> big;
  for (VertexId v = 0; v < 500; ++v) big.push_back(v);
  pool[0] = RRRSet::make_vector(big);
  EXPECT_GT(pool.memory_bytes(), empty_bytes);
}

}  // namespace
}  // namespace eimm
