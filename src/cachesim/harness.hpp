// Runs either Find_Most_Influential_Set kernel under the cache model and
// reports the Table IV metrics.
#pragma once

#include "cachesim/cache.hpp"
#include "cachesim/memtrace.hpp"
#include "core/imm.hpp"
#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"
#include "seedselect/select.hpp"

namespace eimm {

struct TracedSelectionReport {
  CacheStats cache;
  SelectionResult selection;
  std::size_t traced_threads = 0;
};

/// Replays the chosen kernel over `pool` — a legacy RRRPool or the
/// sharded sampler's zero-copy view; both convert implicitly — with
/// `threads` OpenMP threads, each with a private simulated L1/L2.
/// Deterministic given the pool and options (dynamic balancing is
/// disabled inside for a stable trace).
TracedSelectionReport run_traced_selection(Engine engine,
                                           const RRRPoolView& pool,
                                           std::size_t k, int threads,
                                           const CacheConfig& config = {});

}  // namespace eimm
