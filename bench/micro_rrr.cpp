// Microbenchmarks for the adaptive RRR-set representation (§IV-C):
// membership and iteration cost of sorted-vector vs bitmap sets at
// varying densities — the data behind the representation threshold.
#include <benchmark/benchmark.h>

#include <vector>

#include "rrr/compressed.hpp"
#include "rrr/set.hpp"
#include "support/rng.hpp"

namespace {

using namespace eimm;

constexpr VertexId kVertices = 1 << 18;

std::vector<VertexId> members_with_density(double density,
                                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<VertexId> members;
  for (VertexId v = 0; v < kVertices; ++v) {
    if (rng.next_double() < density) members.push_back(v);
  }
  if (members.empty()) members.push_back(0);
  return members;
}

void BM_VectorContains(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const RRRSet set = RRRSet::make_vector(members_with_density(density, 1));
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(rng.next_bounded(kVertices));
    benchmark::DoNotOptimize(set.contains(v));
  }
}
BENCHMARK(BM_VectorContains)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

void BM_BitmapContains(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const RRRSet set =
      RRRSet::make_bitmap(members_with_density(density, 1), kVertices);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(rng.next_bounded(kVertices));
    benchmark::DoNotOptimize(set.contains(v));
  }
}
BENCHMARK(BM_BitmapContains)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

void BM_VectorIterate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const RRRSet set = RRRSet::make_vector(members_with_density(density, 1));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    set.for_each([&](VertexId v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.size()));
}
BENCHMARK(BM_VectorIterate)->Arg(10)->Arg(100)->Arg(500);

void BM_BitmapIterate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const RRRSet set =
      RRRSet::make_bitmap(members_with_density(density, 1), kVertices);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    set.for_each([&](VertexId v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.size()));
}
BENCHMARK(BM_BitmapIterate)->Arg(10)->Arg(100)->Arg(500);

void BM_AdaptiveConstruction(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const auto members = members_with_density(density, 1);
  for (auto _ : state) {
    auto copy = members;
    const RRRSet set = RRRSet::make_adaptive(std::move(copy), kVertices);
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_AdaptiveConstruction)->Arg(1)->Arg(100)->Arg(500);

// HBMax-style compression (rrr/compressed.hpp): smaller storage, but
// membership pays a linear decode — the codec overhead §IV-C cites as
// the reason EfficientIMM prefers the adaptive scheme.
void BM_CompressedContains(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const CompressedSet set =
      CompressedSet::encode(members_with_density(density, 1));
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(rng.next_bounded(kVertices));
    benchmark::DoNotOptimize(set.contains(v));
  }
}
BENCHMARK(BM_CompressedContains)->Arg(1)->Arg(10)->Arg(100);

void BM_CompressedIterate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const CompressedSet set =
      CompressedSet::encode(members_with_density(density, 1));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    set.for_each([&](VertexId v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.size()));
}
BENCHMARK(BM_CompressedIterate)->Arg(10)->Arg(100)->Arg(500);

void BM_CompressedEncode(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const auto members = members_with_density(density, 1);
  for (auto _ : state) {
    auto copy = members;
    const CompressedSet set = CompressedSet::encode(std::move(copy));
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_CompressedEncode)->Arg(1)->Arg(100)->Arg(500);

}  // namespace
