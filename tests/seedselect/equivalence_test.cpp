// Property-style cross-validation: the EfficientIMM kernel and the
// Ripples baseline kernel implement the SAME mathematical greedy
// max-coverage, so on any pool they must return identical seeds,
// marginals, and coverage — across models, graph families, thread
// counts, and representations. This is the strongest guard against a
// "fast but different" regression in either kernel.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "runtime/thread_info.hpp"
#include "seedselect/select.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

struct EquivalenceCase {
  std::string workload;
  DiffusionModel model;
  int threads;
  bool adaptive_repr;
};

class KernelEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(KernelEquivalence, SameSeedsSameCoverage) {
  const auto& param = GetParam();
  const DiffusionGraph g = make_workload_with_weights(
      param.workload, param.model, /*scale=*/0.02, /*seed=*/11);
  const RRRPool pool = testing::sample_pool(g, param.model, 200, 123,
                                            param.adaptive_repr);

  ThreadCountScope scope(param.threads);
  SelectionOptions options;
  options.k = 8;

  CounterArray counters(pool.num_vertices());
  const auto efficient = efficient_select(pool, counters, options);
  const auto baseline = ripples_select(pool, options);

  EXPECT_EQ(efficient.seeds, baseline.seeds);
  EXPECT_EQ(efficient.marginal_coverage, baseline.marginal_coverage);
  EXPECT_EQ(efficient.covered_sets, baseline.covered_sets);
  EXPECT_EQ(efficient.total_sets, baseline.total_sets);

  // Third corner of the cross-validation: the NUMA-sharded counter
  // layout must agree with BOTH kernels on the same pool.
  ShardedCounterArray sharded(pool.num_vertices(), 4);
  const auto sharded_result =
      efficient_select_t<NullMem, ShardedCounterArray>(pool, sharded,
                                                       options);
  EXPECT_EQ(sharded_result.seeds, baseline.seeds);
  EXPECT_EQ(sharded_result.marginal_coverage, baseline.marginal_coverage);
  EXPECT_EQ(sharded_result.covered_sets, baseline.covered_sets);
}

std::string case_name(const ::testing::TestParamInfo<EquivalenceCase>& info) {
  std::string name = info.param.workload + "_" +
                     std::string(to_string(info.param.model)) + "_t" +
                     std::to_string(info.param.threads) +
                     (info.param.adaptive_repr ? "_adaptive" : "_vector");
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AcrossWorkloadsModelsThreads, KernelEquivalence,
    ::testing::Values(
        EquivalenceCase{"com-Amazon", DiffusionModel::kIndependentCascade, 1, false},
        EquivalenceCase{"com-Amazon", DiffusionModel::kIndependentCascade, 4, true},
        EquivalenceCase{"com-YouTube", DiffusionModel::kIndependentCascade, 2, false},
        EquivalenceCase{"com-YouTube", DiffusionModel::kLinearThreshold, 4, false},
        EquivalenceCase{"com-DBLP", DiffusionModel::kLinearThreshold, 2, true},
        EquivalenceCase{"as-Skitter", DiffusionModel::kIndependentCascade, 4, false},
        EquivalenceCase{"web-Google", DiffusionModel::kIndependentCascade, 8, true},
        EquivalenceCase{"web-Google", DiffusionModel::kLinearThreshold, 1, false},
        EquivalenceCase{"soc-Pokec", DiffusionModel::kLinearThreshold, 8, false},
        EquivalenceCase{"com-LJ", DiffusionModel::kIndependentCascade, 2, true}),
    case_name);

// Thread-count sweep on one pool: efficient kernel output must not
// depend on the number of threads at all.
class ThreadInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ThreadInvariance, EfficientSelectIsThreadCountInvariant) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.02, 3);
  const RRRPool pool =
      testing::sample_pool(g, DiffusionModel::kIndependentCascade, 300, 9);

  SelectionOptions options;
  options.k = 10;

  std::vector<VertexId> reference;
  {
    ThreadCountScope scope(1);
    CounterArray counters(pool.num_vertices());
    reference = efficient_select(pool, counters, options).seeds;
  }
  {
    ThreadCountScope scope(GetParam());
    CounterArray counters(pool.num_vertices());
    EXPECT_EQ(efficient_select(pool, counters, options).seeds, reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadInvariance,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace eimm
