#include "io/binary.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "support/macros.hpp"

namespace eimm {
namespace {

constexpr char kMagic[8] = {'E', 'I', 'M', 'M', 'C', 'S', 'R', '\0'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  EIMM_CHECK(is.good(), "truncated binary graph file");
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  std::uint64_t size = 0;
  read_pod(is, size);
  std::vector<T> v(size);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  EIMM_CHECK(is.good(), "truncated binary graph payload");
  return v;
}

}  // namespace

void write_binary_csr(std::ostream& os, const CSRGraph& g) {
  os.write(kMagic, sizeof kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint8_t>(g.has_weights() ? 1 : 0));
  write_vec(os, g.offsets());
  write_vec(os, g.targets());
  if (g.has_weights()) write_vec(os, g.raw_weights());
}

void write_binary_csr_file(const std::string& path, const CSRGraph& g) {
  std::ofstream os(path, std::ios::binary);
  EIMM_CHECK(os.good(), "cannot open file for writing");
  write_binary_csr(os, g);
  EIMM_CHECK(os.good(), "write failed");
}

CSRGraph read_binary_csr(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  EIMM_CHECK(is.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
             "not an EfficientIMM binary graph file");
  std::uint32_t version = 0;
  read_pod(is, version);
  EIMM_CHECK(version == kVersion, "unsupported binary graph version");
  std::uint8_t weighted = 0;
  read_pod(is, weighted);
  auto offsets = read_vec<EdgeId>(is);
  auto targets = read_vec<VertexId>(is);
  std::vector<float> weights;
  if (weighted != 0) weights = read_vec<float>(is);
  return CSRGraph(std::move(offsets), std::move(targets), std::move(weights));
}

CSRGraph read_binary_csr_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EIMM_CHECK(is.good(), "cannot open binary graph file");
  return read_binary_csr(is);
}

}  // namespace eimm
