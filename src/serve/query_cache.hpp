// QueryCache — a bounded LRU over constrained query results.
//
// Unconstrained top-k queries are already an O(k) prefix read of the
// store's precomputed greedy sequence, so caching them buys nothing.
// Constrained queries (candidate whitelists / forbidden blacklists) run
// the live greedy kernel — O(k · touched sketches) — and serving
// workloads repeat them heavily (the same "what if these nodes are
// excluded" question from many clients). The cache keys on the
// NORMALIZED query (k + sorted deduplicated candidate/forbidden sets),
// so permutations and duplicate ids in the request hit the same entry.
//
// The store is immutable after load, so entries never go stale; the only
// eviction is capacity LRU. Thread-safe (one mutex — entries are small
// and lookups are far cheaper than the kernel they replace).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/query_engine.hpp"

namespace eimm {

class QueryCache {
 public:
  /// capacity == 0 disables the cache entirely (lookup always misses,
  /// insert is a no-op) — the knob a "no caching" deployment sets.
  explicit QueryCache(std::size_t capacity) : capacity_(capacity) {}

  /// Only constrained queries are worth caching; see the header note.
  [[nodiscard]] static bool cacheable(const QueryOptions& query) noexcept {
    return query.constrained();
  }

  /// Returns the cached result and refreshes its LRU position.
  [[nodiscard]] std::optional<QueryResult> lookup(const QueryOptions& query);

  /// Inserts (or refreshes) the result for `query`, evicting the least
  /// recently used entry when at capacity. No-op for uncacheable
  /// queries and zero-capacity caches.
  void insert(const QueryOptions& query, const QueryResult& result);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  /// Canonical byte-string key: k, then the sorted deduplicated
  /// candidate and forbidden id lists (length-prefixed so the two lists
  /// cannot alias each other).
  [[nodiscard]] static std::string make_key(const QueryOptions& query);

  struct Entry {
    std::string key;
    QueryResult result;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace eimm
