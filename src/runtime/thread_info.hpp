// OpenMP thread-environment helpers shared by engines and benches.
#pragma once

namespace eimm {

/// Hardware threads OpenMP will use by default.
int max_threads() noexcept;

/// Clamps `requested` to [1, max available]; 0 means "use all".
int resolve_threads(int requested) noexcept;

/// RAII scope that sets the OpenMP thread count and restores the previous
/// value on exit; the engines use it so a requested thread count applies
/// only to their own parallel regions.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int threads);
  ThreadCountScope(const ThreadCountScope&) = delete;
  ThreadCountScope& operator=(const ThreadCountScope&) = delete;
  ~ThreadCountScope();

 private:
  int previous_;
};

}  // namespace eimm
