#include "simulate/greedy.hpp"

#include <gtest/gtest.h>

#include "support/macros.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using testing::make_graph;
using testing::set_uniform_probability;

TEST(CelfGreedy, PicksStarHubFirst) {
  auto g = make_graph(gen_star(16));
  set_uniform_probability(g, 1.0f);
  SpreadOptions opt;
  opt.num_samples = 50;
  const auto result =
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 2, opt);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(result.spread, 16.0);
}

TEST(CelfGreedy, MatchesNaiveGreedyOnSmallGraph) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(20, 80, 3), DiffusionModel::kIndependentCascade);
  SpreadOptions opt;
  opt.num_samples = 2000;
  const auto celf =
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 3, opt);

  // Naive greedy: recompute all marginals each round.
  std::vector<VertexId> naive;
  double naive_spread = 0.0;
  for (int round = 0; round < 3; ++round) {
    VertexId best = kInvalidVertex;
    double best_spread = -1.0;
    for (VertexId v = 0; v < 20; ++v) {
      std::vector<VertexId> trial(naive);
      trial.push_back(v);
      const double s = estimate_spread(
          g.forward, DiffusionModel::kIndependentCascade, trial, opt);
      if (s > best_spread) {
        best_spread = s;
        best = v;
      }
    }
    naive.push_back(best);
    naive_spread = best_spread;
  }
  // MC noise can flip near-ties, so compare achieved spread, not ids.
  EXPECT_NEAR(celf.spread, naive_spread, naive_spread * 0.05 + 0.5);
}

TEST(CelfGreedy, SpreadMonotoneInK) {
  auto g = testing::make_weighted_graph(
      gen_barabasi_albert(60, 2, 5), DiffusionModel::kIndependentCascade);
  SpreadOptions opt;
  opt.num_samples = 500;
  const auto k1 =
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 1, opt);
  const auto k3 =
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 3, opt);
  EXPECT_GE(k3.spread + 1e-9, k1.spread);
}

TEST(CelfGreedy, RejectsBadK) {
  auto g = make_graph(gen_star(4));
  set_uniform_probability(g, 0.5f);
  EXPECT_THROW(
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 0),
      CheckError);
  EXPECT_THROW(
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 5),
      CheckError);
}

TEST(ExhaustiveOptimal, FindsObviousOptimum) {
  // Two disjoint stars: hubs 0 and 5. Optimal pair = {0, 5}.
  auto g = make_graph({{0, 1}, {0, 2}, {0, 3}, {0, 4},
                       {5, 6}, {5, 7}, {5, 8}, {5, 9}},
                      10);
  set_uniform_probability(g, 1.0f);
  SpreadOptions opt;
  opt.num_samples = 20;
  const auto best =
      exhaustive_optimal(g.forward, DiffusionModel::kIndependentCascade, 2, opt);
  EXPECT_EQ(best.seeds, (std::vector<VertexId>{0, 5}));
  EXPECT_DOUBLE_EQ(best.spread, 10.0);
}

TEST(ExhaustiveOptimal, AtLeastAsGoodAsGreedy) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(12, 50, 9), DiffusionModel::kIndependentCascade);
  SpreadOptions opt;
  opt.num_samples = 2000;
  const auto optimal =
      exhaustive_optimal(g.forward, DiffusionModel::kIndependentCascade, 2, opt);
  const auto greedy =
      celf_greedy(g.forward, DiffusionModel::kIndependentCascade, 2, opt);
  EXPECT_GE(optimal.spread + 0.25, greedy.spread);  // MC tolerance
}

TEST(ExhaustiveOptimal, GuardsAgainstLargeInstances) {
  auto g = make_graph(gen_star(30));
  set_uniform_probability(g, 0.5f);
  EXPECT_THROW(exhaustive_optimal(g.forward,
                                  DiffusionModel::kIndependentCascade, 2),
               CheckError);
}

}  // namespace
}  // namespace eimm
