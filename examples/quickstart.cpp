// Quickstart: the minimal EfficientIMM workflow.
//
//   1. Get a graph (here: the com-Amazon synthetic analogue; pass a SNAP
//      edge-list path as argv[1] to use a real dataset instead).
//   2. Assign diffusion weights for a model (IC, per the paper's §V-A).
//   3. Run EfficientIMM and print the seed set with its estimated reach.
//
// Build & run:  ./quickstart [edge_list.txt]
#include <cstdio>
#include <string>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "io/edgelist.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace eimm;

  // 1. Load or synthesize the input graph.
  DiffusionGraph graph;
  std::string dataset;
  if (argc > 1) {
    dataset = argv[1];
    std::printf("Loading SNAP edge list from %s ...\n", argv[1]);
    graph = build_diffusion_graph(read_edge_list_file(argv[1]));
  } else {
    dataset = "com-Amazon (synthetic analogue)";
    graph = make_workload("com-Amazon", /*scale=*/1.0, /*seed=*/42);
  }
  const GraphStats stats = compute_graph_stats(graph.forward, false);
  std::printf("Graph: %s — %s\n", dataset.c_str(), describe(stats).c_str());

  // 2. Weights: uniform-[0,1] Independent Cascade, as in the paper.
  assign_paper_weights(graph.reverse, DiffusionModel::kIndependentCascade,
                       /*seed=*/7);

  // 3. Run EfficientIMM with the paper's evaluation parameters.
  ImmOptions options;
  options.k = 50;
  options.epsilon = 0.5;
  options.model = DiffusionModel::kIndependentCascade;

  std::printf("Running EfficientIMM (k=%zu, eps=%.2f) ...\n", options.k,
              options.epsilon);
  const ImmResult result = run_efficient_imm(graph, options);

  std::printf("\nTop %zu influencers (vertex ids):\n  ", result.seeds.size());
  for (std::size_t i = 0; i < result.seeds.size(); ++i) {
    std::printf("%u%s", result.seeds[i], (i + 1) % 10 == 0 ? "\n  " : " ");
  }
  std::printf(
      "\nEstimated influence spread: %.0f vertices (%.1f%% of the graph)\n",
      result.estimated_spread,
      100.0 * result.estimated_spread / stats.num_vertices);
  std::printf("RRR sets sampled: %llu (%llu stored as bitmaps)\n",
              static_cast<unsigned long long>(result.num_rrr_sets),
              static_cast<unsigned long long>(result.bitmap_sets));
  std::printf("Time: %.3fs total = %.3fs sampling + %.3fs selection "
              "(%d threads)\n",
              result.breakdown.total_seconds,
              result.breakdown.sampling_seconds,
              result.breakdown.selection_seconds, result.threads_used);
  return 0;
}
