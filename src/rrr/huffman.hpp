// Canonical Huffman codec over byte streams — the compression HBMax
// (Chen et al., PACT'22; cited as [2] in the paper) applies to RRR-set
// storage. EfficientIMM's §IV-C argues the codec overhead is why it
// prefers the adaptive vector/bitmap scheme; this module implements the
// contrasted technique so the trade-off is concrete:
//
//   HuffmanSet = canonical-Huffman(varint gap stream of the sorted set)
//
// Gap bytes of social-graph sketches are heavily skewed toward small
// values, which is exactly where Huffman shines — typically another
// 1.3-2x over the plain varint encoding — at the price of bit-serial
// decode on every membership test or iteration.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace eimm {

/// General-purpose canonical Huffman coding of byte payloads.
class HuffmanCodec {
 public:
  struct Encoded {
    /// Canonical code lengths per symbol (0 = symbol absent), enough to
    /// reconstruct the codebook on decode.
    std::array<std::uint8_t, 256> code_lengths{};
    std::uint64_t payload_bits = 0;
    std::vector<std::uint8_t> bits;

    [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
      return bits.capacity() + sizeof(code_lengths) + sizeof(payload_bits);
    }
  };

  /// Encodes `data`; deterministic (canonical codes, ties by symbol).
  static Encoded encode(const std::vector<std::uint8_t>& data);

  /// Decodes a payload produced by encode(). Throws CheckError on a
  /// corrupt stream (invalid prefix or truncated bits).
  static std::vector<std::uint8_t> decode(const Encoded& encoded);
};

/// An RRR set stored as Huffman-compressed varint gaps (HBMax style).
class HuffmanSet {
 public:
  HuffmanSet() = default;

  /// Builds from member vertices (any order; duplicates removed).
  static HuffmanSet encode(std::vector<VertexId> vertices);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return encoded_.memory_bytes();
  }

  /// Membership via full decode — the codec overhead §IV-C refers to.
  [[nodiscard]] bool contains(VertexId v) const;

  /// Decodes back to the sorted member list.
  [[nodiscard]] std::vector<VertexId> decode() const;

 private:
  std::size_t count_ = 0;
  HuffmanCodec::Encoded encoded_;
};

}  // namespace eimm
