#include "rrr/compressed_pool.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "rrr/pool_view.hpp"
#include "support/env.hpp"
#include "support/macros.hpp"
#include "support/timer.hpp"

namespace eimm {

PoolCompression resolve_pool_compression(PoolCompression requested) {
  if (requested != PoolCompression::kAuto) return requested;
  const std::optional<std::string> raw = env_string("EIMM_POOL_COMPRESS");
  if (!raw.has_value()) return PoolCompression::kNone;
  std::string value = *raw;
  std::transform(value.begin(), value.end(), value.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (value == "2" || value == "huffman") return PoolCompression::kHuffman;
  if (value == "1" || value == "on" || value == "true" || value == "yes" ||
      value == "varint") {
    return PoolCompression::kVarint;
  }
  return PoolCompression::kNone;
}

std::string_view to_string(PoolCompression mode) noexcept {
  switch (mode) {
    case PoolCompression::kAuto: return "auto";
    case PoolCompression::kNone: return "none";
    case PoolCompression::kVarint: return "varint";
    case PoolCompression::kHuffman: return "huffman";
  }
  return "none";
}

namespace {

/// MSB-first bit writer over a caller-provided, pre-zeroed byte range —
/// each slot encodes into its own disjoint range, so the shard-parallel
/// pass never has two writers touching one byte (slots are byte-aligned).
class RangeBitWriter {
 public:
  explicit RangeBitWriter(std::uint8_t* bytes) noexcept : bytes_(bytes) {}

  void write(std::uint32_t code, std::uint8_t length) noexcept {
    for (int b = length - 1; b >= 0; --b) {
      if ((code >> b) & 1u) {
        bytes_[bit_ >> 3] |= static_cast<std::uint8_t>(1u << (7 - (bit_ & 7)));
      }
      ++bit_;
    }
  }

 private:
  std::uint8_t* bytes_;
  std::uint64_t bit_ = 0;
};

}  // namespace

void CompressedPool::append(const RRRPoolView& src, std::size_t begin,
                            std::size_t end) {
  EIMM_CHECK(begin == size(), "CompressedPool rounds must append in order");
  EIMM_CHECK(end >= begin, "CompressedPool append range is inverted");
  EIMM_CHECK(end <= src.size(), "CompressedPool append range exceeds source");
  const std::size_t added = end - begin;
  if (added == 0) return;
  Timer timer;

  // Pass 1 (parallel): gap-code every new slot into its own byte vector.
  // kVector slots (legacy vectors and arena runs) hand over their sorted
  // span directly; bitmap slots enumerate into a scratch vector first.
  std::vector<std::vector<std::uint8_t>> gaps(added);
  std::vector<std::uint32_t> new_counts(added);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t i = 0; i < added; ++i) {
    const RRRSetView set = src[begin + i];
    gaps[i].reserve(set.size() * 2);
    if (set.repr() == RRRRepr::kVector) {
      append_gap_stream(gaps[i], set.vertices());
      new_counts[i] = static_cast<std::uint32_t>(set.size());
    } else {
      std::vector<VertexId> scratch;
      scratch.reserve(set.size());
      set.for_each([&](VertexId v) { scratch.push_back(v); });
      append_gap_stream(gaps[i], scratch);
      new_counts[i] = static_cast<std::uint32_t>(scratch.size());
    }
  }

  if (codec_ == PoolCodec::kHuffman && !book_built_) {
    // One pool-wide codebook from the first round's gap bytes, Laplace
    // +1 smoothed over all 256 symbols: later rounds may emit byte
    // values this round never produced, and every symbol must have a
    // code for the encode to stay single-pass.
    std::array<std::uint64_t, 256> freq{};
    freq.fill(1);
    for (const std::vector<std::uint8_t>& g : gaps) {
      for (const std::uint8_t byte : g) ++freq[byte];
    }
    const std::array<std::uint8_t, 256> lengths =
        HuffmanCodec::lengths_from_frequencies(freq);
    encode_table_ = HuffmanEncodeTable::build(lengths);
    decode_table_ =
        std::make_unique<HuffmanDecodeTable>(HuffmanDecodeTable::build(lengths));
    book_built_ = true;
  }

  // Pass 2: size every slot's final stream, prefix-sum the offsets, then
  // encode in place (parallel over disjoint byte ranges).
  std::vector<std::uint64_t> slot_bytes(added);
  if (codec_ == PoolCodec::kVarint) {
    for (std::size_t i = 0; i < added; ++i) slot_bytes[i] = gaps[i].size();
  } else {
    for (std::size_t i = 0; i < added; ++i) {
      std::uint64_t bits = 0;
      for (const std::uint8_t byte : gaps[i]) bits += encode_table_.lengths[byte];
      slot_bytes[i] = (bits + 7) / 8;  // byte-align each slot
    }
  }

  offsets_.reserve(offsets_.size() + added);
  counts_.reserve(counts_.size() + added);
  for (std::size_t i = 0; i < added; ++i) {
    offsets_.push_back(offsets_.back() + slot_bytes[i]);
    counts_.push_back(new_counts[i]);
    total_vertices_ += new_counts[i];
  }
  bytes_.resize(offsets_.back());  // value-init zeros: bit-OR encode target

  if (codec_ == PoolCodec::kVarint) {
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < added; ++i) {
      std::copy(gaps[i].begin(), gaps[i].end(),
                bytes_.begin() + static_cast<std::ptrdiff_t>(offsets_[begin + i]));
    }
  } else {
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t i = 0; i < added; ++i) {
      RangeBitWriter writer(bytes_.data() + offsets_[begin + i]);
      for (const std::uint8_t byte : gaps[i]) {
        writer.write(encode_table_.codes[byte], encode_table_.lengths[byte]);
      }
    }
  }

  const double elapsed = timer.seconds();
  encode_seconds_ += elapsed;
  obs::gauge("pool.compressed_bytes")
      .set(static_cast<std::int64_t>(bytes_.size()));
  obs::histogram("pool.encode_us")
      .observe(static_cast<std::uint64_t>(elapsed * 1e6));
}

std::vector<VertexId> CompressedPool::decode_slot(std::size_t i) const {
  Timer timer;
  std::vector<VertexId> out = slot(i).decode();
  obs::histogram("pool.decode_us")
      .observe(static_cast<std::uint64_t>(timer.seconds() * 1e6));
  return out;
}

std::uint64_t CompressedPool::memory_bytes() const noexcept {
  std::uint64_t bytes = bytes_.size() +
                        offsets_.size() * sizeof(std::uint64_t) +
                        counts_.size() * sizeof(std::uint32_t);
  if (decode_table_ != nullptr) {
    bytes += sizeof(HuffmanDecodeTable) + decode_table_->ordered_symbols.size();
  }
  return bytes;
}

}  // namespace eimm
