// Determinism regressions for the sharded sampling pipeline:
//   * same (workload, seed, epsilon, shards) → bit-identical
//     RRRPool::flatten() CSR image across repeated runs;
//   * shards == 1 (explicit or via EIMM_SHARDS=1) routes through the
//     legacy single-path generation loop and bit-matches the serial
//     per-index reference sampler;
//   * every shard count produces the same image — shard count moves
//     placement and scheduling, never content;
//   * the selection-phase analogues: every EIMM_COUNTER_SHARDS value and
//     every EIMM_PIN mode produce the seed sequence of the flat,
//     unpinned reference path (counter_shards == 1, pin == none).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "rrr/sharded.hpp"
#include "runtime/affinity.hpp"
#include "statcheck.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using statcheck::statcheck_imm_options;
using statcheck::statcheck_workload;

using testing::ScopedEnv;

void expect_flat_equal(const FlatPool& a, const FlatPool& b) {
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.vertices, b.vertices);
}

TEST(ShardedDeterminism, RepeatedRunsProduceIdenticalCsrImages) {
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.shards = 3;
  const PoolBuild a = build_rrr_pool(g, opt, Engine::kEfficient);
  const PoolBuild b = build_rrr_pool(g, opt, Engine::kEfficient);
  EXPECT_EQ(a.shards_used, 3);
  EXPECT_EQ(b.shards_used, 3);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  expect_flat_equal(a.view().flatten(), b.view().flatten());
}

TEST(ShardedDeterminism, ShardsOneBitMatchesSerialReferenceSampler) {
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.shards = 1;
  // This test's whole point is the SCALAR per-index contract; pin fused
  // off so an EIMM_FUSED=1 environment (CI's fused statcheck leg) can't
  // reroute the build away from the reference being checked.
  opt.fused_sampling = FusedSampling::kOff;
  const PoolBuild build = build_rrr_pool(g, opt, Engine::kEfficient);
  EXPECT_EQ(build.shards_used, 1);

  // The serial reference: one RRR set per index from (seed, index), the
  // contract the pre-sharding path has always satisfied.
  const RRRPool reference = testing::sample_pool(
      g, opt.model, build.size(), opt.rng_seed, /*adaptive=*/true);
  expect_flat_equal(build.view().flatten(), reference.flatten());
}

TEST(ShardedDeterminism, EnvShardsOneBitMatchesExplicitShardsOne) {
  const DiffusionGraph g = statcheck_workload(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 4);

  opt.shards = 1;
  const PoolBuild explicit_one = build_rrr_pool(g, opt, Engine::kEfficient);

  ScopedEnv env("EIMM_SHARDS", "1");
  opt.shards = 0;  // defer to the environment
  const PoolBuild via_env = build_rrr_pool(g, opt, Engine::kEfficient);
  EXPECT_EQ(via_env.shards_used, 1);
  expect_flat_equal(explicit_one.view().flatten(), via_env.view().flatten());
}

TEST(ShardedDeterminism, EveryShardCountProducesTheSameImage) {
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kLinearThreshold, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kLinearThreshold, 6);
  opt.shards = 1;
  const PoolBuild reference = build_rrr_pool(g, opt, Engine::kEfficient);
  const FlatPool reference_flat = reference.view().flatten();

  for (const int shards : {2, 3, 5, 8}) {
    opt.shards = shards;
    const PoolBuild sharded = build_rrr_pool(g, opt, Engine::kEfficient);
    EXPECT_EQ(sharded.shards_used, shards);
    ASSERT_TRUE(sharded.segmented);
    expect_flat_equal(reference_flat, sharded.view().flatten());
  }
}

TEST(ShardedDeterminism, ShardedSeedsIdenticalToUnsharded) {
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.shards = 1;
  const ImmResult unsharded = run_imm(g, opt, Engine::kEfficient);
  opt.shards = 4;
  const ImmResult sharded = run_imm(g, opt, Engine::kEfficient);
  EXPECT_EQ(sharded.shards_used, 4);
  EXPECT_EQ(unsharded.seeds, sharded.seeds);
  EXPECT_EQ(unsharded.num_rrr_sets, sharded.num_rrr_sets);
  EXPECT_DOUBLE_EQ(unsharded.coverage_fraction, sharded.coverage_fraction);
}

TEST(CounterShardDeterminism, EveryCounterShardCountProducesTheSameSeeds) {
  // The selection-phase analogue of the sampling sweep above: counter
  // sharding moves counter placement, never greedy outcomes. IC and LT,
  // with EIMM_COUNTER_SHARDS=1 (the flat array) as the reference.
  for (const DiffusionModel model :
       {DiffusionModel::kIndependentCascade,
        DiffusionModel::kLinearThreshold}) {
    const DiffusionGraph g = statcheck_workload(
        model == DiffusionModel::kIndependentCascade ? "com-Amazon"
                                                     : "com-DBLP",
        model, 0.03);
    auto opt = statcheck_imm_options(model, 6);
    opt.counter_shards = 1;
    const ImmResult reference = run_imm(g, opt, Engine::kEfficient);
    EXPECT_EQ(reference.counter_shards_used, 1);

    for (const int shards : {2, 3, 4, 8}) {
      opt.counter_shards = shards;
      const ImmResult sharded = run_imm(g, opt, Engine::kEfficient);
      EXPECT_EQ(sharded.counter_shards_used, shards);
      EXPECT_EQ(sharded.seeds, reference.seeds)
          << to_string(model) << " shards=" << shards;
      EXPECT_DOUBLE_EQ(sharded.coverage_fraction,
                       reference.coverage_fraction)
          << to_string(model) << " shards=" << shards;
    }
  }
}

TEST(CounterShardDeterminism, EnvCounterShardsMatchesExplicit) {
  const DiffusionGraph g = statcheck_workload(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 4);
  opt.counter_shards = 3;
  const ImmResult explicit_three = run_imm(g, opt, Engine::kEfficient);

  ScopedEnv env("EIMM_COUNTER_SHARDS", "3");
  opt.counter_shards = 0;  // defer to the environment
  const ImmResult via_env = run_imm(g, opt, Engine::kEfficient);
  EXPECT_EQ(via_env.counter_shards_used, 3);
  EXPECT_EQ(via_env.seeds, explicit_three.seeds);
}

TEST(PinModeDeterminism, EveryPinModeProducesTheSameSeeds) {
  // EIMM_PIN moves threads, never results: sweep every mode (compact and
  // spread stay active even on single-node hosts) against the unpinned
  // reference, with counter sharding on so the pinned path drives the
  // sharded layout's home-replica selection.
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.counter_shards = 2;

  set_pin_mode(PinMode::kNone);
  const ImmResult reference = run_imm(g, opt, Engine::kEfficient);
  for (const PinMode pin :
       {PinMode::kAuto, PinMode::kCompact, PinMode::kSpread}) {
    set_pin_mode(pin);
    const ImmResult pinned = run_imm(g, opt, Engine::kEfficient);
    EXPECT_EQ(pinned.seeds, reference.seeds)
        << "pin=" << to_string(pin);
    EXPECT_DOUBLE_EQ(pinned.coverage_fraction, reference.coverage_fraction)
        << "pin=" << to_string(pin);
  }
  reset_pin_mode();
}

TEST(ShardedDeterminism, ExplicitShardsOverrideEnvironment) {
  ScopedEnv env("EIMM_SHARDS", "7");
  EXPECT_EQ(resolve_shards(0), 7);
  EXPECT_EQ(resolve_shards(2), 2);
}

TEST(ShardedDeterminism, UnsetEnvironmentFallsBackToTopology) {
  // resolve_shards(0) with no env must report the detected domain count
  // (1 on non-NUMA hosts — the graceful single-domain fallback).
  const char* previous = std::getenv("EIMM_SHARDS");
  if (previous == nullptr) {
    EXPECT_EQ(resolve_shards(0), numa_topology().num_nodes());
  }
  EXPECT_GE(resolve_shards(0), 1);
}

}  // namespace
}  // namespace eimm
