// Microbenchmark for dynamic job balancing (§IV-C): the stealing JobPool
// vs a static partition, under the skewed per-job costs RRR sets exhibit
// (a few giant sets, many tiny ones).
#include <benchmark/benchmark.h>
#include <omp.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "runtime/partition.hpp"
#include "runtime/work_queue.hpp"
#include "support/rng.hpp"

namespace {

using namespace eimm;

constexpr std::size_t kJobs = 4096;

// Skewed job costs: Zipf-ish — job j costs ~ N/(j+1) units of work.
std::vector<std::uint32_t> skewed_costs() {
  std::vector<std::uint32_t> costs(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    costs[j] = static_cast<std::uint32_t>(200000.0 / static_cast<double>(j + 1)) + 10;
  }
  // Shuffle so the giants aren't all in one static block.
  Xoshiro256 rng(3);
  for (std::size_t j = kJobs - 1; j > 0; --j) {
    std::swap(costs[j], costs[rng.next_bounded(j + 1)]);
  }
  return costs;
}

// Simulated work: spin on a volatile accumulator proportional to cost.
inline void burn(std::uint32_t cost, std::uint64_t& sink) {
  for (std::uint32_t i = 0; i < cost; ++i) sink += i * 2654435761u;
}

void BM_StaticPartition(benchmark::State& state) {
  const auto costs = skewed_costs();
  for (auto _ : state) {
    std::atomic<std::uint64_t> total{0};
#pragma omp parallel
    {
      std::uint64_t sink = 0;
#pragma omp for schedule(static)
      for (std::size_t j = 0; j < kJobs; ++j) {
        burn(costs[j], sink);
      }
      total.fetch_add(sink, std::memory_order_relaxed);
    }
    benchmark::DoNotOptimize(total.load());
  }
}
BENCHMARK(BM_StaticPartition)->Unit(benchmark::kMillisecond);

void BM_StealingJobPool(benchmark::State& state) {
  const auto costs = skewed_costs();
  const auto workers = static_cast<std::size_t>(omp_get_max_threads());
  for (auto _ : state) {
    JobPool pool(kJobs, 16, workers);
    std::atomic<std::uint64_t> total{0};
#pragma omp parallel
    {
      std::uint64_t sink = 0;
      const auto wid = static_cast<std::size_t>(omp_get_thread_num());
      for (JobBatch b = pool.next(wid); !b.empty(); b = pool.next(wid)) {
        for (std::size_t j = b.begin; j < b.end; ++j) {
          burn(costs[j], sink);
        }
      }
      total.fetch_add(sink, std::memory_order_relaxed);
    }
    benchmark::DoNotOptimize(total.load());
  }
}
BENCHMARK(BM_StealingJobPool)->Unit(benchmark::kMillisecond);

void BM_OmpDynamicReference(benchmark::State& state) {
  const auto costs = skewed_costs();
  for (auto _ : state) {
    std::atomic<std::uint64_t> total{0};
#pragma omp parallel
    {
      std::uint64_t sink = 0;
#pragma omp for schedule(dynamic, 16)
      for (std::size_t j = 0; j < kJobs; ++j) {
        burn(costs[j], sink);
      }
      total.fetch_add(sink, std::memory_order_relaxed);
    }
    benchmark::DoNotOptimize(total.load());
  }
}
BENCHMARK(BM_OmpDynamicReference)->Unit(benchmark::kMillisecond);

}  // namespace
