#include "rrr/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eimm {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset b(128);
  b.set(5);
  EXPECT_TRUE(b.test(5));
  EXPECT_FALSE(b.test(4));
  b.clear(5);
  EXPECT_FALSE(b.test(5));
}

TEST(DynamicBitset, WordBoundaryBits) {
  DynamicBitset b(130);
  for (const std::size_t i : {0ul, 63ul, 64ul, 127ul, 128ul, 129ul}) {
    b.set(i);
    EXPECT_TRUE(b.test(i)) << i;
  }
  EXPECT_EQ(b.count(), 6u);
}

TEST(DynamicBitset, CountAfterDuplicateSet) {
  DynamicBitset b(64);
  b.set(10);
  b.set(10);
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, ResetKeepsCapacity) {
  DynamicBitset b(256);
  b.set(0);
  b.set(255);
  b.reset();
  EXPECT_EQ(b.size(), 256u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynamicBitset, ForEachSetAscending) {
  DynamicBitset b(200);
  const std::vector<std::size_t> expected{3, 64, 65, 130, 199};
  for (const std::size_t i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, EmptyBitset) {
  DynamicBitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  int calls = 0;
  b.for_each_set([&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(DynamicBitset, MemoryBytesMatchesWordCount) {
  DynamicBitset b(129);  // needs 3 words
  EXPECT_EQ(b.memory_bytes(), 3 * sizeof(std::uint64_t));
}

TEST(DynamicBitset, NonMultipleOf64Size) {
  DynamicBitset b(70);
  b.set(69);
  EXPECT_TRUE(b.test(69));
  EXPECT_EQ(b.count(), 1u);
}

}  // namespace
}  // namespace eimm
