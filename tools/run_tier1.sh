#!/usr/bin/env sh
# Tier-1 verify in one command: configure, build, and run the full test
# tree exactly the way ROADMAP.md specifies. Any argument is forwarded to
# cmake --preset instead of the default in-source `build/` directory, e.g.
#   tools/run_tier1.sh          # plain build/ dir, default flags
#   tools/run_tier1.sh asan     # the Debug+ASan preset
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -ge 1 ]; then
  preset="$1"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
else
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi
