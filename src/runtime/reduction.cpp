#include "runtime/reduction.hpp"

#include <omp.h>
#include <sched.h>

#include <algorithm>
#include <span>
#include <vector>

#include "numa/topology.hpp"
#include "runtime/partition.hpp"
#include "support/aligned.hpp"

namespace eimm {

namespace {

/// Regional arg-max over [begin, end); the mask test is hoisted so the
/// common unmasked path keeps its original tight loop.
ArgMaxResult block_argmax(const CounterArray& counters,
                          const std::uint8_t* eligible, std::size_t begin,
                          std::size_t end) {
  ArgMaxResult best{begin < end ? begin : 0, 0};
  if (eligible == nullptr) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {  // strict '>' keeps the lowest index on ties
        best.value = v;
        best.index = i;
      }
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      if (eligible[i] == 0) continue;
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {
        best.value = v;
        best.index = i;
      }
    }
  }
  return best;
}

/// Same regional scan over the sharded layout's summed view.
ArgMaxResult block_argmax(const ShardedCounterArray& counters,
                          const std::uint8_t* eligible, std::size_t begin,
                          std::size_t end) {
  ArgMaxResult best{begin < end ? begin : 0, 0};
  if (eligible == nullptr) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {
        best.value = v;
        best.index = i;
      }
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      if (eligible[i] == 0) continue;
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {
        best.value = v;
        best.index = i;
      }
    }
  }
  return best;
}

/// In-place pairwise tree reduce with the shared comparator; the winner
/// lands in slot 0. Merge order cannot change the result (argmax_better
/// is a total order on (value desc, index asc)) — the tree shape is a
/// latency choice, mirroring the within-domain reduction the paper's
/// hierarchical design calls for.
ArgMaxResult tree_reduce(std::span<ArgMaxResult> partials) {
  if (partials.empty()) return {};
  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      if (argmax_better(partials[i + stride], partials[i])) {
        partials[i] = partials[i + stride];
      }
    }
  }
  return partials[0];
}

}  // namespace

ArgMaxResult serial_argmax(const CounterArray& counters,
                           const std::uint8_t* eligible) {
  if (counters.size() == 0) return {};
  return block_argmax(counters, eligible, 0, counters.size());
}

ArgMaxResult parallel_argmax(const CounterArray& counters,
                             const std::uint8_t* eligible) {
  const std::size_t n = counters.size();
  if (n == 0) return {};

  const int max_threads = omp_get_max_threads();
  std::vector<CachePadded<ArgMaxResult>> regional(
      static_cast<std::size_t>(max_threads));

#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [begin, end] = block_range(n, nthreads, tid);
    // Step 1: regional maximum over the thread's contiguous block.
    regional[tid].value = block_argmax(counters, eligible, begin, end);
  }

  // Step 2: reduce the regional maxima. Blocks are in index order, so
  // strict '>' again keeps the lowest winning index.
  ArgMaxResult best = regional[0].value;
  for (int t = 1; t < max_threads; ++t) {
    const ArgMaxResult& r = regional[static_cast<std::size_t>(t)].value;
    if (r.value > best.value) best = r;
  }
  return best;
}

ArgMaxResult serial_argmax(const ShardedCounterArray& counters,
                           const std::uint8_t* eligible) {
  if (counters.size() == 0) return {};
  return block_argmax(counters, eligible, 0, counters.size());
}

ArgMaxResult parallel_argmax(const ShardedCounterArray& counters,
                             const std::uint8_t* eligible) {
  const std::size_t n = counters.size();
  if (n == 0) return {};

  const NumaTopology& topo = numa_topology();
  const int max_threads = omp_get_max_threads();

  struct Regional {
    ArgMaxResult best;
    int domain = 0;
    bool live = false;  // thread actually ran (teams can come up short)
  };
  std::vector<CachePadded<Regional>> regional(
      static_cast<std::size_t>(max_threads));

#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [begin, end] = block_range(n, nthreads, tid);
    Regional& mine = regional[tid].value;
    mine.best = block_argmax(counters, eligible, begin, end);
    const int cpu = sched_getcpu();
    mine.domain =
        (cpu >= 0 && static_cast<std::size_t>(cpu) < topo.cpu_to_node.size())
            ? topo.cpu_to_node[static_cast<std::size_t>(cpu)]
            : 0;
    mine.live = true;
  }

  // Hierarchical reduce: bucket the regional maxima by the domain each
  // thread reported, tree-reduce within every bucket, then merge the
  // domain winners. argmax_better makes the grouping semantically
  // invisible — only the traffic pattern changes.
  std::vector<int> domains;
  std::vector<std::vector<ArgMaxResult>> buckets;
  for (int t = 0; t < max_threads; ++t) {
    const Regional& r = regional[static_cast<std::size_t>(t)].value;
    if (!r.live) continue;
    const auto it = std::find(domains.begin(), domains.end(), r.domain);
    if (it == domains.end()) {
      domains.push_back(r.domain);
      buckets.emplace_back();
      buckets.back().push_back(r.best);
    } else {
      buckets[static_cast<std::size_t>(it - domains.begin())].push_back(
          r.best);
    }
  }
  ArgMaxResult best{0, 0};
  bool first = true;
  for (auto& bucket : buckets) {
    const ArgMaxResult winner = tree_reduce(bucket);
    if (first || argmax_better(winner, best)) {
      best = winner;
      first = false;
    }
  }
  return best;
}

}  // namespace eimm
