#include "graph/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/scc.hpp"

namespace eimm {

GraphStats compute_graph_stats(const CSRGraph& g, bool with_scc) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<EdgeId> degrees(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) degrees[v] = g.degree(v);
  s.max_out_degree = *std::max_element(degrees.begin(), degrees.end());
  s.avg_out_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, degrees.size() / 100);
  EdgeId top_sum = 0;
  for (std::size_t i = 0; i < top; ++i) top_sum += degrees[i];
  s.top1pct_degree_share =
      s.num_edges ? static_cast<double>(top_sum) / static_cast<double>(s.num_edges)
                  : 0.0;

  if (with_scc) {
    const auto scc = strongly_connected_components(g);
    s.largest_scc_fraction = static_cast<double>(scc.largest_component_size()) /
                             static_cast<double>(s.num_vertices);
  }
  return s;
}

std::string describe(const GraphStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "|V|=%u |E|=%llu avg_deg=%.2f max_deg=%llu top1%%share=%.2f "
                "scc=%.1f%%",
                s.num_vertices, static_cast<unsigned long long>(s.num_edges),
                s.avg_out_degree,
                static_cast<unsigned long long>(s.max_out_degree),
                s.top1pct_degree_share, s.largest_scc_fraction * 100.0);
  return buf;
}

}  // namespace eimm
