#include "io/edgelist.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>

#include "support/macros.hpp"

namespace eimm {
namespace {

// Trims leading whitespace and parses one unsigned integer field.
// Returns false when the view has no integer at its front.
bool parse_field_u64(std::string_view& sv, std::uint64_t& out) {
  std::size_t i = 0;
  while (i < sv.size() && (sv[i] == ' ' || sv[i] == '\t' || sv[i] == '\r')) ++i;
  sv.remove_prefix(i);
  if (sv.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(sv.data(), sv.data() + sv.size(), out);
  if (ec != std::errc{}) return false;
  sv.remove_prefix(static_cast<std::size_t>(ptr - sv.data()));
  return true;
}

bool parse_field_float(std::string_view& sv, float& out) {
  std::size_t i = 0;
  while (i < sv.size() && (sv[i] == ' ' || sv[i] == '\t' || sv[i] == '\r')) ++i;
  sv.remove_prefix(i);
  if (sv.empty()) return false;
  // std::from_chars<float> is available in GCC 12.
  const auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), out);
  if (ec != std::errc{}) return false;
  sv.remove_prefix(static_cast<std::size_t>(ptr - sv.data()));
  return true;
}

}  // namespace

std::vector<WeightedEdge> read_edge_list(std::istream& is,
                                         const EdgeListParseOptions& options) {
  std::vector<WeightedEdge> edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string_view sv(line);
    // Skip blank lines and comments.
    std::size_t i = 0;
    while (i < sv.size() && (sv[i] == ' ' || sv[i] == '\t' || sv[i] == '\r')) ++i;
    if (i == sv.size() || sv[i] == '#' || sv[i] == '%') continue;
    sv.remove_prefix(i);

    std::uint64_t src = 0, dst = 0;
    EIMM_CHECK(parse_field_u64(sv, src) && parse_field_u64(sv, dst),
               "malformed edge-list line");
    float w = options.default_weight;
    parse_field_float(sv, w);  // optional third column
    if (options.one_based) {
      EIMM_CHECK(src >= 1 && dst >= 1, "one-based file contains id 0");
      --src;
      --dst;
    }
    EIMM_CHECK(src <= kInvalidVertex - 1 && dst <= kInvalidVertex - 1,
               "vertex id exceeds 32-bit range");
    edges.push_back({static_cast<VertexId>(src), static_cast<VertexId>(dst), w});
  }
  return edges;
}

std::vector<WeightedEdge> read_edge_list_file(
    const std::string& path, const EdgeListParseOptions& options) {
  std::ifstream is(path);
  EIMM_CHECK(is.good(), "cannot open edge-list file");
  return read_edge_list(is, options);
}

void write_edge_list(std::ostream& os, const std::vector<WeightedEdge>& edges,
                     bool with_weights) {
  os << "# Directed edge list (EfficientIMM reproduction)\n";
  os << "# Edges: " << edges.size() << "\n";
  for (const auto& e : edges) {
    os << e.src << '\t' << e.dst;
    if (with_weights) os << '\t' << e.weight;
    os << '\n';
  }
}

}  // namespace eimm
