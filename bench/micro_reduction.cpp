// Microbenchmark for the two-step parallel arg-max reduction of
// Algorithm 2 line 9, against the serial scan it replaces.
#include <benchmark/benchmark.h>

#include "runtime/reduction.hpp"
#include "support/rng.hpp"

namespace {

using namespace eimm;

CounterArray make_counters(std::size_t n) {
  CounterArray counters(n);
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    counters.set(i, rng.next_bounded(1 << 20));
  }
  return counters;
}

void BM_SerialArgMax(benchmark::State& state) {
  const auto counters = make_counters(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial_argmax(counters));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerialArgMax)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_ParallelArgMax(benchmark::State& state) {
  const auto counters = make_counters(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel_argmax(counters));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelArgMax)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

}  // namespace
