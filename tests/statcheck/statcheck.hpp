// Statistical-equivalence harness for fast-path validation.
//
// Every perf PR that reroutes the sampling or selection hot path carries
// the same obligation: the seeds it emits must still be GOOD seeds. Seed
// identity is the strongest check (and the sharded pipeline passes it —
// see sharded_determinism_test), but future optimizations may trade exact
// pool identity for speed; this harness is the contract those PRs test
// against instead. It runs forward Monte-Carlo spread estimation
// (simulate/spread — the paper's ground-truth oracle) over a reference
// seed set and a candidate seed set on the same graph, and reports the
// spread ratio so callers can assert candidate >= (1 - tolerance) *
// reference.
//
// Seeding: everything derives from statcheck_seed(), fixed by default and
// overridable via EIMM_STATCHECK_SEED (CI pins it explicitly so the suite
// is reproducible across runners).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/imm.hpp"
#include "simulate/spread.hpp"
#include "support/env.hpp"
#include "workloads/registry.hpp"

namespace eimm::statcheck {

/// The harness-wide base seed: EIMM_STATCHECK_SEED, default fixed.
inline std::uint64_t statcheck_seed() {
  return static_cast<std::uint64_t>(env_int("EIMM_STATCHECK_SEED", 20240924));
}

/// Monte-Carlo spread comparison of two seed sets on one graph.
struct SpreadComparison {
  std::vector<VertexId> reference_seeds;
  std::vector<VertexId> candidate_seeds;
  double reference_spread = 0.0;
  double candidate_spread = 0.0;

  /// candidate / reference (1.0 when the reference spread is zero —
  /// nothing to degrade).
  [[nodiscard]] double ratio() const noexcept {
    if (reference_spread <= 0.0) return 1.0;
    return candidate_spread / reference_spread;
  }

  /// True when the candidate's spread is within `tolerance` (fractional)
  /// of the reference: candidate >= (1 - tolerance) * reference.
  [[nodiscard]] bool within(double tolerance) const noexcept {
    return ratio() >= 1.0 - tolerance;
  }

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "reference spread " << reference_spread << " ("
       << reference_seeds.size() << " seeds) vs candidate spread "
       << candidate_spread << " (" << candidate_seeds.size()
       << " seeds), ratio " << ratio();
    return os.str();
  }
};

/// Estimates both seed sets' spread under `model` on graph.forward (which
/// must carry mirrored weights — make_workload_with_weights does).
inline SpreadComparison compare_spread(const DiffusionGraph& graph,
                                       DiffusionModel model,
                                       std::vector<VertexId> reference,
                                       std::vector<VertexId> candidate,
                                       int num_samples = 1200) {
  SpreadOptions spread_opt;
  spread_opt.num_samples = num_samples;
  spread_opt.rng_seed = statcheck_seed() ^ 0xC0FFEEull;

  SpreadComparison cmp;
  cmp.reference_seeds = std::move(reference);
  cmp.candidate_seeds = std::move(candidate);
  cmp.reference_spread =
      estimate_spread(graph.forward, model, cmp.reference_seeds, spread_opt);
  cmp.candidate_spread =
      estimate_spread(graph.forward, model, cmp.candidate_seeds, spread_opt);
  return cmp;
}

/// The standard workload options for statcheck runs: deliberately small
/// enough for CI, seeded from statcheck_seed().
inline ImmOptions statcheck_imm_options(DiffusionModel model,
                                        std::size_t k = 8) {
  ImmOptions opt;
  opt.k = k;
  opt.epsilon = 0.5;
  opt.model = model;
  opt.rng_seed = statcheck_seed();
  opt.max_rrr_sets = 100'000;
  return opt;
}

/// Builds the registry workload `name` at `scale` with weights for
/// `model`, seeded from statcheck_seed().
inline DiffusionGraph statcheck_workload(const std::string& name,
                                         DiffusionModel model,
                                         double scale = 0.05) {
  return make_workload_with_weights(name, model, scale, statcheck_seed());
}

/// Runs the unsharded Engine::kEfficient build (the reference) and the
/// sharded pipeline with `shards`, and compares the two seed sets' Monte
/// Carlo spread. The reusable entry point: swap the candidate runner to
/// validate any future fast path the same way.
inline SpreadComparison compare_sharded_quality(const DiffusionGraph& graph,
                                                ImmOptions options,
                                                int shards,
                                                int num_samples = 1200) {
  options.shards = 1;
  const ImmResult reference = run_imm(graph, options, Engine::kEfficient);
  options.shards = shards;
  const ImmResult candidate = run_imm(graph, options, Engine::kEfficient);
  return compare_spread(graph, options.model, reference.seeds,
                        candidate.seeds, num_samples);
}

}  // namespace eimm::statcheck
