// Memory-access tracing glue between the selection kernels and the cache
// model. Each OpenMP thread owns a private CacheHierarchy (threads on the
// paper's testbed have private L1/L2); a TraceSession aggregates all
// per-thread stats at teardown.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "cachesim/cache.hpp"

namespace eimm {

/// Mem policy for seedselect kernels: forwards every touch to the calling
/// thread's cache hierarchy. Valid only inside a live TraceSession.
struct TraceMem {
  static constexpr bool kTracing = true;
  static void touch(const void* addr, std::size_t bytes) noexcept;
};

/// RAII tracing scope. Construct before running a kernel templated on
/// TraceMem; per-thread hierarchies are created lazily on first touch and
/// their stats combined in aggregate(). Only one session may live at a
/// time (enforced).
class TraceSession {
 public:
  explicit TraceSession(const CacheConfig& config = {});
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  /// Sum of all per-thread stats observed so far.
  [[nodiscard]] CacheStats aggregate() const;

  /// Number of threads that recorded at least one access.
  [[nodiscard]] std::size_t thread_count() const;

 private:
  friend struct TraceMem;
  static TraceSession* active_;

  CacheHierarchy* hierarchy_for_current_thread();

  CacheConfig config_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<CacheHierarchy>> hierarchies_;
};

}  // namespace eimm
