#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "support/json.hpp"
#include "support/log.hpp"
#include "support/macros.hpp"

namespace eimm::obs {
namespace {

// Per-thread buffers are capped so a runaway traced loop degrades to
// dropped events instead of unbounded memory.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int tid = 0;
  std::size_t num_args = 0;
  const char* arg_keys[kMaxSpanArgs] = {};
  std::int64_t arg_values[kMaxSpanArgs] = {};
};

struct TraceBuffer {
  std::mutex mu;  // taken by the owning thread on append, by flush on read
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex mu;  // guards buffers list and path
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::string path;
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dropped{0};
  bool atexit_registered = false;
  bool env_checked = false;
};

Collector& collector() {
  static Collector* c = new Collector();  // leaked: outlives exiting threads
  return *c;
}

TraceBuffer& thread_buffer() {
  thread_local TraceBuffer* buffer = [] {
    auto fresh = std::make_shared<TraceBuffer>();
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    c.buffers.push_back(fresh);
    return fresh.get();
  }();
  return *buffer;
}

void atexit_flush() { flush_trace(); }

// Seeds the enabled flag from EIMM_TRACE exactly once.
void check_env_once() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.env_checked) return;
  c.env_checked = true;
  const char* env = std::getenv("EIMM_TRACE");
  if (env != nullptr && env[0] != '\0') {
    c.path = env;
    c.enabled.store(true, std::memory_order_release);
    if (!c.atexit_registered) {
      c.atexit_registered = true;
      std::atexit(atexit_flush);
    }
  }
}

struct EnvInit {
  EnvInit() { check_env_once(); }
};
// Ensures EIMM_TRACE is honoured even if the first span outruns any
// explicit trace call.
const EnvInit env_init;

void record_event(const TraceEvent& event) {
  TraceBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    collector().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(event);
}

std::vector<TraceEvent> collect_events() {
  Collector& c = collector();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    buffers = c.buffers;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

}  // namespace

bool trace_enabled() noexcept {
  return collector().enabled.load(std::memory_order_acquire);
}

void set_trace_path(const std::string& path) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.env_checked = true;  // explicit configuration overrides the env
  c.path = path;
  c.enabled.store(!path.empty(), std::memory_order_release);
  if (!path.empty() && !c.atexit_registered) {
    c.atexit_registered = true;
    std::atexit(atexit_flush);
  }
}

std::string trace_path() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.path;
}

std::size_t trace_event_count() {
  Collector& c = collector();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    buffers = c.buffers;
  }
  std::size_t total = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void reset_trace_events() {
  Collector& c = collector();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    buffers = c.buffers;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
  c.dropped.store(0, std::memory_order_relaxed);
}

void write_trace_json(std::ostream& os) {
  const std::vector<TraceEvent> events = collect_events();
  JsonWriter json(os, /*pretty=*/false);
  json.begin_object();
  json.kv("displayTimeUnit", "ms");
  json.key("traceEvents");
  json.begin_array();
  const int pid = static_cast<int>(::getpid());
  for (const TraceEvent& event : events) {
    json.begin_object();
    json.kv("name", event.name);
    json.kv("cat", "eimm");
    json.kv("ph", "X");
    json.kv("ts", static_cast<double>(event.start_ns) / 1e3);
    json.kv("dur", static_cast<double>(event.duration_ns) / 1e3);
    json.kv("pid", pid);
    json.kv("tid", event.tid);
    if (event.num_args > 0) {
      json.key("args");
      json.begin_object();
      for (std::size_t a = 0; a < event.num_args; ++a) {
        json.kv(event.arg_keys[a], event.arg_values[a]);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const std::uint64_t dropped =
      collector().dropped.load(std::memory_order_relaxed);
  if (dropped > 0) {
    EIMM_LOG_WARN << "trace buffer overflow: dropped " << dropped
                  << " event(s)";
  }
}

std::string flush_trace() {
  const std::string path = trace_path();
  if (path.empty()) return "";
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path, std::ios::trunc);
  EIMM_CHECK(os.good(), "cannot open trace output '" + path + "'");
  write_trace_json(os);
  os.flush();
  EIMM_CHECK(os.good(), "failed writing trace output '" + path + "'");
  return path;
}

TraceSpan::TraceSpan(const char* name) noexcept {
  if (!trace_enabled()) return;
  name_ = name;
  start_ns_ = monotonic_ns();
}

TraceSpan::TraceSpan(const char* name, const char* key0,
                     std::int64_t value0) noexcept
    : TraceSpan(name) {
  arg(key0, value0);
}

TraceSpan::TraceSpan(const char* name, const char* key0, std::int64_t value0,
                     const char* key1, std::int64_t value1) noexcept
    : TraceSpan(name) {
  arg(key0, value0);
  arg(key1, value1);
}

TraceSpan::TraceSpan(const char* name, const char* key0, std::int64_t value0,
                     const char* key1, std::int64_t value1, const char* key2,
                     std::int64_t value2) noexcept
    : TraceSpan(name) {
  arg(key0, value0);
  arg(key1, value1);
  arg(key2, value2);
}

void TraceSpan::arg(const char* key, std::int64_t value) noexcept {
  if (name_ == nullptr || num_args_ >= kMaxSpanArgs) return;
  arg_keys_[num_args_] = key;
  arg_values_[num_args_] = value;
  ++num_args_;
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = monotonic_ns() - start_ns_;
  event.tid = thread_ordinal();
  event.num_args = num_args_;
  for (std::size_t a = 0; a < num_args_; ++a) {
    event.arg_keys[a] = arg_keys_[a];
    event.arg_values[a] = arg_values_[a];
  }
  record_event(event);
}

}  // namespace eimm::obs
