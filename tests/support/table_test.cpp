#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace eimm {
namespace {

TEST(AsciiTable, RendersHeaderRuleAndRows) {
  AsciiTable t({"Graph", "Speedup"});
  t.new_row().add("com-Amazon").add(5.9, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Graph"), std::string::npos);
  EXPECT_NE(out.find("| com-Amazon"), std::string::npos);
  EXPECT_NE(out.find("5.9"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(AsciiTable, TitlePrinted) {
  AsciiTable t({"A"});
  t.set_title("Table III");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("## Table III"), std::string::npos);
}

TEST(AsciiTable, ColumnsAligned) {
  AsciiTable t({"N", "Value"});
  t.new_row().add("x").add(std::int64_t{1});
  t.new_row().add("longer-name").add(std::int64_t{22});
  std::ostringstream os;
  t.print(os);
  // Every data row has the same length as the header row.
  std::istringstream lines(os.str());
  std::string line;
  std::size_t expected = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected) << line;
  }
}

TEST(FormatHelpers, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatHelpers, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.0 GiB");
}

TEST(FormatHelpers, FormatSpeedup) {
  EXPECT_EQ(format_speedup(5.94), "5.9x");
  EXPECT_EQ(format_speedup(357.39, 2), "357.39x");
}

}  // namespace
}  // namespace eimm
