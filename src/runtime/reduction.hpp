// The parallel arg-max reductions of Algorithm 2, line 9.
//
// Flat layout (CounterArray): each thread scans a contiguous vertex
// block for its regional maximum, then the regional maxima are reduced
// to the global maximum.
//
// Sharded layout (ShardedCounterArray): each thread scans its vertex
// block summing the per-domain replicas per vertex, then the regional
// maxima are reduced HIERARCHICALLY — a within-domain tree reduce over
// each domain's threads first, then one cross-domain merge of the
// domain winners — so the reduction's memory traffic mirrors the
// counter layout's locality.
//
// Ties break toward the lowest vertex id in EVERY step of both layouts
// (argmax_better is the single comparator), which makes the result
// deterministic regardless of thread count, shard count, or which
// domain a thread reduced under — a property the test suite leans on
// heavily.
#pragma once

#include <cstdint>
#include <utility>

#include "runtime/atomic_counters.hpp"

namespace eimm {

struct ArgMaxResult {
  std::size_t index = 0;
  std::uint64_t value = 0;
};

/// The one tie-break rule every reduce step uses: higher value wins;
/// equal values go to the lower index. Merging partial results with this
/// comparator yields the same winner in ANY merge order, which is what
/// lets the hierarchical (domain-grouped) reduce bit-match the flat one.
[[nodiscard]] inline bool argmax_better(const ArgMaxResult& a,
                                        const ArgMaxResult& b) noexcept {
  return a.value > b.value || (a.value == b.value && a.index < b.index);
}

/// Parallel arg-max over `counters` (must be called OUTSIDE any OpenMP
/// parallel region; spawns its own). Deterministic lowest-index
/// tie-break. `eligible`, when non-null, points at counters.size() bytes;
/// indices with a zero entry are skipped (SelectionOptions::eligible,
/// the constrained-selection path).
ArgMaxResult parallel_argmax(const CounterArray& counters,
                             const std::uint8_t* eligible = nullptr);

/// Serial reference implementation (tests compare against this).
ArgMaxResult serial_argmax(const CounterArray& counters,
                           const std::uint8_t* eligible = nullptr);

/// Sharded-layout arg-max over the SUMMED replica view: within-domain
/// tree reduce, then cross-domain merge. Bit-identical to the flat
/// overload on equal logical counter values.
ArgMaxResult parallel_argmax(const ShardedCounterArray& counters,
                             const std::uint8_t* eligible = nullptr);

/// Serial reference over the summed view.
ArgMaxResult serial_argmax(const ShardedCounterArray& counters,
                           const std::uint8_t* eligible = nullptr);

}  // namespace eimm
