// Diffusion model tags shared across the library.
//
// IC (Independent Cascade): each newly activated u gets one chance to
// activate each inactive out-neighbor v with probability p(u,v).
// LT (Linear Threshold): v activates when the weight sum of its activated
// in-neighbors crosses a uniform-random threshold; the reverse-sampling
// equivalent picks at most one live in-edge per vertex.
#pragma once

#include <string_view>

namespace eimm {

enum class DiffusionModel { kIndependentCascade, kLinearThreshold };

constexpr std::string_view to_string(DiffusionModel m) noexcept {
  switch (m) {
    case DiffusionModel::kIndependentCascade: return "IC";
    case DiffusionModel::kLinearThreshold: return "LT";
  }
  return "?";
}

/// Parses "IC"/"ic"/"LT"/"lt"; anything else returns fallback.
DiffusionModel parse_model(std::string_view s,
                           DiffusionModel fallback = DiffusionModel::kIndependentCascade);

}  // namespace eimm
