#include "support/aligned.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace eimm {
namespace {

TEST(Aligned, AllocBytesIsAligned) {
  for (std::size_t alignment : {64ul, 128ul, 4096ul}) {
    void* p = aligned_alloc_bytes(100, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignment, 0u);
    aligned_free(p);
  }
}

TEST(Aligned, ZeroBytesStillAllocates) {
  void* p = aligned_alloc_bytes(0, 64);
  ASSERT_NE(p, nullptr);
  aligned_free(p);
}

TEST(Aligned, MakeAlignedArrayZeroInitialized) {
  auto arr = make_aligned_array<std::uint64_t>(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr.get()) % kCacheLineSize, 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(arr[i], 0u);
}

TEST(Aligned, CachePaddedOccupiesFullLines) {
  static_assert(sizeof(CachePadded<int>) == kCacheLineSize);
  static_assert(sizeof(CachePadded<char[100]>) == 2 * kCacheLineSize);
  static_assert(alignof(CachePadded<int>) == kCacheLineSize);
}

TEST(Aligned, CachePaddedArrayElementsOnDistinctLines) {
  std::vector<CachePadded<int>> v(4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&v[i - 1].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&v[i].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Aligned, CachePaddedAccessors) {
  CachePadded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p = 42;
  EXPECT_EQ(p.value, 42);
}

}  // namespace
}  // namespace eimm
