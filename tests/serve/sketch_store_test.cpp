#include "serve/sketch_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "seedselect/select.hpp"
#include "support/macros.hpp"
#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

TEST(SketchStore, FreezesHandBuiltPoolIntoCsrLayout) {
  const RRRPool pool =
      testing::make_pool(5, {{0, 1}, {1, 2}, {3}, {1}});
  const SketchStore store = SketchStore::from_pool(pool, 3);

  EXPECT_EQ(store.num_vertices(), 5u);
  EXPECT_EQ(store.num_sketches(), 4u);
  EXPECT_EQ(store.k_max(), 3u);

  ASSERT_EQ(store.sketch(0).size(), 2u);
  EXPECT_EQ(store.sketch(0)[0], 0u);
  EXPECT_EQ(store.sketch(0)[1], 1u);
  ASSERT_EQ(store.sketch(2).size(), 1u);
  EXPECT_EQ(store.sketch(2)[0], 3u);

  // Inverted index: vertex 1 appears in sketches 0, 1, 3 (ascending).
  const auto covering = store.covering(1);
  ASSERT_EQ(covering.size(), 3u);
  EXPECT_EQ(covering[0], 0u);
  EXPECT_EQ(covering[1], 1u);
  EXPECT_EQ(covering[2], 3u);
  EXPECT_EQ(store.covering(4).size(), 0u);

  // Degrees are exactly the initial Algorithm 2 counters.
  EXPECT_EQ(store.degree(0), 1u);
  EXPECT_EQ(store.degree(1), 3u);
  EXPECT_EQ(store.degree(2), 1u);
  EXPECT_EQ(store.degree(3), 1u);
  EXPECT_EQ(store.degree(4), 0u);
}

TEST(SketchStore, InvertedIndexMatchesMembershipOnSampledPool) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.01);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 200, 99, /*adaptive=*/true);
  const SketchStore store = SketchStore::from_pool(pool, 5);

  for (VertexId v = 0; v < store.num_vertices(); ++v) {
    std::vector<SketchId> expected;
    for (std::size_t s = 0; s < pool.size(); ++s) {
      if (pool[s].contains(v)) expected.push_back(static_cast<SketchId>(s));
    }
    const auto covering = store.covering(v);
    ASSERT_EQ(covering.size(), expected.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(covering.begin(), covering.end(),
                           expected.begin()))
        << "vertex " << v;
  }
}

TEST(SketchStore, SketchesRoundTripBitmapRepresentation) {
  // A dense set crosses the bitmap threshold; flatten must expand it back
  // to the identical sorted vertex run.
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 100, 7, /*adaptive=*/true);
  ASSERT_GT(pool.bitmap_count(), 0u) << "test needs at least one bitmap set";
  const SketchStore store = SketchStore::from_pool(pool, 5);

  for (std::size_t s = 0; s < pool.size(); ++s) {
    const std::vector<VertexId> expected = pool[s].to_vector();
    const auto actual = store.sketch(static_cast<SketchId>(s));
    ASSERT_EQ(actual.size(), expected.size()) << "sketch " << s;
    EXPECT_TRUE(std::equal(actual.begin(), actual.end(), expected.begin()))
        << "sketch " << s;
  }
}

TEST(SketchStore, DefaultSequenceMatchesEfficientSelect) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kLinearThreshold, 0.01);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kLinearThreshold, 300, 1234);
  const std::size_t k = 8;
  const SketchStore store = SketchStore::from_pool(pool, k);

  CounterArray counters(pool.num_vertices());
  SelectionOptions sopt;
  sopt.k = k;
  const SelectionResult direct = efficient_select(pool, counters, sopt);

  EXPECT_TRUE(std::ranges::equal(store.default_seeds(), direct.seeds));
  EXPECT_TRUE(
      std::ranges::equal(store.default_marginals(), direct.marginal_coverage));
}

TEST(SketchStore, BuildRecordsProvenance) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 4;
  options.rng_seed = 77;
  options.epsilon = 0.6;
  options.max_rrr_sets = 4096;
  const SketchStore store = SketchStore::build(g, options, "amazon-smoke");

  EXPECT_EQ(store.meta().workload, "amazon-smoke");
  EXPECT_EQ(store.meta().model, "IC");
  EXPECT_EQ(store.meta().rng_seed, 77u);
  EXPECT_DOUBLE_EQ(store.meta().epsilon, 0.6);
  EXPECT_GT(store.meta().theta, 0u);
  EXPECT_GT(store.num_sketches(), 0u);
  EXPECT_EQ(store.k_max(), 4u);
  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(SketchStore, RejectsDegeneratePools) {
  const RRRPool pool = testing::make_pool(3, {{0}});
  EXPECT_THROW(SketchStore::from_pool(pool, 0), CheckError);
  const RRRPool empty_vertices(0);
  EXPECT_THROW(SketchStore::from_pool(empty_vertices, 1), CheckError);
}

// --- Deferred-flatten (zero-copy freeze) semantics ---

ImmOptions deferred_options() {
  ImmOptions options;
  options.k = 5;
  options.rng_seed = 4242;
  options.max_rrr_sets = 4096;
  return options;
}

TEST(SketchStore, BuildDefersFlattenUntilSave) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  const ImmOptions options = deferred_options();
  const SketchStore store = SketchStore::build(g, options, "deferred");
  // Build-and-query-only workloads never pay the copy.
  EXPECT_FALSE(store.flat());
  EXPECT_GT(store.num_sketches(), 0u);

  // The deferred store must be logically identical to the eager
  // from_pool freeze of the same build's flattened image.
  const PoolBuild reference_build =
      build_rrr_pool(g, options, Engine::kEfficient);
  RRRPool reference(g.num_vertices());
  reference.resize(reference_build.size());
  {
    const FlatPool flat = reference_build.view().flatten();
    for (std::size_t s = 0; s < reference.size(); ++s) {
      reference[s] = RRRSet::make_vector(std::vector<VertexId>(
          flat.vertices.begin() +
              static_cast<std::ptrdiff_t>(flat.offsets[s]),
          flat.vertices.begin() +
              static_cast<std::ptrdiff_t>(flat.offsets[s + 1])));
    }
  }
  SketchStoreMeta meta = store.meta();
  const SketchStore eager =
      SketchStore::from_pool(reference, options.k, std::move(meta));
  EXPECT_TRUE(eager.flat());
  EXPECT_TRUE(store == eager);
  EXPECT_TRUE(
      std::ranges::equal(store.default_seeds(), eager.default_seeds()));
}

TEST(SketchStore, DeferredStoreSavesAndMaterializesIdentically) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.01);
  SketchStore store = SketchStore::build(g, deferred_options(), "dblp");
  ASSERT_FALSE(store.flat());

  // save() assembles the payload on the fly without materializing.
  std::stringstream ss;
  store.save(ss);
  EXPECT_FALSE(store.flat());
  const SketchStore loaded = SketchStore::load(ss);
  EXPECT_TRUE(loaded.flat());
  EXPECT_TRUE(store == loaded);

  // materialize_flat() switches backing without changing content, and a
  // second save produces the identical byte stream.
  store.materialize_flat();
  EXPECT_TRUE(store.flat());
  store.materialize_flat();  // idempotent
  std::stringstream again;
  store.save(again);
  EXPECT_EQ(ss.str().substr(0), again.str());
  EXPECT_TRUE(store == loaded);
}

TEST(SketchStore, FromBuildAdoptsSegmentedStorageZeroCopy) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options = deferred_options();
  options.shards = 3;  // force the SegmentedPool backing
  PoolBuild build = build_rrr_pool(g, options, Engine::kEfficient);
  ASSERT_TRUE(build.segmented);
  const FlatPool expected = build.view().flatten();

  const SketchStore store =
      SketchStore::from_build(std::move(build), options.k);
  EXPECT_FALSE(store.flat());
  ASSERT_EQ(store.num_sketches(), expected.offsets.size() - 1);
  for (std::uint64_t s = 0; s < store.num_sketches(); ++s) {
    const auto actual = store.sketch(static_cast<SketchId>(s));
    ASSERT_EQ(actual.size(), expected.offsets[s + 1] - expected.offsets[s]);
    EXPECT_TRUE(std::equal(
        actual.begin(), actual.end(),
        expected.vertices.begin() +
            static_cast<std::ptrdiff_t>(expected.offsets[s])));
  }
}

}  // namespace
}  // namespace eimm
