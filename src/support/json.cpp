#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/macros.hpp"

namespace eimm {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 1; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  EIMM_CHECK(stack_.back() != Ctx::kObject || after_key_,
             "value inside an object requires a preceding key()");
  if (stack_.back() == Ctx::kArray) {
    if (need_comma_) os_ << ',';
    newline_indent();
  }
  after_key_ = false;
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EIMM_CHECK(stack_.back() == Ctx::kObject, "end_object outside object");
  EIMM_CHECK(!after_key_, "dangling key before end_object");
  stack_.pop_back();
  newline_indent();
  os_ << '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EIMM_CHECK(stack_.back() == Ctx::kArray, "end_array outside array");
  stack_.pop_back();
  newline_indent();
  os_ << ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  EIMM_CHECK(stack_.back() == Ctx::kObject, "key() outside object");
  EIMM_CHECK(!after_key_, "two key() calls without a value");
  if (need_comma_) os_ << ',';
  newline_indent();
  os_ << '"' << escape(k) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    os_ << buf;
  } else {
    os_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace eimm
