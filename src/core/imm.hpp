// Public entry points: the full IMM workflow (Algorithm 1) with two
// interchangeable execution engines.
//
//   Engine::kEfficient — EfficientIMM (the paper's contribution): RRR-set
//     partitioning with a shared atomic counter, kernel fusion, adaptive
//     RRR representation, adaptive counter updates, dynamic job
//     balancing, NUMA-interleaved shared state. Every feature is an
//     independent flag so the ablation benches can toggle them.
//
//   Engine::kRipples — the baseline strategy the paper measures against:
//     sorted-vector RRR sets, separate generation/selection kernels,
//     vertex-partitioned selection with thread-local counters and
//     binary search over all sets, static scheduling.
//
// Both engines run the identical martingale workflow and — given the same
// seed — identical RRR-set contents, so runtime differences are purely
// the parallelization strategy, exactly as the paper frames them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/martingale.hpp"
#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "rrr/fused.hpp"
#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"
#include "rrr/sharded.hpp"
#include "rrr/set.hpp"
#include "runtime/atomic_counters.hpp"
#include "seedselect/engine.hpp"

namespace eimm {

enum class Engine { kEfficient, kRipples };

constexpr std::string_view to_string(Engine e) noexcept {
  return e == Engine::kEfficient ? "EfficientIMM" : "Ripples";
}

struct ImmOptions {
  /// Seed-set budget (paper evaluation: k = 50).
  std::size_t k = 50;
  /// Approximation accuracy ε (paper evaluation: ε = 0.5).
  double epsilon = 0.5;
  /// Failure-probability exponent: success w.p. ≥ 1 - 1/n^ℓ.
  double ell = 1.0;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// OpenMP threads; 0 = library default.
  int threads = 0;
  /// Base seed; all RRR-set streams derive from (seed, index), so results
  /// are reproducible across thread counts and schedules.
  std::uint64_t rng_seed = 0x5EEDBA5Eu;

  // --- EfficientIMM feature flags (ablations in bench/) ---
  /// Fuse Generate_RRRsets with the initial counter build (Algorithm 3).
  bool kernel_fusion = true;
  /// Adaptive vector/bitmap RRR representation (§IV-C). Applies to the
  /// contiguous RRRPool paths (shards == 1, and the ripples engine);
  /// the sharded zero-copy path (shards > 1) always stores sorted
  /// vertex runs in the staging arenas — set contents and seeds are
  /// identical either way, but bitmap_sets reports 0 there and dense
  /// sets occupy size·4 bytes instead of |V|/8.
  bool adaptive_representation = true;
  /// Adaptive decrement-vs-rebuild counter update (§IV-C / Fig. 5).
  bool adaptive_update = true;
  /// Stealing job pool instead of static partitions (§IV-C).
  bool dynamic_balance = true;
  /// Interleave shared arrays across NUMA nodes (§IV-B); silently a
  /// no-op on single-node hosts.
  bool numa_aware = true;
  /// Bitmap-representation crossover, as a fraction of |V|.
  double bitmap_threshold = kDefaultBitmapThreshold;
  /// RRR sets per dynamic-balancing batch.
  std::size_t batch_size = 64;
  /// NUMA sampling shards (rrr/sharded.hpp). 0 resolves from the
  /// EIMM_SHARDS environment variable, defaulting to the detected NUMA
  /// domain count; 1 forces the legacy single-path generation loop.
  /// Pool contents are bit-identical for every value — per-index RNG
  /// streams — so this only moves storage placement and scheduling.
  int shards = 0;
  /// NUMA counter shards for the selection phase (seedselect/engine.hpp):
  /// one domain-local counter replica per shard. 0 resolves from the
  /// EIMM_COUNTER_SHARDS environment variable, defaulting to the
  /// detected NUMA domain count; 1 keeps the legacy flat CounterArray.
  /// Forced to 1 when numa_aware is false (the sharded counter is a
  /// NUMA feature, so the --no-numa ablation disables it too). Seed
  /// sequences are bit-identical for every value — the sharded layout
  /// only moves counter placement, never greedy outcomes.
  int counter_shards = 0;

  /// Safety cap on total RRR sets — keeps bench-scale LT runs (θ up to
  /// 1e8-1e9 in the paper) tractable. Capped runs are flagged in the
  /// result; the quality guarantee then degrades gracefully.
  std::uint64_t max_rrr_sets = 1u << 22;

  /// Compressed RRR pool backing (rrr/compressed_pool.hpp): after each
  /// generation round the fresh sets are gap-coded into a CompressedPool
  /// and the raw staging storage is released, so resident pool bytes
  /// drop 2-4x at a bounded decode-on-enumerate selection slowdown
  /// (bench/compressed_pool measures the trade). kAuto resolves the
  /// EIMM_POOL_COMPRESS environment variable (0/off → none, 1/on/varint
  /// → varint, 2/huffman → huffman; default none). kEfficient engine
  /// only — the ripples baseline keeps the paper's layout. Seed
  /// sequences are bit-identical for every value (ctest -L statcheck
  /// pins it): compression changes storage, never set contents.
  PoolCompression pool_compress = PoolCompression::kAuto;

  /// Fused 64-wide sampling (rrr/fused.hpp): one traversal emits up to
  /// 64 RRR sets by packing lanes into a per-vertex uint64_t visited
  /// word. kAuto resolves the EIMM_FUSED environment variable (default
  /// off). kEfficient engine only. Fused pools are identical across
  /// shard counts and deterministic in the seed, but IC contents are
  /// only STATISTICALLY equivalent to the scalar pipeline (the joint
  /// traversal reorders coin flips) — the statcheck spread-ratio harness
  /// validates the mode instead of bit-identity. Forces the segmented
  /// zero-copy storage path even when shards == 1.
  FusedSampling fused_sampling = FusedSampling::kAuto;
};

/// Wall-clock attribution matching the paper's Fig. 2 breakdown.
struct PhaseBreakdown {
  double sampling_seconds = 0.0;    // Generate_RRRsets (all rounds)
  double selection_seconds = 0.0;   // Find_Most_Influential_Set (all calls)
  double total_seconds = 0.0;
  [[nodiscard]] double other_seconds() const noexcept {
    const double other = total_seconds - sampling_seconds - selection_seconds;
    return other > 0.0 ? other : 0.0;
  }
};

struct ImmResult {
  std::vector<VertexId> seeds;
  /// F(S) over the final pool.
  double coverage_fraction = 0.0;
  /// n · F(S): the unbiased influence-spread estimate.
  double estimated_spread = 0.0;
  /// θ the martingale bound requested (may exceed num_rrr_sets when the
  /// max_rrr_sets cap kicked in).
  std::uint64_t theta = 0;
  std::uint64_t num_rrr_sets = 0;
  bool theta_capped = false;
  std::uint64_t rrr_memory_bytes = 0;
  std::uint64_t bitmap_sets = 0;
  std::uint32_t rebuild_rounds = 0;
  int threads_used = 0;
  /// Sampling shards the build used (1 on non-NUMA hosts by default).
  int shards_used = 1;
  /// Counter shards the selection phase used (1 = legacy flat array).
  int counter_shards_used = 1;
  /// Working counter-layout allocations across ALL selections of this
  /// run (probes + final). The SelectionWorkspace contract keeps this at
  /// exactly 1 for Engine::kEfficient (the workspace-reuse regression
  /// test pins it); the ripples kernel owns its thread-local counters
  /// internally, so kRipples runs report 0.
  std::uint64_t counter_layout_allocations = 0;
  /// Sharded-pipeline byte accounting (all zero when shards_used == 1):
  /// payload staged into arenas, arena bytes mapped, and payload copied
  /// at merge — the zero-copy view path keeps merged_bytes at 0.
  std::uint64_t staged_bytes = 0;
  std::uint64_t mapped_bytes = 0;
  std::uint64_t merged_bytes = 0;
  /// Whether the build sampled through the fused 64-wide generator
  /// (resolved from the option and EIMM_FUSED).
  bool fused_sampling_used = false;
  /// Pool compression the build actually used (resolved from the option
  /// and EIMM_POOL_COMPRESS; kNone when the pool stayed raw).
  PoolCompression pool_compression_used = PoolCompression::kNone;
  /// Gap-coded payload bytes of the compressed pool (0 when raw).
  std::uint64_t compressed_payload_bytes = 0;
  /// Wall-clock spent encoding rounds into the compressed pool.
  double encode_seconds = 0.0;
  PhaseBreakdown breakdown;
  /// Sampling-phase probe history (diagnostics; one entry per executed
  /// iteration of the Algorithm 1 loop).
  std::vector<MartingaleIteration> iterations;
};

/// Everything the sampling phase produces: the frozen RRR state plus the
/// provenance a consumer needs to reuse it without regenerating. run_imm
/// performs its final selection over exactly this state, and the serve/
/// subsystem freezes it into a queryable SketchStore.
///
/// Storage: the legacy path (shards_used == 1, or the ripples engine)
/// fills `pool`; the sharded path stages straight into `segments` and
/// NEVER builds the contiguous image — consumers read through view(),
/// which works over either, and call view().flatten() only when they
/// genuinely need the flat CSR (snapshots).
struct PoolBuild {
  RRRPool pool{0};
  /// Zero-copy sharded storage (populated iff `segmented`).
  SegmentedPool segments;
  bool segmented = false;
  /// Gap-coded pool storage (populated iff `compressed`). When active,
  /// each generation round is encoded here and the raw staging storage
  /// (pool slots or segment arenas) is recycled — `pool`/`segments`
  /// then hold only transient per-round staging, and view() serves
  /// every consumer from the compressed image.
  CompressedPool cpool;
  bool compressed = false;
  /// Fused base counters (kernel fusion, Algorithm 3); valid — and worth
  /// copying instead of rebuilding — only when counters_prebuilt.
  CounterArray base_counters;
  bool counters_prebuilt = false;
  /// Reusable selection scratch, shared by the probing rounds and —
  /// when run_imm drives the build — the final selection, so one run
  /// allocates exactly one working counter layout.
  SelectionWorkspace workspace;
  /// Sampler diagnostics (empty per-shard vectors when shards_used == 1).
  ShardStats shard_stats;
  std::uint64_t theta = 0;
  bool theta_capped = false;
  double sampling_seconds = 0.0;
  /// Selection time spent inside the probing iterations (the final
  /// selection happens outside this struct's lifetime).
  double probing_selection_seconds = 0.0;
  /// Resolved sampling shard count (1 = legacy single-path generation).
  int shards_used = 1;
  /// Whether generation went through the fused 64-wide sampler.
  bool fused_sampling_used = false;
  std::vector<MartingaleIteration> iterations;

  /// The one surface selection-side consumers read the build through.
  [[nodiscard]] RRRPoolView view() const noexcept {
    if (compressed) return RRRPoolView(cpool);
    return segmented ? RRRPoolView(segments) : RRRPoolView(pool);
  }
  /// Number of RRR sets in whichever storage is active.
  [[nodiscard]] std::size_t size() const noexcept {
    if (compressed) return cpool.size();
    return segmented ? segments.size() : pool.size();
  }
};

/// Runs the sampling phase only — martingale probing plus RRR-set
/// generation — and returns the pool run_imm would have selected over.
/// Deterministic in (graph, options, engine): the same inputs yield the
/// same pool contents regardless of thread count.
PoolBuild build_rrr_pool(const DiffusionGraph& graph,
                         const ImmOptions& options, Engine engine);

/// Runs the full IMM workflow with the chosen engine. The reverse graph
/// must already carry diffusion weights (see diffusion/weights.hpp).
ImmResult run_imm(const DiffusionGraph& graph, const ImmOptions& options,
                  Engine engine);

/// EfficientIMM with all optimizations as configured in `options`.
inline ImmResult run_efficient_imm(const DiffusionGraph& graph,
                                   const ImmOptions& options) {
  return run_imm(graph, options, Engine::kEfficient);
}

/// The Ripples-strategy baseline (feature flags ignored).
inline ImmResult run_baseline_imm(const DiffusionGraph& graph,
                                  const ImmOptions& options) {
  return run_imm(graph, options, Engine::kRipples);
}

}  // namespace eimm
