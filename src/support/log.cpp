#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace eimm {
namespace {

LogLevel initial_threshold() {
  const char* env = std::getenv("EIMM_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> t{static_cast<int>(initial_threshold())};
  return t;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[eimm %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace eimm
