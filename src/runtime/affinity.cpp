#include "runtime/affinity.hpp"

#include <omp.h>
#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <mutex>

#include "support/env.hpp"
#include "support/log.hpp"

namespace eimm {

namespace {

std::optional<PinMode>& pin_override() {
  static std::optional<PinMode> override;
  return override;
}

/// Logs the first ACTIVE pinning map of the process when EIMM_VERBOSE is
/// set — the ROADMAP-noted diagnosability gap: without this, a mis-pinned
/// run (cpuset stripped the mask, OMP_PROC_BIND fought the plan, ...) is
/// indistinguishable from a correctly placed one.
void log_pin_map_once(PinMode mode, const std::vector<PinnedThread>& map) {
  if (!env_bool("EIMM_VERBOSE", false)) return;
  static std::once_flag flag;
  std::call_once(flag, [&] {
    std::fprintf(stderr, "[eimm affinity] pin=%s, %zu worker(s):\n",
                 std::string(to_string(mode)).c_str(), map.size());
    for (const PinnedThread& t : map) {
      if (t.thread < 0) continue;
      std::fprintf(stderr, "[eimm affinity]   thread %d -> cpu %d (node %d)%s\n",
                   t.thread, t.cpu, t.domain,
                   t.pinned ? "" : " [pin rejected]");
    }
  });
}

}  // namespace

PinMode parse_pin_mode(const std::string& s, PinMode fallback, bool* ok) {
  std::string lower(s.size(), '\0');
  std::transform(s.begin(), s.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (ok != nullptr) *ok = true;
  if (lower == "none") return PinMode::kNone;
  if (lower == "auto") return PinMode::kAuto;
  if (lower == "compact") return PinMode::kCompact;
  if (lower == "spread") return PinMode::kSpread;
  if (ok != nullptr) *ok = false;
  return fallback;
}

PinMode resolve_pin_mode() {
  if (pin_override().has_value()) return *pin_override();
  if (const auto value = env_string("EIMM_PIN")) {
    bool ok = false;
    const PinMode mode = parse_pin_mode(*value, PinMode::kAuto, &ok);
    if (!ok) {
      EIMM_LOG_WARN << "EIMM_PIN='" << *value
                    << "' is not none|auto|compact|spread; using auto";
    }
    return mode;
  }
  return PinMode::kAuto;
}

void set_pin_mode(PinMode mode) { pin_override() = mode; }

void reset_pin_mode() { pin_override().reset(); }

PinMode effective_pin_mode(PinMode mode, const NumaTopology& topo) noexcept {
  if (mode != PinMode::kAuto) return mode;
  return topo.is_numa() ? PinMode::kCompact : PinMode::kNone;
}

PinPlan make_pin_plan(PinMode mode, std::size_t workers,
                      const NumaTopology& topo) {
  PinPlan plan;
  plan.mode = effective_pin_mode(mode, topo);
  if (plan.mode == PinMode::kNone || workers == 0 ||
      topo.cpu_to_node.empty()) {
    return plan;
  }

  // cpu lists per domain, domains in topo.nodes order, cpus ascending —
  // the deterministic base both fill orders draw from.
  std::vector<std::vector<int>> node_cpus(topo.nodes.size());
  for (std::size_t cpu = 0; cpu < topo.cpu_to_node.size(); ++cpu) {
    const int node = topo.cpu_to_node[cpu];
    const auto it = std::find(topo.nodes.begin(), topo.nodes.end(), node);
    if (it == topo.nodes.end()) continue;  // cpu on an offline node
    node_cpus[static_cast<std::size_t>(it - topo.nodes.begin())].push_back(
        static_cast<int>(cpu));
  }

  std::vector<int> order;
  order.reserve(topo.cpu_to_node.size());
  if (plan.mode == PinMode::kCompact) {
    for (const auto& cpus : node_cpus) {
      order.insert(order.end(), cpus.begin(), cpus.end());
    }
  } else {  // kSpread: one cpu from each domain per turn
    for (std::size_t round = 0; order.size() < topo.cpu_to_node.size();
         ++round) {
      bool took_any = false;
      for (const auto& cpus : node_cpus) {
        if (round < cpus.size()) {
          order.push_back(cpus[round]);
          took_any = true;
        }
      }
      if (!took_any) break;
    }
  }
  if (order.empty()) {
    plan.mode = PinMode::kNone;
    return plan;
  }

  plan.worker_cpu.resize(workers);
  plan.worker_domain.resize(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const int cpu = order[w % order.size()];
    plan.worker_cpu[w] = cpu;
    plan.worker_domain[w] =
        static_cast<std::size_t>(cpu) < topo.cpu_to_node.size()
            ? topo.cpu_to_node[static_cast<std::size_t>(cpu)]
            : 0;
  }
  return plan;
}

bool pin_current_thread(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  if (static_cast<std::size_t>(cpu) >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<std::size_t>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

int apply_pin(const PinPlan& plan, std::size_t worker) {
  if (!plan.active()) return -1;
  const int cpu = plan.worker_cpu[worker % plan.worker_cpu.size()];
  return pin_current_thread(cpu) ? cpu : -1;
}

std::vector<int> current_affinity_cpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return cpus;
  }
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(static_cast<std::size_t>(cpu), &set)) cpus.push_back(cpu);
  }
#endif
  return cpus;
}

bool set_affinity_cpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu < 0 || static_cast<std::size_t>(cpu) >= CPU_SETSIZE) continue;
    CPU_SET(static_cast<std::size_t>(cpu), &set);
  }
  if (CPU_COUNT(&set) == 0) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

std::vector<PinnedThread> pin_openmp_team(PinMode mode) {
  const NumaTopology& topo = numa_topology();
  const PinPlan plan = make_pin_plan(
      mode, static_cast<std::size_t>(omp_get_max_threads()), topo);
  std::vector<PinnedThread> map;
  if (!plan.active()) return map;

  map.resize(plan.workers());
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    if (tid < map.size()) {
      PinnedThread record;
      record.thread = static_cast<int>(tid);
      record.pinned = apply_pin(plan, tid) >= 0;
      // Report where the thread ACTUALLY landed, not where the plan
      // asked — after a successful pin the two agree; after a rejected
      // one the divergence is the diagnostic.
      record.cpu = sched_getcpu();
      record.domain =
          (record.cpu >= 0 &&
           static_cast<std::size_t>(record.cpu) < topo.cpu_to_node.size())
              ? topo.cpu_to_node[static_cast<std::size_t>(record.cpu)]
              : 0;
      map[tid] = record;
    }
  }
  // Teams smaller than the plan (OMP_DYNAMIC, thread limits) leave
  // default rows; drop them so the map describes real threads only.
  map.erase(std::remove_if(map.begin(), map.end(),
                           [](const PinnedThread& t) { return t.thread < 0; }),
            map.end());
  log_pin_map_once(plan.mode, map);
  return map;
}

std::vector<PinnedThread> pin_openmp_team() {
  return pin_openmp_team(resolve_pin_mode());
}

}  // namespace eimm
