// Cache-line constants, padded wrappers, and aligned heap allocation.
//
// The paper's Algorithm 2 relies on fine-grained 64-bit atomic increments;
// the *supporting* per-thread metadata (regional maxima, work-queue heads)
// must not false-share, hence CachePadded<T>.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace eimm {

/// Size of a destructive-interference region. 64 bytes on x86-64.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that distinct array elements live on distinct cache lines.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};
  CachePadded() = default;
  explicit CachePadded(const T& v) : value(v) {}
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// Allocates `bytes` bytes aligned to `alignment` (a power of two).
/// Returns nullptr on failure. Free with aligned_free.
void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment);

/// Frees memory obtained from aligned_alloc_bytes.
void aligned_free(void* p) noexcept;

/// Deleter for unique_ptr over aligned allocations.
struct AlignedDeleter {
  void operator()(void* p) const noexcept { aligned_free(p); }
};

/// Allocates a cache-line-aligned, default-initialized array of T.
template <typename T>
std::unique_ptr<T[], AlignedDeleter> make_aligned_array(std::size_t n) {
  void* p = aligned_alloc_bytes(n * sizeof(T), kCacheLineSize);
  if (p == nullptr) throw std::bad_alloc{};
  return std::unique_ptr<T[], AlignedDeleter>(new (p) T[n]{});
}

}  // namespace eimm
