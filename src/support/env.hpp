// Typed environment-variable lookup used by the bench harnesses
// (EIMM_SCALE, EIMM_THREADS, ...) so every binary honours the same knobs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace eimm {

/// Raw lookup; nullopt when unset.
std::optional<std::string> env_string(const char* name);

/// Integer lookup; returns fallback when unset or unparseable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Double lookup; returns fallback when unset or unparseable.
double env_double(const char* name, double fallback);

/// Boolean lookup: "1", "true", "yes", "on" are true (case-insensitive);
/// "0", "false", "no", "off" are false; anything else -> fallback.
bool env_bool(const char* name, bool fallback);

}  // namespace eimm
