// Snapshot round-trip and io/binary error-path coverage for the
// sketch-store format: a snapshot built once must be loadable by another
// process bit-for-bit, and every malformed input must fail with a clear
// CheckError instead of UB (the suite runs under the asan preset in CI).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/binary.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

SketchStore make_store() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 4096;
  return SketchStore::build(g, options, "amazon-snapshot");
}

TEST(SketchSnapshot, SaveLoadSaveIsBitIdentical) {
  const SketchStore store = make_store();
  std::stringstream first;
  store.save(first);
  const SketchStore loaded = SketchStore::load(first);
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_TRUE(store == loaded);
}

TEST(SketchSnapshot, LoadedStoreAnswersIdenticallyToInMemory) {
  const SketchStore store = make_store();
  std::stringstream ss;
  store.save(ss);
  const SketchStore loaded = SketchStore::load(ss);

  const QueryEngine in_memory(store);
  const QueryEngine from_snapshot(loaded);

  EXPECT_EQ(from_snapshot.top_k(6).seeds, in_memory.top_k(6).seeds);

  QueryOptions constrained;
  constrained.k = 4;
  constrained.forbidden = {in_memory.top_k(1).seeds[0]};
  const QueryResult a = in_memory.select(constrained);
  const QueryResult b = from_snapshot.select(constrained);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.marginal_coverage, b.marginal_coverage);
  EXPECT_EQ(a.covered_sketches, b.covered_sketches);

  const std::vector<VertexId> eval_seeds = {1, 2, 3};
  EXPECT_EQ(in_memory.evaluate(eval_seeds).covered_sketches,
            from_snapshot.evaluate(eval_seeds).covered_sketches);
}

TEST(SketchSnapshot, FileRoundTrip) {
  const SketchStore store = make_store();
  const std::string path = ::testing::TempDir() + "/eimm_store_roundtrip.sks";
  store.save_file(path);
  const SketchStore loaded = SketchStore::load_file(path);
  EXPECT_TRUE(store == loaded);
}

TEST(SketchSnapshot, MissingFileThrows) {
  EXPECT_THROW(SketchStore::load_file("/nonexistent/store.sks"), CheckError);
}

TEST(SketchSnapshot, ZeroLengthFileThrows) {
  std::stringstream empty;
  EXPECT_THROW(SketchStore::load(empty), CheckError);

  const std::string path = ::testing::TempDir() + "/eimm_store_empty.sks";
  std::ofstream(path, std::ios::binary).close();
  EXPECT_THROW(SketchStore::load_file(path), CheckError);
}

TEST(SketchSnapshot, BadMagicThrows) {
  std::stringstream ss("not a sketch store at all, sorry");
  EXPECT_THROW(SketchStore::load(ss), CheckError);

  // A valid header of the WRONG format must be rejected too.
  std::stringstream csr_like;
  csr_like << "EIMMCSR" << '\0' << "garbagegarbage";
  EXPECT_THROW(SketchStore::load(csr_like), CheckError);
}

TEST(SketchSnapshot, BadVersionThrows) {
  const SketchStore store = make_store();
  std::stringstream ss;
  store.save(ss);
  std::string data = ss.str();
  data[8] = 99;  // version u32 lives right after the 8-byte magic
  std::stringstream patched(data);
  try {
    SketchStore::load(patched);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SketchSnapshot, TruncationAtEveryRegionThrows) {
  const SketchStore store = make_store();
  std::stringstream ss;
  store.save(ss);
  const std::string data = ss.str();
  ASSERT_GT(data.size(), 64u);
  // Chop at a spread of points: header, meta, every array region.
  for (const double fraction : {0.1, 0.25, 0.5, 0.75, 0.99}) {
    std::string cut = data.substr(
        0, static_cast<std::size_t>(static_cast<double>(data.size()) *
                                    fraction));
    std::stringstream truncated(std::move(cut));
    EXPECT_THROW(SketchStore::load(truncated), CheckError)
        << "fraction " << fraction;
  }
}

TEST(SketchSnapshot, DuplicateSketchMembersThrow) {
  // A hand-crafted snapshot whose single sketch lists vertex 1 twice:
  // offsets and ranges all validate, but the duplicate would double-count
  // coverage — load must reject the non-ascending run.
  std::stringstream ss;
  bin::write_header(ss, "EIMMSKS", 1);
  bin::write_pod(ss, VertexId{2});
  bin::write_pod(ss, std::uint64_t{1});  // num_sketches
  bin::write_pod(ss, std::uint64_t{1});  // k_max
  bin::write_string(ss, "crafted");
  bin::write_string(ss, "IC");
  bin::write_pod(ss, std::uint64_t{0});  // rng_seed
  bin::write_pod(ss, double{0.5});       // epsilon
  bin::write_pod(ss, std::uint64_t{1});  // theta
  bin::write_pod(ss, std::uint8_t{0});   // theta_capped
  bin::write_vec(ss, std::vector<std::uint64_t>{0, 2});
  bin::write_vec(ss, std::vector<VertexId>{1, 1});
  EXPECT_THROW(SketchStore::load(ss), CheckError);
}

TEST(SketchSnapshot, CorruptedStructureThrows) {
  const SketchStore store = make_store();
  std::stringstream ss;
  store.save(ss);
  std::string data = ss.str();
  // num_vertices (u32) sits immediately after the 12-byte header; zeroing
  // it makes the payload structurally inconsistent.
  data[12] = data[13] = data[14] = data[15] = 0;
  std::stringstream corrupted(data);
  EXPECT_THROW(SketchStore::load(corrupted), CheckError);
}

}  // namespace
}  // namespace eimm
