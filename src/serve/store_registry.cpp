#include "serve/store_registry.hpp"

#include <utility>

#include "support/failpoint.hpp"
#include "support/log.hpp"

namespace eimm {

StoreRegistry::StoreRegistry(std::shared_ptr<const SketchStore> store,
                             ExecutorOptions exec_options)
    : exec_options_(exec_options) {
  EIMM_CHECK(store != nullptr, "registry needs a store");
  current_ = std::make_shared<ServingEpoch>(next_generation_++,
                                            std::move(store), exec_options_);
}

StoreRegistry::~StoreRegistry() { shutdown(); }

std::shared_ptr<ServingEpoch> StoreRegistry::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<ServingEpoch> StoreRegistry::swap_in(
    std::shared_ptr<const SketchStore> store) {
  // Build the ENTIRE replacement epoch before taking the publish lock:
  // engine construction verifies checksums and the executor spins up a
  // dispatcher — none of that may block concurrent current() readers,
  // and a throw here leaves the old epoch untouched.
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    gen = next_generation_++;
  }
  auto fresh =
      std::make_shared<ServingEpoch>(gen, std::move(store), exec_options_);
  std::shared_ptr<ServingEpoch> retired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retired = std::exchange(current_, fresh);
  }
  // `retired` drops here; if in-flight requests still hold references
  // the epoch lives on until the last of them finishes, then its
  // executor drains and joins in that thread. No query ever observes a
  // half-swapped registry.
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return fresh;
}

std::shared_ptr<ServingEpoch> StoreRegistry::reload_store(
    std::shared_ptr<const SketchStore> store) {
  EIMM_CHECK(store != nullptr, "cannot reload a null store");
  try {
    return swap_in(std::move(store));
  } catch (...) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

std::shared_ptr<ServingEpoch> StoreRegistry::reload_file(
    const std::string& path, SnapshotLoadOptions load) {
  try {
    if (fail::inject("serve.reload")) {
      throw CheckError("injected truncated snapshot read for '" + path + "'");
    }
    // Verify checksums during the load: a corrupt snapshot must be
    // rejected before the swap, not at first query of the new epoch.
    if (load.checksums == ChecksumMode::kLazy) {
      load.checksums = ChecksumMode::kEager;
    }
    auto store = std::make_shared<SketchStore>(
        SketchStore::load_file(path, load));
    auto epoch = swap_in(std::move(store));
    EIMM_LOG_INFO << "serve: reloaded snapshot '" << path
                  << "' as generation " << epoch->generation;
    return epoch;
  } catch (...) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

void StoreRegistry::shutdown() {
  std::shared_ptr<ServingEpoch> epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = current_;
  }
  if (epoch) epoch->executor.stop();
}

std::uint64_t StoreRegistry::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ ? current_->generation : 0;
}

}  // namespace eimm
