// serve_latency — request-latency percentiles vs offered load, through
// the sketch_server admission/batching layer, for mmap- vs stream-loaded
// snapshots.
//
// Builds a store once, saves a v2 snapshot, then for each load mode:
//   1. cold-start: time load_file() (best of EIMM_BENCH_REPS) and record
//      the SnapshotLoadStats byte accounting — the mmap row must show
//      bytes_copied == 0 (the zero-copy acceptance counter) and a
//      cold start independent of the pool size;
//   2. seed equality: the loaded store's default sequence must match the
//      in-memory build exactly (the bench FAILS otherwise — a load path
//      that serves different seeds is a bug, not a data point);
//   3. latency sweep: an open-loop Poisson-less (fixed-interval) arrival
//      schedule at each offered QPS, fanned over a client thread pool,
//      every request submitted through a BatchingExecutor exactly like
//      sketch_server's connections do. Reports p50/p99 of the
//      submit→result latency, achieved QPS, timeouts and cache hits.
//
// Emits BENCH_serve_latency.json via io/json_log.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_SERVE_WORKLOAD  store workload (default com-Amazon)
//   EIMM_LAT_QPS         comma-separated offered-QPS sweep
//                        (default "50,200,800")
//   EIMM_LAT_SECONDS     seconds per QPS point (default 2)
//   EIMM_LAT_CLIENTS     client threads (default 16)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "io/json_log.hpp"
#include "serve/server.hpp"
#include "serve/sketch_store.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"

using namespace eimm;
using namespace eimm::bench;

namespace {

std::vector<double> parse_qps_list(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (!token.empty()) out.push_back(std::atof(token.c_str()));
    pos = comma + 1;
  }
  return out;
}

/// Same serving mix as serve_throughput, cycling a bounded set of
/// constrained variants so the hot-query cache sees repeats (as real
/// serving traffic does).
std::vector<QueryOptions> make_query_mix(const SketchStore& store,
                                         std::size_t count) {
  const std::span<const VertexId> defaults = store.default_seeds();
  std::vector<QueryOptions> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryOptions& q = queries[i];
    q.k = 1 + (i % store.k_max());
    if (i % 4 == 1 && !defaults.empty()) {
      // 8 distinct blacklist variants — enough to exercise the kernel,
      // few enough that the LRU cache converts the tail into hits.
      const std::size_t banned = 1 + (i % std::min<std::size_t>(
                                              8, defaults.size()));
      q.k = 1 + (banned % store.k_max());
      q.forbidden.assign(
          defaults.begin(),
          defaults.begin() + static_cast<std::ptrdiff_t>(banned));
    }
  }
  return queries;
}

struct SweepPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t cache_hits = 0;
};

/// Open-loop fixed-interval arrivals at `offered_qps` for `seconds`,
/// split round-robin over `clients` threads. Each client sleeps until
/// its next scheduled arrival, submits, and blocks on the future (so a
/// slow kernel shows up as LATENCY, while the arrival clock keeps
/// running — the open-loop property that makes overload visible).
SweepPoint run_sweep_point(const QueryEngine& engine,
                           const std::vector<QueryOptions>& mix,
                           double offered_qps, double seconds, int clients) {
  ExecutorOptions exec_options;
  BatchingExecutor executor(engine, exec_options);
  const auto total = static_cast<std::size_t>(offered_qps * seconds);
  const std::chrono::duration<double> interval(1.0 / offered_qps);
  const std::chrono::milliseconds timeout(2000);

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> timeouts{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      for (std::size_t i = static_cast<std::size_t>(c); i < total;
           i += static_cast<std::size_t>(clients)) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(i)));
        const auto submitted = std::chrono::steady_clock::now();
        try {
          std::future<QueryResult> f =
              executor.submit(mix[i % mix.size()]);
          if (f.wait_for(timeout) != std::future_status::ready) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          (void)f.get();
          const std::chrono::duration<double, std::milli> ms =
              std::chrono::steady_clock::now() - submitted;
          mine.push_back(ms.count());
        } catch (const OverloadError&) {
          timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  executor.stop();

  std::vector<double> all;
  for (const auto& part : latencies) {
    all.insert(all.end(), part.begin(), part.end());
  }
  SweepPoint point;
  point.offered_qps = offered_qps;
  point.requests = total;
  point.timeouts = timeouts.load();
  point.cache_hits = executor.stats().cache_hits;
  point.achieved_qps = wall.count() > 0
                           ? static_cast<double>(all.size()) / wall.count()
                           : 0.0;
  if (!all.empty()) {
    const auto p50 = all.begin() + static_cast<std::ptrdiff_t>(
                                       (all.size() - 1) / 2);
    std::nth_element(all.begin(), p50, all.end());
    point.p50_ms = *p50;
    const auto p99 = all.begin() + static_cast<std::ptrdiff_t>(
                                       (all.size() - 1) * 99 / 100);
    std::nth_element(all.begin(), p99, all.end());
    point.p99_ms = *p99;
  }
  return point;
}

}  // namespace

int main() {
  const BenchConfig config = load_config();
  print_banner("serve_latency — snapshot load modes + serving latency",
               config);

  const std::string workload =
      env_string("EIMM_SERVE_WORKLOAD").value_or("com-Amazon");
  const std::vector<double> qps_sweep = parse_qps_list(
      env_string("EIMM_LAT_QPS").value_or("50,200,800"));
  const double seconds = env_double("EIMM_LAT_SECONDS", 2.0);
  const int clients = static_cast<int>(env_int("EIMM_LAT_CLIENTS", 16));

  const DiffusionGraph graph =
      load_workload(config, workload, DiffusionModel::kIndependentCascade);
  const ImmOptions options = imm_options(
      config, DiffusionModel::kIndependentCascade, config.max_threads);
  const SketchStore built = SketchStore::build(graph, options, workload);

  const std::string snapshot =
      (std::filesystem::temp_directory_path() /
       ("eimm_latency_" + std::to_string(::getpid()) + ".sks"))
          .string();
  built.save_file(snapshot);
  std::printf("store: %s |V|=%u sketches=%llu — snapshot %s\n\n",
              workload.c_str(), built.num_vertices(),
              static_cast<unsigned long long>(built.num_sketches()),
              snapshot.c_str());

  std::vector<LatencyBenchResult> rows;
  int failures = 0;
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kMap, SnapshotLoadMode::kStream}) {
    const char* mode_name =
        mode == SnapshotLoadMode::kMap ? "mmap" : "stream";
    SnapshotLoadOptions load_options;
    load_options.mode = mode;

    const double cold = best_seconds(config.reps, [&] {
      Timer timer;
      const SketchStore reloaded = SketchStore::load_file(snapshot,
                                                          load_options);
      return reloaded.num_sketches() == built.num_sketches()
                 ? timer.seconds()
                 : timer.seconds() + 1e9;
    });
    const SketchStore store = SketchStore::load_file(snapshot, load_options);
    const SnapshotLoadStats& stats = store.load_stats();
    std::printf("%s: cold start %.4fs, %.1f MiB mapped, %.1f MiB copied\n",
                mode_name, cold,
                static_cast<double>(stats.bytes_mapped) / (1024.0 * 1024.0),
                static_cast<double>(stats.bytes_copied) / (1024.0 * 1024.0));

    // A load path that serves different seeds is a correctness bug; the
    // bench fails loudly rather than reporting its latency.
    if (!std::ranges::equal(store.default_seeds(), built.default_seeds()) ||
        !(store == built)) {
      std::fprintf(stderr,
                   "FAIL: %s-loaded store disagrees with the build\n",
                   mode_name);
      ++failures;
      continue;
    }
    if (mode == SnapshotLoadMode::kMap && stats.bytes_copied != 0) {
      std::fprintf(stderr,
                   "FAIL: mmap load copied %llu bytes (expected 0)\n",
                   static_cast<unsigned long long>(stats.bytes_copied));
      ++failures;
      continue;
    }

    const QueryEngine engine(store);
    const std::vector<QueryOptions> mix = make_query_mix(store, 256);
    std::printf("%8s %12s %10s %10s %9s %9s %10s\n", "offered", "achieved",
                "p50 ms", "p99 ms", "requests", "timeouts", "cache hits");
    for (const double qps : qps_sweep) {
      if (qps <= 0) continue;
      const SweepPoint point =
          run_sweep_point(engine, mix, qps, seconds, clients);
      std::printf("%8.0f %12.1f %10.3f %10.3f %9llu %9llu %10llu\n",
                  point.offered_qps, point.achieved_qps, point.p50_ms,
                  point.p99_ms,
                  static_cast<unsigned long long>(point.requests),
                  static_cast<unsigned long long>(point.timeouts),
                  static_cast<unsigned long long>(point.cache_hits));

      LatencyBenchResult row;
      row.workload = workload;
      row.load_mode = mode_name;
      row.cold_start_seconds = cold;
      row.bytes_mapped = stats.bytes_mapped;
      row.bytes_copied = stats.bytes_copied;
      row.offered_qps = point.offered_qps;
      row.achieved_qps = point.achieved_qps;
      row.p50_ms = point.p50_ms;
      row.p99_ms = point.p99_ms;
      row.requests = point.requests;
      row.timeouts = point.timeouts;
      row.cache_hits = point.cache_hits;
      rows.push_back(row);
    }
    std::printf("\n");
  }

  std::filesystem::remove(snapshot);
  const std::string path = write_latency_bench_json_file(
      bench_json_path("BENCH_serve_latency.json"), rows);
  std::printf("results: %s\n", path.c_str());
  return failures == 0 ? 0 : 1;
}
