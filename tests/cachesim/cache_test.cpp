#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/macros.hpp"

namespace eimm {
namespace {

// Tiny deterministic hierarchy: L1 = 4 sets x 2 ways x 64B = 512B,
// L2 = 16 sets x 2 ways x 64B = 2KiB.
CacheConfig tiny_config() {
  CacheConfig c;
  c.l1 = {512, 2, 64};
  c.l2 = {2048, 2, 64};
  return c;
}

TEST(CacheLevel, HitAfterMiss) {
  CacheLevel level({512, 2, 64});
  EXPECT_FALSE(level.access_line(5));  // cold miss
  EXPECT_TRUE(level.access_line(5));   // now resident
}

TEST(CacheLevel, LruEvictionWithinSet) {
  CacheLevel level({512, 2, 64});  // 4 sets, 2 ways
  // Lines 0, 4, 8 all map to set 0 (line % 4 == 0). Two fit; three thrash.
  EXPECT_FALSE(level.access_line(0));
  EXPECT_FALSE(level.access_line(4));
  EXPECT_TRUE(level.access_line(0));   // still resident, refreshes LRU
  EXPECT_FALSE(level.access_line(8));  // evicts 4 (LRU)
  EXPECT_TRUE(level.access_line(0));
  EXPECT_FALSE(level.access_line(4));  // was evicted
}

TEST(CacheLevel, DifferentSetsDoNotConflict) {
  CacheLevel level({512, 2, 64});
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_FALSE(level.access_line(line));  // 4 sets x 2 ways: all fit
  }
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_TRUE(level.access_line(line));
  }
}

TEST(CacheLevel, ResetForgetsEverything) {
  CacheLevel level({512, 2, 64});
  level.access_line(3);
  level.reset();
  EXPECT_FALSE(level.access_line(3));
}

TEST(CacheLevel, ConfigValidation) {
  EXPECT_THROW(CacheLevel({512, 2, 48}), CheckError);   // non-pow2 line
  EXPECT_THROW(CacheLevel({512, 0, 64}), CheckError);   // zero ways
  EXPECT_THROW(CacheLevel({64, 2, 64}), CheckError);    // < one set
}

TEST(CacheHierarchy, RepeatedAccessHitsL1) {
  CacheHierarchy h(tiny_config());
  int x = 0;
  h.access(&x, sizeof x);
  h.access(&x, sizeof x);
  h.access(&x, sizeof x);
  EXPECT_EQ(h.stats().accesses, 3u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
  EXPECT_EQ(h.stats().l2_misses, 1u);
}

TEST(CacheHierarchy, StreamingLargerThanCacheMissesEverywhere) {
  CacheHierarchy h(tiny_config());
  std::vector<char> buffer(64 * 1024);
  // One pass: all cold misses.
  for (std::size_t i = 0; i < buffer.size(); i += 64) {
    h.access(buffer.data() + i, 1);
  }
  const auto first_pass = h.stats();
  EXPECT_EQ(first_pass.l1_misses, first_pass.accesses);
  EXPECT_EQ(first_pass.l2_misses, first_pass.accesses);
  // Second pass: working set (64 KiB) exceeds both levels: still misses.
  for (std::size_t i = 0; i < buffer.size(); i += 64) {
    h.access(buffer.data() + i, 1);
  }
  EXPECT_EQ(h.stats().l1_misses, h.stats().accesses);
}

TEST(CacheHierarchy, L2CatchesL1CapacityMisses) {
  CacheHierarchy h(tiny_config());
  std::vector<char> buffer(1024);  // fits L2 (2KiB), exceeds L1 (512B)
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < buffer.size(); i += 64) {
      h.access(buffer.data() + i, 1);
    }
  }
  const auto s = h.stats();
  // Second pass misses L1 (capacity) but hits L2.
  EXPECT_GT(s.l1_misses, s.l2_misses);
  EXPECT_EQ(s.l2_misses, 16u);  // only the 16 cold misses
}

TEST(CacheHierarchy, MultiLineAccessTouchesEachLine) {
  CacheHierarchy h(tiny_config());
  alignas(64) char big[256];
  h.access(big, sizeof big);  // spans 4 lines
  EXPECT_EQ(h.stats().accesses, 4u);
}

TEST(CacheHierarchy, ZeroByteAccessCountsOnce) {
  CacheHierarchy h(tiny_config());
  int x;
  h.access(&x, 0);
  EXPECT_EQ(h.stats().accesses, 1u);
}

TEST(CacheHierarchy, ResetClearsStats) {
  CacheHierarchy h(tiny_config());
  int x = 0;
  h.access(&x, sizeof x);
  h.reset();
  EXPECT_EQ(h.stats().accesses, 0u);
  EXPECT_EQ(h.stats().l1_plus_l2_misses(), 0u);
}

TEST(CacheStats, Accumulation) {
  CacheStats a{10, 5, 2};
  const CacheStats b{1, 1, 1};
  a += b;
  EXPECT_EQ(a.accesses, 11u);
  EXPECT_EQ(a.l1_misses, 6u);
  EXPECT_EQ(a.l2_misses, 3u);
  EXPECT_EQ(a.l1_plus_l2_misses(), 9u);
}

TEST(CacheHierarchy, MismatchedLineSizesRejected) {
  CacheConfig c;
  c.l1 = {512, 2, 64};
  c.l2 = {2048, 2, 128};
  EXPECT_THROW(CacheHierarchy h(c), CheckError);
}

}  // namespace
}  // namespace eimm
