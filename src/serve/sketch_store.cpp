#include "serve/sketch_store.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <utility>

#include "diffusion/model.hpp"
#include "io/binary.hpp"
#include "runtime/thread_info.hpp"
#include "serve/query_engine.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

constexpr std::string_view kSnapshotMagic = "EIMMSKS";
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr const char* kSnapshotWhat = "sketch-store snapshot";

}  // namespace

SketchStore SketchStore::build(const DiffusionGraph& graph,
                               const ImmOptions& options,
                               std::string workload_label) {
  PoolBuild pool_build = build_rrr_pool(graph, options, Engine::kEfficient);

  SketchStoreMeta meta;
  meta.workload = std::move(workload_label);
  meta.model = std::string(to_string(options.model));
  meta.rng_seed = options.rng_seed;
  meta.epsilon = options.epsilon;
  meta.theta = pool_build.theta;
  meta.theta_capped = pool_build.theta_capped;
  // Freezing (flatten + index build + default sequence) honours the same
  // thread cap as the sampling phase.
  ThreadCountScope thread_scope(options.threads);
  return from_pool(pool_build.pool, options.k, std::move(meta));
}

SketchStore SketchStore::from_pool(const RRRPool& pool, std::size_t k_max,
                                   SketchStoreMeta meta) {
  EIMM_CHECK(pool.num_vertices() > 0, "cannot freeze a zero-vertex pool");
  EIMM_CHECK(k_max > 0, "build-time query cap must be positive");
  EIMM_CHECK(pool.size() <
                 std::numeric_limits<SketchId>::max(),
             "pool too large for 32-bit sketch ids");

  SketchStore store;
  store.num_vertices_ = pool.num_vertices();
  store.num_sketches_ = pool.size();
  // Greedy selection can never return more than |V| seeds, so a cap
  // above that is meaningless — clamping keeps k_max ≤ |V| a snapshot
  // invariant load() can enforce against corrupt files.
  store.k_max_ = std::min<std::uint64_t>(k_max, pool.num_vertices());
  store.meta_ = std::move(meta);

  FlatPool flat = pool.flatten();
  store.sketch_offsets_ = std::move(flat.offsets);
  store.sketch_vertices_ = std::move(flat.vertices);
  store.finalize();
  return store;
}

void SketchStore::finalize() {
  // Inverted index by counting sort: degree histogram → prefix sum →
  // fill in sketch order, which leaves each vertex's covering list
  // sorted by sketch id. Derived deterministically from the sketch CSR
  // both at build and at load — the snapshot never carries it, so the
  // two indexes cannot disagree no matter what the file contains.
  const VertexId n = num_vertices_;
  node_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const VertexId v : sketch_vertices_) {
    ++node_offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    node_offsets_[v + 1] += node_offsets_[v];
  }
  node_sketches_.resize(sketch_vertices_.size());
  std::vector<std::uint64_t> cursor(node_offsets_.begin(),
                                    node_offsets_.end() - 1);
  for (std::uint64_t s = 0; s < num_sketches_; ++s) {
    for (std::uint64_t i = sketch_offsets_[s]; i < sketch_offsets_[s + 1];
         ++i) {
      node_sketches_[cursor[sketch_vertices_[i]]++] =
          static_cast<SketchId>(s);
    }
  }

  // Precompute the unconstrained greedy sequence once; top-k queries for
  // any k ≤ k_max become prefix reads. Uses the same kernel select()
  // runs, so the cached and live paths cannot drift apart.
  QueryOptions defaults;
  defaults.k = k_max_;
  QueryResult seq = run_query(*this, defaults);
  default_seeds_ = std::move(seq.seeds);
  default_marginals_ = std::move(seq.marginal_coverage);
}

std::uint64_t SketchStore::memory_bytes() const noexcept {
  return sketch_offsets_.capacity() * sizeof(std::uint64_t) +
         sketch_vertices_.capacity() * sizeof(VertexId) +
         node_offsets_.capacity() * sizeof(std::uint64_t) +
         node_sketches_.capacity() * sizeof(SketchId) +
         default_seeds_.capacity() * sizeof(VertexId) +
         default_marginals_.capacity() * sizeof(std::uint64_t);
}

void SketchStore::save(std::ostream& os) const {
  bin::write_header(os, kSnapshotMagic, kSnapshotVersion);
  bin::write_pod(os, num_vertices_);
  bin::write_pod(os, num_sketches_);
  bin::write_pod(os, k_max_);
  bin::write_string(os, meta_.workload);
  bin::write_string(os, meta_.model);
  bin::write_pod(os, meta_.rng_seed);
  bin::write_pod(os, meta_.epsilon);
  bin::write_pod(os, meta_.theta);
  bin::write_pod(os, static_cast<std::uint8_t>(meta_.theta_capped ? 1 : 0));
  // Primary data only: the inverted index and the default greedy
  // sequence are recomputed by load(), so no snapshot corruption can
  // make the derived state disagree with the sketches.
  bin::write_vec(os, sketch_offsets_);
  bin::write_vec(os, sketch_vertices_);
}

void SketchStore::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  EIMM_CHECK(os.good(), "cannot open snapshot file for writing");
  save(os);
  EIMM_CHECK(os.good(), "snapshot write failed");
}

SketchStore SketchStore::load(std::istream& is) {
  bin::read_header(is, kSnapshotMagic, kSnapshotVersion, kSnapshotWhat);

  SketchStore store;
  bin::read_pod(is, store.num_vertices_, kSnapshotWhat);
  bin::read_pod(is, store.num_sketches_, kSnapshotWhat);
  bin::read_pod(is, store.k_max_, kSnapshotWhat);
  store.meta_.workload = bin::read_string(is, kSnapshotWhat);
  store.meta_.model = bin::read_string(is, kSnapshotWhat);
  bin::read_pod(is, store.meta_.rng_seed, kSnapshotWhat);
  bin::read_pod(is, store.meta_.epsilon, kSnapshotWhat);
  bin::read_pod(is, store.meta_.theta, kSnapshotWhat);
  std::uint8_t capped = 0;
  bin::read_pod(is, capped, kSnapshotWhat);
  store.meta_.theta_capped = capped != 0;
  store.sketch_offsets_ = bin::read_vec<std::uint64_t>(is, kSnapshotWhat);
  store.sketch_vertices_ = bin::read_vec<VertexId>(is, kSnapshotWhat);

  // Structural validation of the primary data: a malformed snapshot must
  // fail loudly here, not as UB inside a query. Everything derived (the
  // inverted index, the default sequence) is rebuilt below from the
  // validated arrays, so no cross-index inconsistency can survive.
  EIMM_CHECK(store.num_vertices_ > 0, "snapshot holds a zero-vertex store");
  EIMM_CHECK(store.k_max_ > 0, "snapshot holds a zero query cap");
  EIMM_CHECK(store.k_max_ <= store.num_vertices_,
             "snapshot query cap exceeds the vertex count");
  EIMM_CHECK(store.num_sketches_ <
                 std::numeric_limits<SketchId>::max(),
             "snapshot sketch count overflows 32-bit sketch ids");
  EIMM_CHECK(store.sketch_offsets_.size() == store.num_sketches_ + 1,
             "snapshot sketch offsets inconsistent with sketch count");
  EIMM_CHECK(store.sketch_offsets_.front() == 0 &&
                 store.sketch_offsets_.back() ==
                     store.sketch_vertices_.size(),
             "snapshot sketch offsets do not span the vertex payload");
  for (std::size_t i = 1; i < store.sketch_offsets_.size(); ++i) {
    EIMM_CHECK(store.sketch_offsets_[i] >= store.sketch_offsets_[i - 1],
               "snapshot sketch offsets decrease");
  }
  for (std::uint64_t s = 0; s < store.num_sketches_; ++s) {
    for (std::uint64_t i = store.sketch_offsets_[s];
         i < store.sketch_offsets_[s + 1]; ++i) {
      EIMM_CHECK(store.sketch_vertices_[i] < store.num_vertices_,
                 "snapshot sketch member out of range");
      // Strictly ascending runs are the sketch() contract — and rule out
      // duplicate members, which would double-count coverage.
      EIMM_CHECK(i == store.sketch_offsets_[s] ||
                     store.sketch_vertices_[i - 1] < store.sketch_vertices_[i],
                 "snapshot sketch members not strictly ascending");
    }
  }
  try {
    store.finalize();
  } catch (const std::bad_alloc&) {
    // A corrupt num_vertices field can pass the structural checks (no
    // members need exist to exceed it) yet demand an absurd index
    // allocation — keep the fail-loudly contract.
    EIMM_CHECK(false, "snapshot vertex count implausibly large");
  }
  return store;
}

SketchStore SketchStore::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EIMM_CHECK(is.good(), "cannot open snapshot file");
  return load(is);
}

}  // namespace eimm
