// Deterministic synthetic graph generators.
//
// The paper evaluates on eight SNAP datasets that cannot be shipped with
// the repository; src/workloads maps each of them onto one of these
// families with parameters chosen to land in the same RRR-coverage regime
// (see DESIGN.md §2). Every generator is deterministic in (params, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace eimm {

/// G(n, m): n vertices, m directed edges sampled uniformly (self loops
/// and duplicates removed afterwards, so the final count can be slightly
/// lower than m).
std::vector<WeightedEdge> gen_erdos_renyi(VertexId n, EdgeId m,
                                          std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `edges_per_vertex` undirected edges to existing vertices with
/// probability proportional to degree. Produces the heavy-tailed degree
/// distribution typical of social graphs (YouTube/DBLP analogues).
std::vector<WeightedEdge> gen_barabasi_albert(VertexId n,
                                              VertexId edges_per_vertex,
                                              std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbors per side and
/// rewiring probability beta. High clustering, moderate SCC (Amazon-like
/// co-purchase analogue).
std::vector<WeightedEdge> gen_watts_strogatz(VertexId n, VertexId k,
                                             double beta, std::uint64_t seed);

/// R-MAT (Chakrabarti et al.): 2^scale vertices, edge_factor*2^scale
/// directed edges, recursive quadrant probabilities (a, b, c, d).
/// Kronecker-style skew; a=0.57,b=0.19,c=0.19,d=0.05 matches Graph500 and
/// approximates LiveJournal/Pokec/Twitter-like structure.
struct RmatParams {
  unsigned scale = 16;
  EdgeId edge_factor = 16;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
};
std::vector<WeightedEdge> gen_rmat(const RmatParams& params,
                                   std::uint64_t seed);

/// 2-D grid (rows x cols) with 4-neighborhood, bidirectional edges, plus
/// `shortcuts` random long-range edges. Low connectivity and tiny reverse
/// reachability — the as-Skitter (road-network-like) analogue.
std::vector<WeightedEdge> gen_grid2d(VertexId rows, VertexId cols,
                                     EdgeId shortcuts, std::uint64_t seed);

/// Planted partition: `communities` equal-size groups; intra-community
/// edge probability derived from avg_in_degree, sparse random
/// inter-community edges. Community-structured analogue (DBLP-like).
std::vector<WeightedEdge> gen_planted_partition(VertexId n,
                                                VertexId communities,
                                                double avg_in_degree,
                                                double avg_out_degree,
                                                std::uint64_t seed);

// --- tiny deterministic shapes for unit tests ---

/// Directed star: hub 0 -> {1..n-1}.
std::vector<WeightedEdge> gen_star(VertexId n);
/// Directed path: 0 -> 1 -> ... -> n-1.
std::vector<WeightedEdge> gen_path(VertexId n);
/// Directed cycle: path plus n-1 -> 0.
std::vector<WeightedEdge> gen_cycle(VertexId n);
/// Complete directed graph (no self loops). Quadratic: test sizes only.
std::vector<WeightedEdge> gen_complete(VertexId n);

}  // namespace eimm
