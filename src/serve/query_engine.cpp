#include "serve/query_engine.hpp"

#include <omp.h>

#include <algorithm>
#include <exception>
#include <numeric>

#include "runtime/affinity.hpp"
#include "runtime/thread_info.hpp"
#include "runtime/work_queue.hpp"
#include "seedselect/engine.hpp"
#include "support/macros.hpp"

namespace eimm {

QueryResult run_query(const SketchStore& store, const QueryOptions& options) {
  // The live greedy kernel is owned by the SelectionEngine subsystem —
  // one place defines the tie-breaks for pool AND store selection, so
  // the serve path cannot drift from the seedselect kernels it is
  // cross-validated against.
  return select_from_store(store, options);
}

QueryResult QueryEngine::top_k(std::size_t k) const {
  EIMM_CHECK(k > 0, "query k must be positive");
  EIMM_CHECK(k <= store_->k_max(),
             "query k exceeds the store's build-time cap");
  const auto& seeds = store_->default_seeds();
  const auto& marginals = store_->default_marginals();
  const std::size_t count = std::min(k, seeds.size());

  QueryResult result;
  result.total_sketches = store_->num_sketches();
  result.seeds.assign(seeds.begin(), seeds.begin() + count);
  result.marginal_coverage.assign(marginals.begin(),
                                  marginals.begin() + count);
  result.covered_sketches = std::accumulate(
      result.marginal_coverage.begin(), result.marginal_coverage.end(),
      std::uint64_t{0});
  result.estimated_spread =
      static_cast<double>(store_->num_vertices()) *
      result.coverage_fraction();
  return result;
}

MarginalGainResult QueryEngine::evaluate(
    const std::vector<VertexId>& seeds) const {
  const VertexId n = store_->num_vertices();
  MarginalGainResult result;
  result.total_sketches = store_->num_sketches();
  std::vector<std::uint8_t> covered(store_->num_sketches(), 0);
  for (const VertexId v : seeds) {
    EIMM_CHECK(v < n, "seed vertex out of range");
    std::uint64_t gain = 0;
    for (const SketchId s : store_->covering(v)) {
      if (covered[s] == 0) {
        covered[s] = 1;
        ++gain;
      }
    }
    result.incremental_coverage.push_back(gain);
    result.covered_sketches += gain;
  }
  result.estimated_spread =
      static_cast<double>(n) * result.coverage_fraction();
  return result;
}

std::vector<QueryResult> QueryEngine::run_batch(
    const std::vector<QueryOptions>& queries, int threads) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;

  // Serial pre-validation: a malformed batch fails immediately on its
  // lowest invalid index, before any kernel work is spent.
  for (const QueryOptions& q : queries) validate_store_query(*store_, q);

  ThreadCountScope thread_scope(threads);
  const auto workers = static_cast<std::size_t>(omp_get_max_threads());
  // Pin the serving team the same way the selection engine pins its
  // workers (EIMM_PIN; no-op on single-node hosts): each query's scratch
  // counters then stay on the answering thread's own domain. Unlike the
  // compute phases, run_batch is called from arbitrary application
  // threads, so the CALLER's mask is restored on exit — a batch must
  // not permanently pin the thread that submitted it.
  ScopedAffinityRestore caller_mask;
  pin_openmp_team();
  // Batch size 1: queries are coarse-grained jobs, and constrained ones
  // cost far more than cached top-k reads — stealing evens that out.
  JobPool jobs(queries.size(), 1, workers);
  // Arguments were validated above, but an exception may still not cross
  // an OpenMP region boundary (that would std::terminate) — so any
  // unexpected failure (e.g. scratch allocation) is captured, remaining
  // queries are skipped (threads still drain the JobPool), and the
  // lowest captured index's error is rethrown.
  std::exception_ptr first_error = nullptr;
  std::size_t first_error_index = queries.size();
  std::atomic<bool> failed{false};
#pragma omp parallel
  {
    const auto wid = static_cast<std::size_t>(omp_get_thread_num());
    for (JobBatch batch = jobs.next(wid); !batch.empty();
         batch = jobs.next(wid)) {
      for (std::size_t i = batch.begin; i < batch.end; ++i) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
          results[i] = answer(queries[i]);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
#pragma omp critical(eimm_run_batch_error)
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return results;
}

}  // namespace eimm
