#include "graph/csr.hpp"

#include "support/macros.hpp"

namespace eimm {

CSRGraph::CSRGraph(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
                   std::vector<float> weights)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)) {
  EIMM_CHECK(!offsets_.empty(), "CSR offsets must have at least one entry");
  EIMM_CHECK(offsets_.front() == 0, "CSR offsets must start at 0");
  EIMM_CHECK(offsets_.back() == targets_.size(),
             "CSR offsets.back() must equal targets.size()");
  EIMM_CHECK(weights_.empty() || weights_.size() == targets_.size(),
             "weights must be empty or one per edge");
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    EIMM_CHECK(offsets_[i - 1] <= offsets_[i], "CSR offsets must be monotone");
  }
}

void CSRGraph::ensure_weights(float fill) {
  if (weights_.empty()) weights_.assign(targets_.size(), fill);
}

CSRGraph CSRGraph::transpose() const {
  const VertexId n = num_vertices();
  const EdgeId m = num_edges();
  std::vector<EdgeId> t_offsets(static_cast<std::size_t>(n) + 1, 0);
  // Count in-degrees.
  for (const VertexId dst : targets_) t_offsets[dst + 1]++;
  for (std::size_t i = 1; i < t_offsets.size(); ++i) t_offsets[i] += t_offsets[i - 1];

  std::vector<VertexId> t_targets(m);
  std::vector<float> t_weights(has_weights() ? m : 0);
  std::vector<EdgeId> cursor(t_offsets.begin(), t_offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    const EdgeId begin = offsets_[u];
    const EdgeId end = offsets_[u + 1];
    for (EdgeId e = begin; e < end; ++e) {
      const VertexId v = targets_[e];
      const EdgeId slot = cursor[v]++;
      t_targets[slot] = u;
      if (has_weights()) t_weights[slot] = weights_[e];
    }
  }
  return CSRGraph(std::move(t_offsets), std::move(t_targets),
                  std::move(t_weights));
}

std::uint64_t CSRGraph::memory_bytes() const noexcept {
  return offsets_.size() * sizeof(EdgeId) +
         targets_.size() * sizeof(VertexId) + weights_.size() * sizeof(float);
}

}  // namespace eimm
