// Distributed-extension bench (paper §VI future work): communication
// volume of the two MPI-style strategies over the simulated cluster.
//
//   counter-reduce  — EfficientIMM's partitioning: sketches stay where
//                     they were sampled; only counters move.
//   set-gather      — Ripples-MPI-style: all sketches move to rank 0.
//
// The paper argues EfficientIMM "doesn't introduce additional
// communication compared to Ripples' MPI implementation"; this bench
// shows the counter-reduce volume is independent of sketch size while
// set-gather scales with it.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "dist/imm.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Distributed extension: communication volume by strategy",
               config);

  for (const char* dataset : {"com-Amazon", "web-Google"}) {
    const DiffusionGraph graph = load_workload(
        config, dataset, DiffusionModel::kIndependentCascade);

    AsciiTable table({"Ranks", "counter-reduce bytes", "set-gather bytes",
                      "gather/reduce", "Seeds identical"});
    for (const int ranks : {2, 4, 8}) {
      DistImmOptions opt;
      opt.k = config.k;
      opt.epsilon = config.epsilon;
      opt.model = DiffusionModel::kIndependentCascade;
      opt.rng_seed = config.rng_seed;
      opt.ranks = ranks;
      opt.max_rrr_sets = config.max_rrr_sets;

      opt.strategy = DistStrategy::kCounterReduce;
      const DistImmResult reduce = run_distributed_imm(graph, opt);
      opt.strategy = DistStrategy::kSetGather;
      const DistImmResult gather = run_distributed_imm(graph, opt);

      table.new_row()
          .add(ranks)
          .add(format_bytes(reduce.comm.bytes_moved))
          .add(format_bytes(gather.comm.bytes_moved))
          .add(format_speedup(
              static_cast<double>(gather.comm.bytes_moved) /
                  static_cast<double>(
                      std::max<std::uint64_t>(1, reduce.comm.bytes_moved)),
              2))
          .add(reduce.seeds == gather.seeds ? "yes" : "NO");
    }
    table.set_title(std::string("Communication volume — ") + dataset +
                    " (IC)");
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: on dense-sketch inputs (com-Amazon: ~58%% coverage)\n"
      "gathering raw RRR sets moves several times more data than reducing\n"
      "counters — the distributed analogue of Challenge 1. On sparse-\n"
      "sketch inputs (web-Google: ~16%%) the flat per-round allreduce\n"
      "eventually crosses over as ranks grow; a production MPI port would\n"
      "ship sparse counter deltas to push that crossover out.\n");
  return 0;
}
