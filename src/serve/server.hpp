// sketch_server core — a long-lived serving layer over one frozen
// SketchStore.
//
// The paper's build/serve split stops one step short of a service: the
// CLI re-loads the snapshot per invocation. With v2 snapshots mmap'ed
// read-only, N server processes share one page-cache copy of the sketch
// data and cold-start in O(section table), so running the store as a
// daemon is finally cheaper than running it as a command. This header
// is that daemon, split into three independently testable layers:
//
//   wire        — a length-prefixed little-endian frame codec
//                 (WireWriter/WireReader over byte buffers; no sockets,
//                 so protocol tests run without any I/O).
//   BatchingExecutor — admission control + micro-batching over
//                 QueryEngine::run_batch. Clients submit single queries;
//                 a dispatcher thread coalesces whatever arrives within
//                 a small window (or up to max_batch) into one pinned
//                 OpenMP batch, amortizing the affinity save/restore and
//                 team spin-up that dominate singleton run_batch calls.
//                 Constrained results feed a QueryCache; repeat queries
//                 skip the kernel entirely.
//   SketchServer — the AF_UNIX socket front end: acceptor thread +
//                 thread-per-connection, length-prefixed frames, one
//                 request/response pair per frame, per-request timeout,
//                 graceful drain on shutdown.
//
// Protocol (all integers little-endian):
//   frame    := u32 payload_bytes, payload
//   request  := u8 verb, verb body
//   response := u8 status, status/verb body
//
//   verbs: Ping(0)      — empty; pong (empty kOk body)
//          TopK(1)      — u64 k
//          Select(2)    — u64 k, u32 ncand, u32[ncand], u32 nforb,
//                         u32[nforb]
//          Evaluate(3)  — u32 nseeds, u32[nseeds]
//          Batch(4)     — u32 nqueries, nqueries × Select body
//          Info(5)      — empty
//          Shutdown(6)  — empty; server drains and exits after replying
//          Stats(7)     — empty; live telemetry snapshot (body below)
//          Reload(8)    — string snapshot path (empty = the path the
//                         server was started from); atomically swaps in
//                         a freshly checksum-verified snapshot. On any
//                         load failure the old store keeps serving and
//                         the reply is kError.
//   status: kOk(0)         — verb-specific body below
//           kError(1)      — string (u64 length + bytes) diagnostic
//           kTimeout(2)    — string diagnostic (the query kept running;
//                            its result is discarded)
//           kOverloaded(3) — string diagnostic (admission queue full —
//                            the client should back off and retry)
//   kOk bodies: query result  := u32 nseeds, u32[nseeds] seeds,
//                                u64[nseeds] marginals, u64 covered,
//                                u64 total, f64 spread
//               batch         := u32 nresults, nresults × query result
//               evaluate      := u32 n, u64[n] incremental, u64 covered,
//                                u64 total, f64 spread
//               info          := u32 |V|, u64 sketches, u64 k_max,
//                                string workload, string model,
//                                u8 mmap_backed, u64 bytes_mapped,
//                                u64 bytes_copied, u64 generation
//               stats         := u64 requests, u64 timeouts,
//                                u64 submitted, u64 cache_hits,
//                                u64 rejected, u64 batches,
//                                u64 largest_batch, u64 qc_hits,
//                                u64 qc_misses, u64 qc_evictions,
//                                u64 qc_entries, u64 generation,
//                                u64 reloads, u64 failed_reloads,
//                                3 × histogram
//                                (queue wait µs, batch size, exec µs)
//               reload        := u64 generation, string path loaded
//               histogram     := u64 count, u64 sum, u32 nbuckets,
//                                nbuckets × u64 (log2 buckets; see
//                                obs::kHistogramBuckets layout)
//
// Fault tolerance: every failure a client can observe is typed. Server
// replies map to ServerOverloadedError / ServerTimeoutError (transient,
// safe to retry — the request was never executed or its result was
// discarded) or plain CheckError (permanent). Transport failures (EOF,
// short read, receive timeout) map to TransportError and reconnect.
// SketchClient retries transient failures with bounded exponential
// backoff + deterministic jitter under a caller-supplied deadline
// (RetryOptions); the default configuration (max_attempts = 1) performs
// no retries, preserving single-shot semantics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/executor.hpp"
#include "serve/query_cache.hpp"
#include "serve/query_engine.hpp"
#include "serve/store_registry.hpp"
#include "support/macros.hpp"

namespace eimm::wire {

enum class Verb : std::uint8_t {
  kPing = 0,
  kTopK = 1,
  kSelect = 2,
  kEvaluate = 3,
  kBatch = 4,
  kInfo = 5,
  kShutdown = 6,
  kStats = 7,
  kReload = 8,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,
  kTimeout = 2,
  kOverloaded = 3,
};

/// Frames larger than this are rejected on read — a corrupt or hostile
/// length prefix must not turn into a giant allocation.
constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

/// Append-only payload builder (the frame length prefix is written by
/// the transport, not the codec).
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void f64(double v) { pod(v); }
  void str(const std::string& s);
  void ids(std::span<const VertexId> v);     // u32 count + u32 ids
  void counts(std::span<const std::uint64_t> v);  // u64 values, NO count

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  template <typename T>
  void pod(const T& v) {
    const auto* raw = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), raw, raw + sizeof v);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader: every underrun (and trailing garbage,
/// via expect_done) throws CheckError, so a malformed frame becomes a
/// kError response instead of UB.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> payload)
      : payload_(payload) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<VertexId> ids();
  [[nodiscard]] std::vector<std::uint64_t> counts(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return payload_.size() - pos_;
  }
  /// Call after the last field: trailing bytes mean a protocol mismatch.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

/// Request/response payload helpers shared by server, client tool and
/// tests (one encoding, written once).
void encode_query(WireWriter& w, const QueryOptions& query);
[[nodiscard]] QueryOptions decode_query(WireReader& r);
void encode_result(WireWriter& w, const QueryResult& result);
[[nodiscard]] QueryResult decode_result(WireReader& r);
void encode_histogram(WireWriter& w, const obs::HistogramSnapshot& histogram);
[[nodiscard]] obs::HistogramSnapshot decode_histogram(WireReader& r);

}  // namespace eimm::wire

namespace eimm {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket (created on
  /// start(), unlinked on stop()).
  std::string socket_path;
  /// Reply deadline: a query not finished within this window gets a
  /// kTimeout response (the kernel run is not cancelled — its result is
  /// discarded).
  std::chrono::milliseconds request_timeout{2000};
  ExecutorOptions executor;
  /// Snapshot the server was started from; the default target of a
  /// kReload request with an empty path (and of SIGHUP-driven reloads).
  /// Empty = the server was constructed around an in-memory store and
  /// path-less reloads are rejected.
  std::string snapshot_path;
  /// Load options for reload targets (checksums are always forced to at
  /// least eager — a reload never swaps in unverified bytes).
  SnapshotLoadOptions reload_load;
};

/// The socket front end. One acceptor thread, one thread per
/// connection; all queries funnel through one BatchingExecutor, so
/// concurrent clients micro-batch into shared kernel dispatches.
class SketchServer {
 public:
  /// Non-owning: store must outlive the server (wrapped in a no-op
  /// deleter epoch — a later reload drops the reference without
  /// touching the caller's object).
  SketchServer(const SketchStore& store, ServerOptions options);
  /// Owning: the server (and any in-flight query) keeps the store alive
  /// through its serving epoch. The ctor required for hot reload.
  SketchServer(std::shared_ptr<const SketchStore> store,
               ServerOptions options);
  ~SketchServer();

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;

  /// Binds + listens + spawns the acceptor. Throws CheckError when the
  /// socket cannot be created (stale paths are unlinked first).
  void start();
  /// Initiates shutdown: stops accepting, shuts down live connections,
  /// drains admitted queries, joins all threads. Idempotent.
  void stop();
  /// Blocks until stop() completes (from any thread or a Shutdown verb).
  void wait();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  [[nodiscard]] BatchingExecutor::Stats executor_stats() const {
    return registry_.current()->executor.stats();
  }
  [[nodiscard]] QueryCache::Stats cache_stats() const {
    return registry_.current()->executor.cache_stats();
  }
  /// Requests served per verb, summed over all connections.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Requests answered with kTimeout, summed over all connections.
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return timeouts_.load(std::memory_order_relaxed);
  }

  /// Hot reload: atomically swaps in the snapshot at `path` (empty =
  /// options.snapshot_path). Checksum-verified before the swap; on
  /// failure the old store keeps serving and the exception propagates.
  /// Safe from any thread (the SIGHUP watcher calls this). Returns the
  /// new generation.
  std::uint64_t reload_from(const std::string& path = "");
  /// Generation of the currently serving epoch (starts at 1).
  [[nodiscard]] std::uint64_t generation() const {
    return registry_.generation();
  }
  [[nodiscard]] const StoreRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] std::vector<std::uint8_t> handle_request(
      std::span<const std::uint8_t> payload, bool& shutdown_requested);

  ServerOptions options_;
  StoreRegistry registry_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::thread acceptor_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::mutex stop_mutex_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

// --- Typed client-side failures ---

/// Base of every failure that is safe to retry: the request was never
/// executed, or its result was discarded server-side. Derives
/// CheckError so existing catch sites keep working.
class TransientError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// kOverloaded reply: admission queue full (or an injected rejection).
class ServerOverloadedError : public TransientError {
 public:
  using TransientError::TransientError;
};

/// kTimeout reply: the server discarded the result past its deadline.
class ServerTimeoutError : public TransientError {
 public:
  using TransientError::TransientError;
};

/// The connection died (EOF, short read/write, receive timeout, failed
/// reconnect). The client reconnects before retrying.
class TransportError : public TransientError {
 public:
  using TransientError::TransientError;
};

/// The caller's retry deadline expired before an attempt succeeded.
/// NOT transient: retrying cannot help within the same budget.
class DeadlineExceededError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// Client-side retry policy. The default (max_attempts = 1) performs no
/// retries — single-shot semantics, identical to the pre-retry client.
struct RetryOptions {
  /// Total attempts per request (first try included). Must be ≥ 1.
  std::size_t max_attempts = 1;
  /// Backoff before retry n is initial_backoff · multiplier^(n-1),
  /// capped at max_backoff, then jittered by ±jitter (fraction).
  std::chrono::milliseconds initial_backoff{5};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{250};
  double jitter = 0.25;
  /// Wall-clock budget across ALL attempts of one request, including
  /// backoff sleeps (propagated to the socket as per-attempt
  /// send/receive timeouts, so one hung attempt cannot eat the whole
  /// budget). Zero = unbounded. Exhaustion throws
  /// DeadlineExceededError.
  std::chrono::milliseconds deadline{0};
  /// Seed of the deterministic jitter stream (tests replay backoff
  /// schedules exactly).
  std::uint64_t rng_seed = 0x9e3779b97f4a7c15ull;
};

/// Lifetime retry accounting of one client (monotonic).
struct RetryStats {
  /// Attempts made, first tries included.
  std::uint64_t attempts = 0;
  /// Attempts beyond the first (i.e. actual retries).
  std::uint64_t retries = 0;
  /// Transport-level reconnects performed before a retry.
  std::uint64_t reconnects = 0;
  /// Requests that exhausted every attempt (or their deadline).
  std::uint64_t giveups = 0;
};

// --- Blocking client-side transport (tools + tests) ---
/// Connects, frames requests, unframes responses. Synchronous: one
/// outstanding request at a time per connection. With a RetryOptions of
/// max_attempts > 1, transient failures (kOverloaded / kTimeout replies,
/// transport drops, receive timeouts) are retried with exponential
/// backoff + deterministic jitter; requests are idempotent queries, so a
/// replay after an ambiguous drop is always safe — except Shutdown,
/// which is never retried.
class SketchClient {
 public:
  /// Throws CheckError when the socket cannot be reached.
  explicit SketchClient(const std::string& socket_path,
                        RetryOptions retry = {});
  ~SketchClient();

  SketchClient(const SketchClient&) = delete;
  SketchClient& operator=(const SketchClient&) = delete;

  /// Sends one framed request payload, returns the response payload.
  /// Single attempt, no retries (the raw transport; verb conveniences
  /// layer retry on top). Throws TransportError when the connection
  /// dies mid-roundtrip.
  [[nodiscard]] std::vector<std::uint8_t> roundtrip(
      std::span<const std::uint8_t> request);

  // Verb conveniences. Non-kOk statuses throw ServerOverloadedError /
  // ServerTimeoutError / CheckError carrying the server's diagnostic
  // (so callers never mistake an error frame for an empty result);
  // transient failures are retried per RetryOptions first.
  void ping();
  [[nodiscard]] QueryResult top_k(std::size_t k);
  [[nodiscard]] QueryResult select(const QueryOptions& query);
  [[nodiscard]] std::vector<QueryResult> batch(
      const std::vector<QueryOptions>& queries);
  struct Info {
    VertexId num_vertices = 0;
    std::uint64_t num_sketches = 0;
    std::uint64_t k_max = 0;
    std::string workload;
    std::string model;
    bool mmap_backed = false;
    std::uint64_t bytes_mapped = 0;
    std::uint64_t bytes_copied = 0;
    /// Serving-epoch generation (bumps on every hot reload).
    std::uint64_t generation = 0;
  };
  [[nodiscard]] Info info();
  /// Live telemetry of the server: request/timeout totals, executor
  /// stats (incl. queue-wait / batch-size / exec-time histograms),
  /// query-cache hit/miss counts and reload generation counters.
  struct ServerStats {
    std::uint64_t requests = 0;
    std::uint64_t timeouts = 0;
    BatchingExecutor::Stats executor;
    QueryCache::Stats cache;
    std::uint64_t generation = 0;
    std::uint64_t reloads = 0;
    std::uint64_t failed_reloads = 0;
  };
  [[nodiscard]] ServerStats stats();
  /// Asks the server to hot-swap its snapshot (empty path = the
  /// server's startup snapshot). Returns the new generation. A failed
  /// reload surfaces as CheckError; the server keeps serving the old
  /// store either way.
  std::uint64_t reload(const std::string& snapshot_path = "");
  void shutdown_server();

  /// This client's lifetime retry accounting.
  [[nodiscard]] const RetryStats& retry_stats() const noexcept {
    return retry_stats_;
  }

 private:
  void connect_or_throw();
  void apply_attempt_timeout(
      std::chrono::steady_clock::time_point deadline);
  /// The retry loop: roundtrip + status check, with reconnect/backoff
  /// on transient failures. Returns the kOk-status response payload.
  [[nodiscard]] std::vector<std::uint8_t> call(
      std::span<const std::uint8_t> request, bool retryable);
  [[nodiscard]] wire::WireReader checked(std::vector<std::uint8_t>& response);

  std::string socket_path_;
  RetryOptions retry_;
  RetryStats retry_stats_;
  std::uint64_t jitter_state_ = 0;
  int fd_ = -1;
};

}  // namespace eimm
