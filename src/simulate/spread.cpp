#include "simulate/spread.hpp"

#include <omp.h>

#include <vector>

#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

/// One IC cascade; returns the number of activated vertices.
std::uint64_t simulate_ic_once(const CSRGraph& forward,
                               std::span<const VertexId> seeds,
                               Xoshiro256& rng,
                               std::vector<std::uint32_t>& stamp,
                               std::uint32_t epoch,
                               std::vector<VertexId>& frontier) {
  frontier.clear();
  for (const VertexId s : seeds) {
    if (stamp[s] != epoch) {
      stamp[s] = epoch;
      frontier.push_back(s);
    }
  }
  std::uint64_t activated = frontier.size();
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const VertexId u = frontier[head];
    const auto neighbors = forward.neighbors(u);
    const auto probs = forward.weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId v = neighbors[i];
      if (stamp[v] != epoch && rng.next_bool(probs[i])) {
        stamp[v] = epoch;
        frontier.push_back(v);
        ++activated;
      }
    }
  }
  return activated;
}

/// One LT cascade. Every vertex v draws threshold T_v ~ U[0,1); it
/// activates when the accumulated weight of its active in-neighbors
/// reaches T_v. We push weight forward along out-edges, which needs the
/// same weight on the forward orientation (mirror_weights_to_forward).
std::uint64_t simulate_lt_once(const CSRGraph& forward,
                               std::span<const VertexId> seeds,
                               Xoshiro256& rng,
                               std::vector<std::uint32_t>& stamp,
                               std::uint32_t epoch,
                               std::vector<float>& accumulated,
                               std::vector<float>& threshold,
                               std::vector<VertexId>& frontier,
                               std::vector<VertexId>& touched) {
  frontier.clear();
  touched.clear();
  for (const VertexId s : seeds) {
    if (stamp[s] != epoch) {
      stamp[s] = epoch;
      frontier.push_back(s);
    }
  }
  std::uint64_t activated = frontier.size();
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const VertexId u = frontier[head];
    const auto neighbors = forward.neighbors(u);
    const auto weights = forward.weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId v = neighbors[i];
      if (stamp[v] == epoch) continue;  // already active
      if (accumulated[v] == 0.0f) {
        // First contact this cascade: draw v's threshold lazily.
        threshold[v] = static_cast<float>(rng.next_double());
        touched.push_back(v);
      }
      accumulated[v] += weights[i];
      if (accumulated[v] >= threshold[v]) {
        stamp[v] = epoch;
        frontier.push_back(v);
        ++activated;
      }
    }
  }
  // Clear accumulation for the vertices touched in this cascade only.
  for (const VertexId v : touched) accumulated[v] = 0.0f;
  return activated;
}

}  // namespace

double estimate_spread_ic(const CSRGraph& forward,
                          std::span<const VertexId> seeds,
                          const SpreadOptions& options) {
  EIMM_CHECK(forward.has_weights(), "forward graph needs IC probabilities");
  if (seeds.empty()) return 0.0;
  const VertexId n = forward.num_vertices();
  std::uint64_t total = 0;

#pragma omp parallel reduction(+ : total)
  {
    std::vector<std::uint32_t> stamp(n, 0);
    std::vector<VertexId> frontier;
    frontier.reserve(1024);
#pragma omp for schedule(static)
    for (int s = 0; s < options.num_samples; ++s) {
      Xoshiro256 rng = Xoshiro256::for_stream(options.rng_seed,
                                              static_cast<std::uint64_t>(s));
      total += simulate_ic_once(forward, seeds, rng, stamp,
                                static_cast<std::uint32_t>(s) + 1, frontier);
    }
  }
  return static_cast<double>(total) / options.num_samples;
}

double estimate_spread_lt(const CSRGraph& forward,
                          std::span<const VertexId> seeds,
                          const SpreadOptions& options) {
  EIMM_CHECK(forward.has_weights(), "forward graph needs LT weights");
  if (seeds.empty()) return 0.0;
  const VertexId n = forward.num_vertices();
  std::uint64_t total = 0;

#pragma omp parallel reduction(+ : total)
  {
    std::vector<std::uint32_t> stamp(n, 0);
    std::vector<float> accumulated(n, 0.0f);
    std::vector<float> threshold(n, 0.0f);
    std::vector<VertexId> frontier;
    std::vector<VertexId> touched;
    frontier.reserve(1024);
    touched.reserve(1024);
#pragma omp for schedule(static)
    for (int s = 0; s < options.num_samples; ++s) {
      Xoshiro256 rng = Xoshiro256::for_stream(options.rng_seed,
                                              static_cast<std::uint64_t>(s));
      total += simulate_lt_once(forward, seeds, rng, stamp,
                                static_cast<std::uint32_t>(s) + 1, accumulated,
                                threshold, frontier, touched);
    }
  }
  return static_cast<double>(total) / options.num_samples;
}

double estimate_spread(const CSRGraph& forward, DiffusionModel model,
                       std::span<const VertexId> seeds,
                       const SpreadOptions& options) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return estimate_spread_ic(forward, seeds, options);
    case DiffusionModel::kLinearThreshold:
      return estimate_spread_lt(forward, seeds, options);
  }
  return 0.0;
}

}  // namespace eimm
