#include "numa/alloc.hpp"

#include <omp.h>

#include <cstring>

namespace eimm {

namespace {
constexpr std::size_t kPageSize = 4096;
}

NumaBuffer::NumaBuffer(std::size_t bytes, MemPolicy policy) {
  if (bytes == 0) bytes = kPageSize;
  const std::size_t rounded = (bytes + kPageSize - 1) / kPageSize * kPageSize;
  void* p = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  EIMM_CHECK(p != MAP_FAILED, "mmap failed for NumaBuffer");
  data_ = p;
  bytes_ = rounded;
  policy_applied_ = apply_mempolicy(data_, bytes_, policy);
}

void NumaBuffer::release() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, bytes_);
    data_ = nullptr;
    bytes_ = 0;
  }
}

void parallel_first_touch(void* data, std::size_t bytes) {
  auto* base = static_cast<unsigned char*>(data);
  const std::size_t pages = (bytes + kPageSize - 1) / kPageSize;
#pragma omp parallel for schedule(static)
  for (std::size_t p = 0; p < pages; ++p) {
    // Writing one byte per page faults it in on the executing thread's
    // node under first-touch policy.
    base[p * kPageSize] = 0;
  }
}

}  // namespace eimm
