// v2 snapshot coverage: the mmap load path must be zero-copy and
// bit-faithful, the section table must reject every structural
// corruption with a FormatError naming the section, and N read-only
// loads of one file must not interfere (the N-serving-processes
// deployment the format exists for).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/binary.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

// v2 header layout (all little-endian): magic[8], u32 version, u32
// section_count, u64 file_bytes, then section_count entries of
// {u32 id, u32 reserved, u64 offset, u64 bytes}.
constexpr std::size_t kVersionAt = 8;
constexpr std::size_t kFileBytesAt = 16;
constexpr std::size_t kTableAt = 24;
constexpr std::size_t kEntryBytes = 24;

SketchStore make_store() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 4096;
  return SketchStore::build(g, options, "amazon-mmap");
}

std::string snapshot_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

template <typename T>
T load_at(const std::string& data, std::size_t at) {
  T v{};
  std::memcpy(&v, data.data() + at, sizeof v);
  return v;
}

template <typename T>
void store_at(std::string& data, std::size_t at, T v) {
  std::memcpy(data.data() + at, &v, sizeof v);
}

TEST(MmapSnapshot, MapLoadIsZeroCopyAndBitIdentical) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_identity.sks");
  store.save_file(path);
  const std::string original = read_file(path);

  SnapshotLoadOptions map_options;
  map_options.mode = SnapshotLoadMode::kMap;
  const SketchStore mapped = SketchStore::load_file(path, map_options);

  const SnapshotLoadStats& stats = mapped.load_stats();
  EXPECT_EQ(stats.version, 4u);
  EXPECT_TRUE(stats.mmap_backed);
  EXPECT_EQ(stats.file_bytes, original.size());
  EXPECT_EQ(stats.bytes_mapped, original.size());
  EXPECT_EQ(stats.bytes_copied, 0u);  // the zero-copy acceptance counter
  EXPECT_EQ(mapped.mapped_bytes(), original.size());

  EXPECT_TRUE(store == mapped);

  // save(mmap-load(save(store))) must reproduce the bytes exactly.
  std::stringstream resaved;
  mapped.save(resaved);
  EXPECT_EQ(resaved.str(), original);
}

TEST(MmapSnapshot, StreamAndMapLoadsServeIdenticalResults) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_agree.sks");
  store.save_file(path);

  SnapshotLoadOptions stream_options;
  stream_options.mode = SnapshotLoadMode::kStream;
  const SketchStore streamed = SketchStore::load_file(path, stream_options);
  SnapshotLoadOptions map_options;
  map_options.mode = SnapshotLoadMode::kMap;
  const SketchStore mapped = SketchStore::load_file(path, map_options);

  EXPECT_FALSE(streamed.load_stats().mmap_backed);
  EXPECT_GT(streamed.load_stats().bytes_copied, 0u);
  EXPECT_TRUE(streamed == mapped);

  const QueryEngine a(streamed);
  const QueryEngine b(mapped);
  EXPECT_EQ(a.top_k(6).seeds, b.top_k(6).seeds);
  QueryOptions constrained;
  constrained.k = 4;
  constrained.forbidden = {a.top_k(1).seeds[0]};
  EXPECT_EQ(a.select(constrained).seeds, b.select(constrained).seeds);
}

TEST(MmapSnapshot, AutoModePrefersMapForV2Files) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_auto.sks");
  store.save_file(path);
  const SketchStore loaded = SketchStore::load_file(path);
  EXPECT_TRUE(loaded.load_stats().mmap_backed);
  EXPECT_EQ(loaded.load_stats().bytes_copied, 0u);
}

TEST(MmapSnapshot, LegacyV1RoundTripsButCannotBeMapped) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_legacy.sks");
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    store.save_legacy_v1(os);
  }

  // kAuto falls back to the stream loader for v1.
  const SketchStore loaded = SketchStore::load_file(path);
  EXPECT_EQ(loaded.load_stats().version, 1u);
  EXPECT_FALSE(loaded.load_stats().mmap_backed);
  EXPECT_TRUE(store == loaded);

  // An explicit kMap request must fail loudly, not silently copy.
  SnapshotLoadOptions map_options;
  map_options.mode = SnapshotLoadMode::kMap;
  try {
    SketchStore::load_file(path, map_options);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos);
  }
}

TEST(MmapSnapshot, SectionTableCorruptionsThrow) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_corrupt.sks");
  store.save_file(path);
  const std::string good = read_file(path);

  const auto expect_rejected = [&](const std::string& data,
                                   const char* label) {
    write_file(path, data);
    for (const SnapshotLoadMode mode :
         {SnapshotLoadMode::kMap, SnapshotLoadMode::kStream}) {
      try {
        SnapshotLoadOptions options;
        options.mode = mode;
        SketchStore::load_file(path, options);
        FAIL() << label << " accepted in mode " << static_cast<int>(mode);
      } catch (const bin::FormatError& e) {
        EXPECT_FALSE(e.section().empty()) << label;
      } catch (const CheckError&) {
        // Size-mismatch paths throw plain CheckError; still a clean
        // rejection.
      }
    }
  };

  // Misaligned section offset (alignment is what makes mmap serving
  // page-granular).
  std::string misaligned = good;
  store_at(misaligned, kTableAt + 8,
           load_at<std::uint64_t>(good, kTableAt + 8) + 1);
  expect_rejected(misaligned, "misaligned offset");

  // Section ids out of order.
  std::string swapped_ids = good;
  store_at(swapped_ids, kTableAt + 0, std::uint32_t{2});
  expect_rejected(swapped_ids, "wrong section id order");

  // Second section overlapping the first.
  std::string overlapping = good;
  store_at(overlapping, kTableAt + kEntryBytes + 8,
           load_at<std::uint64_t>(good, kTableAt + 8));
  expect_rejected(overlapping, "overlapping sections");

  // Declared file size disagreeing with the section table.
  std::string shrunk = good;
  store_at(shrunk, kFileBytesAt,
           load_at<std::uint64_t>(good, kFileBytesAt) - 1);
  expect_rejected(shrunk, "file_bytes mismatch");

  // Trailing bytes after the last section.
  expect_rejected(good + std::string(1, '\0'), "trailing bytes");

  // Truncation inside the section table itself.
  expect_rejected(good.substr(0, kTableAt + kEntryBytes / 2),
                  "truncated section table");

  // The pristine bytes must still load (guards the helpers above).
  write_file(path, good);
  EXPECT_NO_THROW(SketchStore::load_file(path));
}

TEST(MmapSnapshot, DeepValidateCatchesTamperedPayload) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_tamper.sks");
  store.save_file(path);
  std::string data = read_file(path);

  // Section 3 (sketch vertices) is table entry 2; plant an
  // out-of-range vertex id in its first slot. The structure (table,
  // offsets) stays valid.
  const auto vertices_at = static_cast<std::size_t>(
      load_at<std::uint64_t>(data, kTableAt + 2 * kEntryBytes + 8));
  store_at(data, vertices_at, std::uint32_t{0xFFFFFFFFu});
  write_file(path, data);

  // A plain mmap load only checks structure — it must succeed (that is
  // the O(index) cold-start contract)...
  SnapshotLoadOptions map_options;
  map_options.mode = SnapshotLoadMode::kMap;
  EXPECT_NO_THROW(SketchStore::load_file(path, map_options));

  // ...while deep_validate and the stream loader both scan the payload
  // and must reject it.
  SnapshotLoadOptions deep = map_options;
  deep.deep_validate = true;
  EXPECT_THROW(SketchStore::load_file(path, deep), CheckError);
  SnapshotLoadOptions stream_options;
  stream_options.mode = SnapshotLoadMode::kStream;
  EXPECT_THROW(SketchStore::load_file(path, stream_options), CheckError);
}

TEST(MmapSnapshot, DeepValidatedMapLoadReportsIt) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_deep.sks");
  store.save_file(path);
  SnapshotLoadOptions deep;
  deep.mode = SnapshotLoadMode::kMap;
  deep.deep_validate = true;
  const SketchStore loaded = SketchStore::load_file(path, deep);
  EXPECT_TRUE(loaded.load_stats().deep_validated);
  EXPECT_EQ(loaded.load_stats().bytes_copied, 0u);
  EXPECT_TRUE(store == loaded);
}

TEST(MmapSnapshot, ConcurrentReadOnlyLoadsAgree) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_mmap_concurrent.sks");
  store.save_file(path);
  const QueryEngine reference(store);
  const std::vector<VertexId> expected = reference.top_k(6).seeds;

  constexpr int kLoaders = 8;
  std::vector<int> ok(kLoaders, 0);
  std::vector<std::thread> loaders;
  loaders.reserve(kLoaders);
  for (int t = 0; t < kLoaders; ++t) {
    loaders.emplace_back([&, t] {
      SnapshotLoadOptions options;
      options.mode = t % 2 == 0 ? SnapshotLoadMode::kMap
                                : SnapshotLoadMode::kStream;
      const SketchStore mine = SketchStore::load_file(path, options);
      const QueryEngine engine(mine);
      ok[static_cast<std::size_t>(t)] =
          engine.top_k(6).seeds == expected && mine == store ? 1 : 0;
    });
  }
  for (std::thread& t : loaders) t.join();
  for (int t = 0; t < kLoaders; ++t) EXPECT_EQ(ok[static_cast<std::size_t>(t)], 1) << t;
}

TEST(MmapSnapshot, MappedStoreSurvivesMove) {
  // Spans must keep pointing into the mapping after the store moves
  // (serving code returns stores by value).
  const SketchStore built = make_store();
  const std::string path = snapshot_path("eimm_mmap_move.sks");
  built.save_file(path);
  SnapshotLoadOptions map_options;
  map_options.mode = SnapshotLoadMode::kMap;
  SketchStore first = SketchStore::load_file(path, map_options);
  const std::vector<VertexId> before(first.default_seeds().begin(),
                                     first.default_seeds().end());
  SketchStore second = std::move(first);
  EXPECT_TRUE(std::equal(second.default_seeds().begin(),
                         second.default_seeds().end(), before.begin(),
                         before.end()));
  EXPECT_TRUE(second == built);
  EXPECT_TRUE(second.load_stats().mmap_backed);
}

}  // namespace
}  // namespace eimm
