// Adaptive RRR-set representation (§IV-C "Adaptive RRRset Representation").
//
// A reverse-reachable set is stored either as a sorted vertex vector
// (sparse: O(log s) membership, s·4 bytes) or as a bitmap over |V|
// (dense: O(1) membership, |V|/8 bytes). The crossover is where the
// bitmap becomes the smaller encoding: s ≥ |V|/32 with 32-bit ids —
// exposed as a tunable fraction because the paper picks the threshold
// empirically. SCC-dominated graphs (Table I: 50–88 % max coverage)
// produce many dense sets, where bitmaps win on both memory and search;
// LT runs produce millions of tiny sets, where vectors win.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "rrr/bitset.hpp"

namespace eimm {

/// How a set's members are physically stored. kVector/kBitmap are the
/// paper's adaptive pair (RRRSet); kCompressed marks gap-coded slots
/// served by CompressedPool through RRRSetView — the selection kernels
/// route it through their generic for_each/contains path (decode on
/// enumerate), never the vertices() span fast path.
enum class RRRRepr { kVector, kBitmap, kCompressed };

/// Fraction of |V| above which a set switches to bitmap representation.
/// 1/32 equalizes the memory of the two encodings (4-byte id vs 1 bit).
inline constexpr double kDefaultBitmapThreshold = 1.0 / 32.0;

class RRRSet {
 public:
  RRRSet() = default;

  /// Builds with the adaptive policy: bitmap iff
  /// vertices.size() >= threshold_fraction * num_vertices.
  /// `vertices` need not be sorted; the vector representation sorts.
  static RRRSet make_adaptive(std::vector<VertexId> vertices,
                              VertexId num_vertices,
                              double threshold_fraction = kDefaultBitmapThreshold);

  /// Forces the sorted-vector representation (the Ripples baseline).
  static RRRSet make_vector(std::vector<VertexId> vertices);

  /// Forces the bitmap representation.
  static RRRSet make_bitmap(const std::vector<VertexId>& vertices,
                            VertexId num_vertices);

  [[nodiscard]] RRRRepr repr() const noexcept { return repr_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Membership: binary search (vector) or bit test (bitmap).
  [[nodiscard]] bool contains(VertexId v) const noexcept {
    if (repr_ == RRRRepr::kVector) {
      return std::binary_search(vertices_.begin(), vertices_.end(), v);
    }
    return v < bits_.size() && bits_.test(v);
  }

  /// Invokes fn(vertex) for every member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (repr_ == RRRRepr::kVector) {
      for (const VertexId v : vertices_) fn(v);
    } else {
      bits_.for_each_set([&](std::size_t i) { fn(static_cast<VertexId>(i)); });
    }
  }

  /// Members as a sorted vector (copies for the bitmap repr).
  [[nodiscard]] std::vector<VertexId> to_vector() const;

  /// Sorted-vector view; only valid for the vector representation (the
  /// baseline's binary-search kernel uses it directly).
  [[nodiscard]] const std::vector<VertexId>& vertices() const noexcept {
    return vertices_;
  }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return vertices_.capacity() * sizeof(VertexId) + bits_.memory_bytes();
  }

 private:
  RRRRepr repr_ = RRRRepr::kVector;
  std::size_t size_ = 0;
  std::vector<VertexId> vertices_;  // sorted, kVector only
  DynamicBitset bits_;              // kBitmap only
};

}  // namespace eimm
