#include "io/binary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

void expect_equal_graphs(const CSRGraph& a, const CSRGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.targets(), b.targets());
  EXPECT_EQ(a.raw_weights(), b.raw_weights());
}

TEST(BinaryCsr, RoundTripWeighted) {
  const CSRGraph g = build_csr({{0, 1, 0.5f}, {1, 2, 0.25f}, {2, 0, 1.0f}}, 3);
  std::stringstream ss;
  write_binary_csr(ss, g);
  const CSRGraph loaded = read_binary_csr(ss);
  expect_equal_graphs(g, loaded);
  EXPECT_TRUE(loaded.has_weights());
}

TEST(BinaryCsr, RoundTripUnweighted) {
  const CSRGraph g({0, 1, 2}, {1, 0});
  std::stringstream ss;
  write_binary_csr(ss, g);
  const CSRGraph loaded = read_binary_csr(ss);
  expect_equal_graphs(g, loaded);
  EXPECT_FALSE(loaded.has_weights());
}

TEST(BinaryCsr, RoundTripLargerRandomGraph) {
  const CSRGraph g = build_csr(gen_erdos_renyi(500, 4000, 9), 500);
  std::stringstream ss;
  write_binary_csr(ss, g);
  expect_equal_graphs(g, read_binary_csr(ss));
}

TEST(BinaryCsr, BadMagicThrows) {
  std::stringstream ss("definitely not a graph file");
  EXPECT_THROW(read_binary_csr(ss), CheckError);
}

TEST(BinaryCsr, TruncatedPayloadThrows) {
  const CSRGraph g = build_csr({{0, 1}}, 2);
  std::stringstream ss;
  write_binary_csr(ss, g);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary_csr(truncated), CheckError);
}

TEST(BinaryCsr, EmptyStreamThrows) {
  std::stringstream ss;
  EXPECT_THROW(read_binary_csr(ss), CheckError);
}

TEST(BinaryCsr, FileRoundTrip) {
  const CSRGraph g = build_csr({{0, 2, 0.1f}, {1, 2, 0.9f}}, 3);
  const std::string path =
      ::testing::TempDir() + "/eimm_binary_roundtrip.bin";
  write_binary_csr_file(path, g);
  expect_equal_graphs(g, read_binary_csr_file(path));
}

TEST(BinaryCsr, MissingFileThrows) {
  EXPECT_THROW(read_binary_csr_file("/nonexistent/graph.bin"), CheckError);
}

}  // namespace
}  // namespace eimm
