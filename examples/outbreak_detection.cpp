// Outbreak detection / public-health scenario (the LT use case).
//
// A health agency can vaccinate (or monitor) k individuals in a contact
// network and wants to choose the set whose influence — under the Linear
// Threshold model, where a person adopts a behaviour once enough of
// their contacts did — covers the largest expected share of the
// population. The same seeds that maximize influence are the best
// sentinels for early detection (Leskovec et al., KDD'07).
//
// Run: ./outbreak_detection [k] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "graph/stats.hpp"
#include "io/json_log.hpp"
#include "simulate/heuristics.hpp"
#include "simulate/spread.hpp"
#include "support/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace eimm;

  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;

  std::printf("== Outbreak detection on a community contact network ==\n");
  // DBLP-like community structure is the right shape for face-to-face
  // contact networks: dense households/workplaces, sparse bridges.
  DiffusionGraph graph = make_workload("com-DBLP", scale, /*seed=*/7);
  // Heterogeneous contact strengths: random per-edge LT weights
  // (normalized so in-weights + "no activation" sum to 1). With uneven
  // weights, raw contact counts stop being a reliable proxy for
  // influence — exactly when principled selection pays off.
  assign_lt_weights_random(graph.reverse, /*seed=*/21);
  mirror_weights_to_forward(graph.reverse, graph.forward);
  const GraphStats stats = compute_graph_stats(graph.forward, false);
  std::printf("Contact network: %s\n", describe(stats).c_str());
  std::printf("Sensor budget: %zu individuals\n\n", k);

  ImmOptions options;
  options.k = k;
  options.epsilon = 0.3;
  options.model = DiffusionModel::kLinearThreshold;
  const ImmResult imm = run_efficient_imm(graph, options);

  std::printf("EfficientIMM: %.3fs, %llu RRR sets (LT sets are tiny but "
              "numerous — see paper §III-A)\n",
              imm.breakdown.total_seconds,
              static_cast<unsigned long long>(imm.num_rrr_sets));

  SpreadOptions spread_options;
  spread_options.num_samples = 500;
  const double spread_imm =
      estimate_spread_lt(graph.forward, imm.seeds, spread_options);
  const auto degree = top_degree_seeds(graph.forward, k);
  const double spread_degree =
      estimate_spread_lt(graph.forward, degree, spread_options);

  AsciiTable table({"Placement", "Expected coverage", "% of population"});
  table.new_row()
      .add("EfficientIMM sentinels")
      .add(spread_imm, 0)
      .add(100.0 * spread_imm / stats.num_vertices, 2);
  table.new_row()
      .add("Highest-contact individuals")
      .add(spread_degree, 0)
      .add(100.0 * spread_degree / stats.num_vertices, 2);
  table.set_title("Sentinel placement quality (LT model)");
  table.print(std::cout);

  // Persist the run the way the SC'24 artifact does.
  ExperimentRecord record;
  record.dataset = "com-DBLP-analogue";
  record.algorithm = "EfficientIMM";
  record.diffusion = "LT";
  record.threads = imm.threads_used;
  record.k = static_cast<int>(k);
  record.epsilon = options.epsilon;
  record.rng_seed = options.rng_seed;
  record.total_seconds = imm.breakdown.total_seconds;
  record.sampling_seconds = imm.breakdown.sampling_seconds;
  record.selection_seconds = imm.breakdown.selection_seconds;
  record.num_rrr_sets = imm.num_rrr_sets;
  record.rrr_memory_bytes = imm.rrr_memory_bytes;
  record.seeds = imm.seeds;
  const std::string path =
      write_experiment_json_file("outbreak-logs", record);
  std::printf("\nRun log written to %s\n", path.c_str());
  return 0;
}
