// Fig. 5 reproduction: runtime with vs without the adaptive vertex-
// occurrence counter update at full thread count (paper: 11.6x-60.9x
// relative speedup of the *selection* step on 4 skewed datasets).
//
// With adaptive updates, once a seed covers most surviving RRR sets the
// kernel rebuilds the counter from the (few) survivors instead of
// decrementing over the (many) covered sets.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Fig. 5: adaptive counter update on/off (IC, max threads)",
               config);

  const char* datasets[] = {"com-Amazon", "com-YouTube", "soc-Pokec",
                            "com-LJ"};

  AsciiTable table({"Graph", "w/o adaptive (s)", "w/ adaptive (s)",
                    "Selection speedup", "Rebuild rounds"});
  for (const char* name : datasets) {
    const DiffusionGraph graph = load_workload(
        config, name, DiffusionModel::kIndependentCascade);

    ImmOptions with = imm_options(config, DiffusionModel::kIndependentCascade,
                                  config.max_threads);
    with.adaptive_update = true;
    ImmOptions without = with;
    without.adaptive_update = false;

    double with_selection = 0.0;
    std::uint32_t rebuilds = 0;
    const double with_total = best_seconds(config.reps, [&] {
      const ImmResult r = run_efficient_imm(graph, with);
      with_selection = r.breakdown.selection_seconds;
      rebuilds = r.rebuild_rounds;
      return r.breakdown.total_seconds;
    });
    double without_selection = 0.0;
    const double without_total = best_seconds(config.reps, [&] {
      const ImmResult r = run_efficient_imm(graph, without);
      without_selection = r.breakdown.selection_seconds;
      return r.breakdown.total_seconds;
    });
    EIMM_UNUSED(with_total);
    EIMM_UNUSED(without_total);

    table.new_row()
        .add(name)
        .add(without_selection, 4)
        .add(with_selection, 4)
        .add(format_speedup(without_selection /
                                std::max(with_selection, 1e-9),
                            1))
        .add(static_cast<std::uint64_t>(rebuilds));
  }
  table.set_title("Fig. 5 — Find_Most_Influential_Set time, w/ vs w/o "
                  "adaptive update");
  table.print(std::cout);
  std::printf(
      "\nShape check: adaptive update wins where seeds cover most of the\n"
      "pool (dense/skewed IC graphs); paper reports 11.6x-60.9x on these\n"
      "four datasets at 128 cores.\n");
  return 0;
}
