#include "runtime/atomic_counters.hpp"

#include <omp.h>
#include <sched.h>

#include <algorithm>
#include <limits>

#include "numa/topology.hpp"
#include "runtime/partition.hpp"
#include "support/env.hpp"
#include "support/macros.hpp"

namespace eimm {

int resolve_counter_shards(int requested) {
  if (requested > 0) return requested;
  const std::int64_t env = env_int("EIMM_COUNTER_SHARDS", 0);
  if (env > 0) {
    return static_cast<int>(
        std::min<std::int64_t>(env, std::numeric_limits<int>::max()));
  }
  return numa_topology().num_nodes();
}

CounterArray::CounterArray(std::size_t n, MemPolicy policy)
    : array_(n, policy) {
  // mmap zero-fills; nothing further needed. std::atomic<u64> is
  // trivially constructible from zero bytes on all supported ABIs.
  static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));
}

void CounterArray::reset() noexcept {
  const std::size_t n = array_.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    array_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> CounterArray::snapshot() const {
  std::vector<std::uint64_t> out(array_.size());
  for (std::size_t i = 0; i < array_.size(); ++i) out[i] = get(i);
  return out;
}

std::uint64_t CounterArray::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < array_.size(); ++i) sum += get(i);
  return sum;
}

ShardedCounterArray::ShardedCounterArray(std::size_t n, int shards,
                                         MemPolicy policy)
    : n_(n) {
  const auto count = static_cast<std::size_t>(std::max(1, shards));
  replicas_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    replicas_.emplace_back(n, policy);
  }
}

int ShardedCounterArray::home_shard() const noexcept {
  const int shards = static_cast<int>(replicas_.size());
  if (shards <= 1) return 0;
  const NumaTopology& topo = numa_topology();
  if (topo.is_numa()) {
    const int cpu = sched_getcpu();
    if (cpu >= 0 &&
        static_cast<std::size_t>(cpu) < topo.cpu_to_node.size()) {
      // Map the node ID to its POSITION in the online-node list before
      // the modulo — sysfs allows gapped ids (e.g. {0, 2}), and raw-id
      // arithmetic would collapse distinct domains onto one replica.
      const int node = topo.cpu_to_node[static_cast<std::size_t>(cpu)];
      const auto it =
          std::find(topo.nodes.begin(), topo.nodes.end(), node);
      if (it != topo.nodes.end()) {
        return static_cast<int>(it - topo.nodes.begin()) % shards;
      }
    }
  }
  return omp_get_thread_num() % shards;
}

void ShardedCounterArray::reset() noexcept {
  for (auto& replica : replicas_) {
    const std::size_t n = replica.size();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      replica[i].store(0, std::memory_order_relaxed);
    }
  }
}

void ShardedCounterArray::load_base(const CounterArray& base) {
  EIMM_CHECK(base.size() >= n_, "base counter smaller than sharded layout");
  if (n_ == 0) return;
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [begin, end] = block_range(n_, nthreads, tid);
    CounterSlab home = local();
    for (std::size_t i = begin; i < end; ++i) {
      home.store(i, base.get(i));
    }
  }
}

void ShardedCounterArray::reload_base(const CounterArray& base) {
  EIMM_CHECK(base.size() >= n_, "base counter smaller than sharded layout");
  if (n_ == 0) return;
  const int shards = static_cast<int>(replicas_.size());
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [begin, end] = block_range(n_, nthreads, tid);
    const int home = home_shard();
    for (int s = 0; s < shards; ++s) {
      CounterSlab slab = local(s);
      if (s == home) {
        for (std::size_t i = begin; i < end; ++i) {
          slab.store(i, base.get(i));
        }
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          slab.store(i, 0);
        }
      }
    }
  }
}

std::vector<std::uint64_t> ShardedCounterArray::snapshot() const {
  std::vector<std::uint64_t> out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = get(i);
  return out;
}

std::uint64_t ShardedCounterArray::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n_; ++i) sum += get(i);
  return sum;
}

}  // namespace eimm
