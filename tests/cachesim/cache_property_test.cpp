// Cache-model properties: LRU inclusion (bigger caches never miss more
// on the same trace), line-granularity behaviour, and config sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cache.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

/// Replays a fixed pseudo-random trace and returns total misses.
std::uint64_t misses_for(const CacheLevelConfig& l1,
                         const CacheLevelConfig& l2,
                         std::size_t working_set_bytes) {
  CacheConfig config;
  config.l1 = l1;
  config.l2 = l2;
  CacheHierarchy h(config);
  std::vector<char> buffer(working_set_bytes);
  Xoshiro256 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const auto offset = rng.next_bounded(buffer.size());
    h.access(buffer.data() + offset, 1);
  }
  return h.stats().l1_plus_l2_misses();
}

class L1SizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(L1SizeSweep, FullyAssociativeInclusionProperty) {
  // Fully-associative LRU has the stack property: a larger cache's hits
  // are a superset of a smaller cache's on any trace.
  const std::uint64_t size = GetParam();
  const std::uint64_t lines = size / 64;
  const auto small = misses_for({size, static_cast<std::uint32_t>(lines), 64},
                                {1 << 20, 16, 64}, 1 << 16);
  const auto large =
      misses_for({size * 2, static_cast<std::uint32_t>(lines * 2), 64},
                 {1 << 20, 16, 64}, 1 << 16);
  EXPECT_LE(large, small) << "size " << size;
}

INSTANTIATE_TEST_SUITE_P(Sizes, L1SizeSweep,
                         ::testing::Values(1024, 4096, 16384));

TEST(CacheProperties, SequentialScanMissesOncePerLine) {
  CacheConfig config;
  config.l1 = {32 * 1024, 8, 64};
  config.l2 = {512 * 1024, 8, 64};
  CacheHierarchy h(config);
  // 16 KiB sequential byte scan fits L1: one miss per 64B line.
  std::vector<char> buffer(16 * 1024);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    h.access(buffer.data() + i, 1);
  }
  EXPECT_EQ(h.stats().accesses, buffer.size());
  // Allowing +1 line when the vector isn't 64-byte aligned.
  EXPECT_LE(h.stats().l1_misses, buffer.size() / 64 + 1);
  EXPECT_GE(h.stats().l1_misses, buffer.size() / 64);
}

TEST(CacheProperties, HotLoopAfterWarmupHasNoMisses) {
  CacheConfig config;
  config.l1 = {32 * 1024, 8, 64};
  config.l2 = {512 * 1024, 8, 64};
  CacheHierarchy h(config);
  std::vector<char> buffer(8 * 1024);  // comfortably fits L1
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < buffer.size(); i += 64) {
      h.access(buffer.data() + i, 1);
    }
  }
  const auto cold_lines = 8 * 1024 / 64;
  EXPECT_LE(h.stats().l1_misses,
            static_cast<std::uint64_t>(cold_lines) + 1);
}

TEST(CacheProperties, StridedThrashingBeatsCapacity) {
  // Accesses strided by exactly the set-stride all land in one set and
  // thrash a low-associativity cache despite the tiny footprint.
  CacheConfig config;
  config.l1 = {4096, 2, 64};  // 32 sets
  config.l2 = {1 << 20, 16, 64};
  CacheHierarchy h(config);
  std::vector<char> buffer(64 * 32 * 8);
  const std::size_t set_stride = 64 * 32;  // same set every time
  for (int round = 0; round < 100; ++round) {
    for (int j = 0; j < 4; ++j) {  // 4 lines > 2 ways
      h.access(buffer.data() + j * set_stride, 1);
    }
  }
  // Steady-state LRU thrash: every access misses L1.
  EXPECT_GT(h.stats().l1_misses, h.stats().accesses * 9 / 10);
}

TEST(CacheProperties, L2NeverMissesMoreThanL1) {
  const auto run = [](std::size_t ws) {
    CacheConfig config;
    CacheHierarchy h(config);
    std::vector<char> buffer(ws);
    Xoshiro256 rng(7);
    for (int i = 0; i < 50000; ++i) {
      h.access(buffer.data() + rng.next_bounded(buffer.size()), 1);
    }
    return h.stats();
  };
  for (const std::size_t ws : {1ul << 14, 1ul << 18, 1ul << 22}) {
    const CacheStats s = run(ws);
    EXPECT_LE(s.l2_misses, s.l1_misses) << ws;
  }
}

TEST(CacheProperties, WorkingSetSweepShowsCapacityCliffs) {
  // Misses grow as the working set crosses L1 then L2 capacity.
  const auto miss_rate = [](std::size_t ws) {
    CacheConfig config;
    config.l1 = {32 * 1024, 8, 64};
    config.l2 = {256 * 1024, 8, 64};
    CacheHierarchy h(config);
    std::vector<char> buffer(ws);
    // Two full sequential passes; second pass shows residency.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < buffer.size(); i += 64) {
        h.access(buffer.data() + i, 1);
      }
    }
    return static_cast<double>(h.stats().l1_plus_l2_misses()) /
           static_cast<double>(h.stats().accesses);
  };
  const double fits_l1 = miss_rate(16 * 1024);
  const double fits_l2 = miss_rate(128 * 1024);
  const double fits_nothing = miss_rate(1 << 20);
  EXPECT_LT(fits_l1, fits_l2);
  EXPECT_LT(fits_l2, fits_nothing);
}

}  // namespace
}  // namespace eimm
