#include "numa/alloc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "numa/policy.hpp"
#include "numa/topology.hpp"

namespace eimm {
namespace {

TEST(NumaBuffer, AllocatesAndZeroFills) {
  NumaBuffer buf(1 << 16, MemPolicy::kDefault);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_GE(buf.bytes(), std::size_t{1} << 16);
  const auto* p = static_cast<const unsigned char*>(buf.data());
  for (std::size_t i = 0; i < (1 << 16); i += 4096) EXPECT_EQ(p[i], 0);
}

TEST(NumaBuffer, RoundsUpToPageSize) {
  NumaBuffer buf(100, MemPolicy::kDefault);
  EXPECT_EQ(buf.bytes() % 4096, 0u);
  EXPECT_GE(buf.bytes(), 4096u);
}

TEST(NumaBuffer, ZeroBytesStillMapsAPage) {
  NumaBuffer buf(0, MemPolicy::kDefault);
  EXPECT_NE(buf.data(), nullptr);
}

TEST(NumaBuffer, MoveTransfersOwnership) {
  NumaBuffer a(4096, MemPolicy::kDefault);
  void* original = a.data();
  NumaBuffer b(std::move(a));
  EXPECT_EQ(b.data(), original);
  EXPECT_EQ(a.data(), nullptr);
  NumaBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), original);
}

TEST(NumaBuffer, PolicyOnlyAppliesOnNumaMachines) {
  NumaBuffer buf(1 << 20, MemPolicy::kInterleave);
  if (!numa_topology().is_numa()) {
    // Single node: placement must silently degrade, never fail the alloc.
    EXPECT_FALSE(buf.policy_applied());
  }
  EXPECT_NE(buf.data(), nullptr);  // allocation always succeeds
}

TEST(NumaArray, TypedAccess) {
  NumaArray<std::uint64_t> arr(1000, MemPolicy::kDefault);
  EXPECT_EQ(arr.size(), 1000u);
  for (std::size_t i = 0; i < arr.size(); ++i) EXPECT_EQ(arr[i], 0u);
  arr[7] = 42;
  EXPECT_EQ(arr[7], 42u);
  EXPECT_EQ(arr.span().size(), 1000u);
}

TEST(NumaArray, DefaultConstructedIsEmpty) {
  NumaArray<int> arr;
  EXPECT_EQ(arr.size(), 0u);
}

TEST(FirstTouch, TouchesWithoutCrashing) {
  NumaBuffer buf(1 << 20, MemPolicy::kDefault);
  parallel_first_touch(buf.data(), buf.bytes());
  auto* p = static_cast<unsigned char*>(buf.data());
  p[0] = 1;  // memory stays usable
  EXPECT_EQ(p[0], 1);
}

TEST(Policy, ApplyOnNullIsRejected) {
  EXPECT_FALSE(apply_mempolicy(nullptr, 4096, MemPolicy::kInterleave));
  int x = 0;
  EXPECT_FALSE(apply_mempolicy(&x, 0, MemPolicy::kInterleave));
}

TEST(Policy, NumaAvailableIsStable) {
  EXPECT_EQ(numa_available(), numa_available());
}

}  // namespace
}  // namespace eimm
