// Fig. 1 reproduction: "Ripples Strong Scaling Performance".
//
// Runs the Ripples-strategy engine on web-Google with 1..P threads for
// both diffusion models and prints runtime + self-relative speedup. The
// paper's observation: scalability saturates early (LT after ~4 threads,
// IC after ~32 on their 128-core box) because Find_Most_Influential_Set
// does redundant all-set traversals per thread.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Fig. 1: Ripples-strategy strong scaling (web-Google)",
               config);

  for (const DiffusionModel model : {DiffusionModel::kLinearThreshold,
                                     DiffusionModel::kIndependentCascade}) {
    const DiffusionGraph graph = load_workload(config, "web-Google", model);
    AsciiTable table({"Threads", "Runtime (s)", "Speedup vs 1T",
                      "Parallel efficiency %"});
    double base = 0.0;
    for (const int threads : thread_sweep(config.max_threads)) {
      const ImmOptions opt = imm_options(config, model, threads);
      const double seconds = best_seconds(config.reps, [&] {
        return run_baseline_imm(graph, opt).breakdown.total_seconds;
      });
      if (threads == 1) base = seconds;
      table.new_row()
          .add(threads)
          .add(seconds, 3)
          .add(format_speedup(base / seconds, 2))
          .add(100.0 * base / seconds / threads, 0);
    }
    table.set_title(std::string("Fig. 1 — Ripples strategy, ") +
                    std::string(to_string(model)) + " model");
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: speedup flattens well before the core count — the\n"
      "selection kernel's per-thread all-set traversal is the limiter.\n");
  return 0;
}
