#include "serve/query_cache.hpp"

#include <algorithm>
#include <cstring>

namespace eimm {

namespace {

void append_u64(std::string& key, std::uint64_t v) {
  char raw[sizeof v];
  std::memcpy(raw, &v, sizeof v);
  key.append(raw, sizeof raw);
}

void append_sorted_ids(std::string& key, std::vector<VertexId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  append_u64(key, ids.size());
  for (const VertexId v : ids) {
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    key.append(raw, sizeof raw);
  }
}

}  // namespace

std::string QueryCache::make_key(const QueryOptions& query) {
  std::string key;
  key.reserve(24 + 4 * (query.candidates.size() + query.forbidden.size()));
  append_u64(key, query.k);
  append_sorted_ids(key, query.candidates);
  append_sorted_ids(key, query.forbidden);
  return key;
}

std::optional<QueryResult> QueryCache::lookup(const QueryOptions& query) {
  if (capacity_ == 0 || !cacheable(query)) return std::nullopt;
  const std::string key = make_key(query);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void QueryCache::insert(const QueryOptions& query, const QueryResult& result) {
  if (capacity_ == 0 || !cacheable(query)) return;
  std::string key = make_key(query);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic kernel: a re-insert carries the identical result, so
    // just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, result});
  index_.emplace(std::move(key), lru_.begin());
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, evictions_, lru_.size()};
}

void QueryCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace eimm
