#include "diffusion/weights.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

DiffusionGraph random_graph() {
  return build_diffusion_graph(gen_erdos_renyi(100, 600, 5), 100);
}

TEST(ParseModel, RecognizedStrings) {
  EXPECT_EQ(parse_model("IC"), DiffusionModel::kIndependentCascade);
  EXPECT_EQ(parse_model("ic"), DiffusionModel::kIndependentCascade);
  EXPECT_EQ(parse_model("LT"), DiffusionModel::kLinearThreshold);
  EXPECT_EQ(parse_model("lt"), DiffusionModel::kLinearThreshold);
  EXPECT_EQ(parse_model("bogus", DiffusionModel::kLinearThreshold),
            DiffusionModel::kLinearThreshold);
}

TEST(ToString, ModelNames) {
  EXPECT_EQ(to_string(DiffusionModel::kIndependentCascade), "IC");
  EXPECT_EQ(to_string(DiffusionModel::kLinearThreshold), "LT");
}

TEST(IcWeights, UniformInUnitInterval) {
  auto g = random_graph();
  assign_ic_weights_uniform(g.reverse, 3);
  for (VertexId v = 0; v < g.reverse.num_vertices(); ++v) {
    for (const float w : g.reverse.weights(v)) {
      EXPECT_GE(w, 0.0f);
      EXPECT_LT(w, 1.0f);
    }
  }
}

TEST(IcWeights, UniformDeterministicInSeed) {
  auto a = random_graph();
  auto b = random_graph();
  assign_ic_weights_uniform(a.reverse, 3);
  assign_ic_weights_uniform(b.reverse, 3);
  EXPECT_EQ(a.reverse.raw_weights(), b.reverse.raw_weights());
  auto c = random_graph();
  assign_ic_weights_uniform(c.reverse, 4);
  EXPECT_NE(a.reverse.raw_weights(), c.reverse.raw_weights());
}

TEST(IcWeights, UniformMeanNearHalf) {
  auto g = build_diffusion_graph(gen_erdos_renyi(500, 20000, 5), 500);
  assign_ic_weights_uniform(g.reverse, 3);
  const auto& ws = g.reverse.raw_weights();
  const double mean =
      std::accumulate(ws.begin(), ws.end(), 0.0) / static_cast<double>(ws.size());
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(IcWeights, WeightedCascadeIsInverseIndegree) {
  auto g = random_graph();
  assign_ic_weights_weighted_cascade(g.reverse);
  for (VertexId v = 0; v < g.reverse.num_vertices(); ++v) {
    const auto ws = g.reverse.weights(v);
    for (const float w : ws) {
      EXPECT_FLOAT_EQ(w, 1.0f / static_cast<float>(ws.size()));
    }
  }
}

TEST(LtWeights, NormalizedSumsToIndegFraction) {
  auto g = random_graph();
  assign_lt_weights_normalized(g.reverse);
  for (VertexId v = 0; v < g.reverse.num_vertices(); ++v) {
    const auto ws = g.reverse.weights(v);
    if (ws.empty()) continue;
    const double sum = std::accumulate(ws.begin(), ws.end(), 0.0);
    // Σw = indeg/(indeg+1) < 1, leaving the "activate none" slot.
    EXPECT_NEAR(sum, static_cast<double>(ws.size()) /
                         static_cast<double>(ws.size() + 1),
                1e-5);
  }
}

TEST(LtWeights, RandomRespectsSumConstraint) {
  auto g = random_graph();
  assign_lt_weights_random(g.reverse, 9);
  for (VertexId v = 0; v < g.reverse.num_vertices(); ++v) {
    const auto ws = g.reverse.weights(v);
    if (ws.empty()) continue;
    const double sum = std::accumulate(ws.begin(), ws.end(), 0.0);
    EXPECT_LT(sum, 1.0);
    for (const float w : ws) EXPECT_GT(w, 0.0f);
  }
}

TEST(PaperWeights, DispatchesByModel) {
  auto ic = random_graph();
  assign_paper_weights(ic.reverse, DiffusionModel::kIndependentCascade, 2);
  auto lt = random_graph();
  assign_paper_weights(lt.reverse, DiffusionModel::kLinearThreshold, 2);
  // IC: weights unconstrained per-vertex; LT: all equal within a vertex.
  bool lt_uniform_within_vertex = true;
  for (VertexId v = 0; v < lt.reverse.num_vertices(); ++v) {
    const auto ws = lt.reverse.weights(v);
    for (const float w : ws) {
      if (w != ws[0]) lt_uniform_within_vertex = false;
    }
  }
  EXPECT_TRUE(lt_uniform_within_vertex);
}

TEST(MirrorWeights, ForwardEdgeMatchesReverse) {
  auto g = random_graph();
  assign_ic_weights_uniform(g.reverse, 7);
  mirror_weights_to_forward(g.reverse, g.forward);
  // For every reverse edge (v <- u) with weight w, forward (u -> v) has w.
  for (VertexId v = 0; v < g.reverse.num_vertices(); ++v) {
    const auto in_n = g.reverse.neighbors(v);
    const auto in_w = g.reverse.weights(v);
    for (std::size_t i = 0; i < in_n.size(); ++i) {
      const VertexId u = in_n[i];
      const auto out_n = g.forward.neighbors(u);
      const auto out_w = g.forward.weights(u);
      bool found = false;
      for (std::size_t j = 0; j < out_n.size(); ++j) {
        if (out_n[j] == v) {
          EXPECT_FLOAT_EQ(out_w[j], in_w[i]);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(MirrorWeights, RequiresWeights) {
  // Raw CSR pair without weights (the builder would assign defaults).
  CSRGraph forward({0, 1, 1}, {1});
  CSRGraph reverse = forward.transpose();
  EXPECT_FALSE(reverse.has_weights());
  EXPECT_THROW(mirror_weights_to_forward(reverse, forward), CheckError);
}

TEST(MirrorWeights, RejectsMismatchedGraphs) {
  auto g = random_graph();
  assign_ic_weights_uniform(g.reverse, 1);
  CSRGraph other({0, 0}, {});
  EXPECT_THROW(mirror_weights_to_forward(g.reverse, other), CheckError);
}

}  // namespace
}  // namespace eimm
