// Guards the bench-harness contract: the defaults documented in
// bench/common.hpp must match BenchConfig, and the EIMM_* environment
// knobs must actually steer load_config.
#include "common.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

namespace eimm::bench {
namespace {

/// Scoped setenv/unsetenv so tests cannot leak knobs into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(BenchConfig, DefaultScaleMatchesTheDocumentedValue) {
  // bench/common.hpp documents EIMM_SCALE's default as 0.3; the struct
  // default and the header comment must not drift apart again.
  EXPECT_DOUBLE_EQ(BenchConfig{}.scale, 0.3);

  const ScopedEnv unset("EIMM_SCALE", nullptr);
  EXPECT_DOUBLE_EQ(load_config().scale, 0.3);
}

TEST(BenchConfig, ScaleHonoursTheEnvironmentKnob) {
  const ScopedEnv scale("EIMM_SCALE", "0.125");
  EXPECT_DOUBLE_EQ(load_config().scale, 0.125);
}

TEST(BenchConfig, OtherDefaultsMatchTheDocumentedValues) {
  const BenchConfig defaults;
  EXPECT_EQ(defaults.reps, 1);
  EXPECT_EQ(defaults.k, 50u);
  EXPECT_DOUBLE_EQ(defaults.epsilon, 0.5);
  EXPECT_EQ(defaults.max_rrr_sets, std::uint64_t{1} << 20);
}

TEST(BenchConfig, JsonPathDefaultsToCurrentDirectory) {
  const ScopedEnv unset("EIMM_BENCH_JSON_DIR", nullptr);
  EXPECT_EQ(bench_json_path("BENCH_serve.json"), "./BENCH_serve.json");
}

TEST(BenchConfig, JsonPathHonoursTheEnvironmentKnob) {
  const ScopedEnv dir("EIMM_BENCH_JSON_DIR", "/tmp/eimm-bench");
  EXPECT_EQ(bench_json_path("BENCH_serve.json"),
            "/tmp/eimm-bench/BENCH_serve.json");
}

}  // namespace
}  // namespace eimm::bench
