#include "rrr/sharded.hpp"

#include <omp.h>

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rrr/fused.hpp"
#include "rrr/generate.hpp"
#include "runtime/affinity.hpp"
#include "runtime/partition.hpp"
#include "runtime/work_queue.hpp"
#include "support/env.hpp"
#include "support/macros.hpp"

namespace eimm {

int resolve_shards(int requested) {
  if (requested > 0) return requested;
  const std::int64_t env = env_int("EIMM_SHARDS", 0);
  if (env > 0) {
    return static_cast<int>(
        std::min<std::int64_t>(env, std::numeric_limits<int>::max()));
  }
  return numa_topology().num_nodes();
}

ShardPlan ShardPlan::make(std::uint64_t begin, std::uint64_t end,
                          int num_shards, std::size_t num_workers,
                          const NumaTopology& topo) {
  EIMM_CHECK(end >= begin, "invalid shard range");
  const auto shards = static_cast<std::size_t>(std::max(1, num_shards));
  const std::size_t workers = std::max<std::size_t>(1, num_workers);

  ShardPlan plan;
  plan.total_workers = workers;
  plan.shards.resize(shards);
  const auto slices = split_ranges(static_cast<std::size_t>(end - begin),
                                   shards);
  const int domains = std::max(1, topo.num_nodes());
  for (std::size_t s = 0; s < shards; ++s) {
    Shard& shard = plan.shards[s];
    shard.begin = begin + slices[s].first;
    shard.end = begin + slices[s].second;
    shard.domain = topo.nodes.empty()
                       ? 0
                       : topo.nodes[s % static_cast<std::size_t>(domains)];
    if (workers >= shards) {
      const auto [w_lo, w_hi] = block_range(workers, shards, s);
      shard.first_worker = w_lo;
      shard.worker_count = w_hi - w_lo;
    } else {
      // More shards than workers: worker block_owner(...) serves this
      // shard alone (each worker walks a contiguous run of shards).
      shard.first_worker = block_owner(shards, workers, s);
      shard.worker_count = 1;
    }
  }
  return plan;
}

std::vector<std::size_t> ShardPlan::shards_for_worker(std::size_t w) const {
  std::vector<std::size_t> owned;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    if (w >= shard.first_worker && w < shard.first_worker + shard.worker_count) {
      owned.push_back(s);
    }
  }
  return owned;
}

ShardedSampler::ShardedSampler(const CSRGraph& reverse, ShardedConfig config)
    : reverse_(reverse), config_(std::move(config)) {
  EIMM_CHECK(config_.shards >= 1, "shard count must be >= 1");
  EIMM_CHECK(config_.batch_size > 0, "batch size must be positive");
}

void ShardedSampler::stage(
    std::vector<ShardArena>& arenas, std::uint64_t begin, std::uint64_t end,
    CounterArray* fused,
    std::vector<std::pair<std::uint32_t, ShardArena::Ref>>& refs) {
  if (config_.fused) {
    stage_fused(arenas, begin, end, fused, refs);
    return;
  }
  const std::uint64_t count = end - begin;
  const NumaTopology& topo = numa_topology();

  // Pin the team before planning work onto it: ShardPlan hands shard s
  // to a contiguous worker group, and the compact pin plan maps
  // contiguous thread ids to one domain each — together they keep a
  // shard's JobPool, scratch, and kLocal arena pages on one domain
  // instead of relying on OMP_PROC_BIND (the ROADMAP placement gap).
  // No-op on single-node hosts or under EIMM_PIN=none.
  pin_openmp_team();

  ShardPlan plan = ShardPlan::make(
      begin, end, config_.shards,
      static_cast<std::size_t>(omp_get_max_threads()), topo);
  std::vector<std::unique_ptr<JobPool>> jobs;
  refs.assign(count, {});
  const VertexId n = reverse_.num_vertices();

  std::uint64_t staged_before = 0;
  for (const ShardArena& arena : arenas) staged_before += arena.runs();

  if (count > 0) {
#pragma omp parallel
    {
#pragma omp single
      {
        // The plan must describe the team that actually materialized:
        // OMP_DYNAMIC, thread limits, or an enclosing parallel region
        // can hand us fewer threads than omp_get_max_threads() promised,
        // and a shard assigned to an absent worker would never drain.
        const auto team = static_cast<std::size_t>(omp_get_num_threads());
        if (team != plan.total_workers) {
          plan = ShardPlan::make(begin, end, config_.shards, team, topo);
        }
        // One job pool per shard: stealing is confined to the shard's
        // worker group, so the locality the plan establishes survives
        // imbalance. Arenas are worker-private (single writer each) and
        // PERSISTENT — growing rounds keep appending into the same
        // chunk set instead of mapping fresh arenas per round.
        jobs.reserve(plan.shards.size());
        for (const ShardPlan::Shard& shard : plan.shards) {
          jobs.push_back(std::make_unique<JobPool>(
              shard.size(), config_.batch_size,
              std::max<std::size_t>(1, shard.worker_count)));
        }
        if (arenas.size() < plan.total_workers) {
          arenas.resize(plan.total_workers);
        }
      }  // implicit barrier: every worker sees the final plan

      const auto wid = static_cast<std::size_t>(omp_get_thread_num());
      if (wid < plan.total_workers) {
        SamplerScratch scratch(n);
        ShardArena& arena = arenas[wid];
        for (const std::size_t s : plan.shards_for_worker(wid)) {
          const ShardPlan::Shard& shard = plan.shards[s];
          const std::size_t local = wid - shard.first_worker;
          // One span per worker-shard region: the trace shows which
          // domain each worker drained and for how long.
          obs::TraceSpan span("sampler.shard", "shard",
                              static_cast<std::int64_t>(s), "domain",
                              shard.domain, "worker",
                              static_cast<std::int64_t>(wid));
          for (JobBatch batch = jobs[s]->next(local); !batch.empty();
               batch = jobs[s]->next(local)) {
            for (std::size_t j = batch.begin; j < batch.end; ++j) {
              const std::uint64_t global = shard.begin + j;
              std::vector<VertexId> verts = sample_rrr(
                  reverse_, config_.model, config_.rng_seed, global,
                  scratch);
              if (fused != nullptr) {
                for (const VertexId v : verts) fused->increment(v);
              }
              // Stage sorted: the run then IS the vector representation
              // of the set, so selection can binary-search it in place.
              std::sort(verts.begin(), verts.end());
              auto& slot = refs[global - begin];
              slot.first = static_cast<std::uint32_t>(wid);
              slot.second = arena.append(verts);
            }
          }
        }
      }
    }
  }

  stats_.numa_domains = topo.num_nodes();
  stats_.sets_per_shard.clear();
  stats_.shard_domains.clear();
  stats_.sets_per_shard.reserve(plan.shards.size());
  stats_.shard_domains.reserve(plan.shards.size());
  for (const ShardPlan::Shard& shard : plan.shards) {
    stats_.sets_per_shard.push_back(shard.size());
    stats_.shard_domains.push_back(shard.domain);
  }
  static const obs::Counter steal_counter =
      obs::counter("sampling.steals_total");
  static const obs::Counter staged_counter =
      obs::counter("sampling.staged_bytes_total");
  stats_.steals_per_shard.assign(plan.shards.size(), 0);
  std::uint64_t round_steals = 0;
  for (std::size_t s = 0; s < jobs.size(); ++s) {
    stats_.steals_per_shard[s] = jobs[s]->steal_count();
    round_steals += stats_.steals_per_shard[s];
  }
  steal_counter.add(round_steals);
  std::uint64_t staged_after = 0;
  const std::uint64_t staged_bytes_before = stats_.staged_bytes;
  stats_.staged_bytes = 0;
  stats_.mapped_bytes = 0;
  for (const ShardArena& arena : arenas) {
    staged_after += arena.runs();
    stats_.staged_bytes += arena.staged_bytes();
    stats_.mapped_bytes += arena.mapped_bytes();
  }
  if (stats_.staged_bytes > staged_bytes_before) {
    staged_counter.add(stats_.staged_bytes - staged_bytes_before);
  }
  // Every slot must have been staged exactly once; a scheduling bug here
  // would otherwise surface as silently-empty RRR sets far downstream.
  EIMM_CHECK(staged_after - staged_before == count,
             "sharded generation lost RRR slots");
}

void ShardedSampler::stage_fused(
    std::vector<ShardArena>& arenas, std::uint64_t begin, std::uint64_t end,
    CounterArray* counters,
    std::vector<std::pair<std::uint32_t, ShardArena::Ref>>& refs) {
  const std::uint64_t count = end - begin;
  const NumaTopology& topo = numa_topology();
  pin_openmp_team();

  // Plan in BLOCK units: block b owns global slots [b*64, (b+1)*64), and
  // the round covers blocks [begin/64, ceil(end/64)). A block is one
  // indivisible job, so shard boundaries never split a traversal and the
  // pool stays identical for every shard count. Only the ROUND range can
  // clip a block's lane window (martingale growth is in slots).
  const std::uint64_t block_begin = begin / kFusedLanes;
  const std::uint64_t block_end = (end + kFusedLanes - 1) / kFusedLanes;
  ShardPlan plan = ShardPlan::make(
      block_begin, block_end, config_.shards,
      static_cast<std::size_t>(omp_get_max_threads()), topo);
  std::vector<std::unique_ptr<JobPool>> jobs;
  refs.assign(count, {});
  const VertexId n = reverse_.num_vertices();
  // Batch size is configured in slots; convert to whole blocks.
  const std::size_t block_batch =
      std::max<std::size_t>(1, config_.batch_size / kFusedLanes);

  std::uint64_t staged_before = 0;
  for (const ShardArena& arena : arenas) staged_before += arena.runs();

  static const obs::Counter traversals_counter =
      obs::counter("sampler.fused.traversals_total");
  static const obs::Counter fused_sets_counter =
      obs::counter("sampler.fused.sets_total");
  static const obs::Histogram sets_per_traversal =
      obs::histogram("sampler.fused.sets_per_traversal");
  // Average lanes per touched vertex: 64 means every lane shares every
  // vertex (maximal traversal reuse), 1 means the lanes never overlapped
  // and fusion only amortized bookkeeping.
  static const obs::Histogram lane_occupancy =
      obs::histogram("sampler.fused.lane_occupancy");

  if (count > 0) {
#pragma omp parallel
    {
#pragma omp single
      {
        const auto team = static_cast<std::size_t>(omp_get_num_threads());
        if (team != plan.total_workers) {
          plan = ShardPlan::make(block_begin, block_end, config_.shards, team,
                                 topo);
        }
        jobs.reserve(plan.shards.size());
        for (const ShardPlan::Shard& shard : plan.shards) {
          jobs.push_back(std::make_unique<JobPool>(
              shard.size(), block_batch,
              std::max<std::size_t>(1, shard.worker_count)));
        }
        if (arenas.size() < plan.total_workers) {
          arenas.resize(plan.total_workers);
        }
      }  // implicit barrier: every worker sees the final plan

      const auto wid = static_cast<std::size_t>(omp_get_thread_num());
      if (wid < plan.total_workers) {
        FusedScratch scratch(n);
        ShardArena& arena = arenas[wid];
        std::uint64_t local_traversals = 0;
        std::uint64_t local_sets = 0;
        for (const std::size_t s : plan.shards_for_worker(wid)) {
          const ShardPlan::Shard& shard = plan.shards[s];
          const std::size_t local = wid - shard.first_worker;
          obs::TraceSpan span("sampler.fused", "shard",
                              static_cast<std::int64_t>(s), "domain",
                              shard.domain, "worker",
                              static_cast<std::int64_t>(wid));
          for (JobBatch batch = jobs[s]->next(local); !batch.empty();
               batch = jobs[s]->next(local)) {
            for (std::size_t j = batch.begin; j < batch.end; ++j) {
              const std::uint64_t block = shard.begin + j;
              const std::uint64_t slot_lo =
                  std::max(begin, block * kFusedLanes);
              const std::uint64_t slot_hi =
                  std::min(end, (block + 1) * kFusedLanes);
              const auto lane_lo =
                  static_cast<unsigned>(slot_lo - block * kFusedLanes);
              const auto lane_hi =
                  static_cast<unsigned>(slot_hi - block * kFusedLanes);
              std::array<ShardArena::Ref, kFusedLanes> lane_refs;
              const FusedTraversalStats tstats = sample_rrr_fused_into(
                  reverse_, config_.model, config_.rng_seed, block, lane_lo,
                  lane_hi, scratch, arena, lane_refs.data());
              for (unsigned l = lane_lo; l < lane_hi; ++l) {
                const ShardArena::Ref lane_ref = lane_refs[l - lane_lo];
                if (counters != nullptr) {
                  for (const VertexId v : arena.view(lane_ref)) {
                    counters->increment(v);
                  }
                }
                auto& slot = refs[block * kFusedLanes + l - begin];
                slot.first = static_cast<std::uint32_t>(wid);
                slot.second = lane_ref;
              }
              ++local_traversals;
              local_sets += tstats.lanes;
              sets_per_traversal.observe(tstats.lanes);
              if (tstats.touched > 0) {
                lane_occupancy.observe(tstats.members / tstats.touched);
              }
            }
          }
        }
        traversals_counter.add(local_traversals);
        fused_sets_counter.add(local_sets);
      }
    }
  }

  stats_.numa_domains = topo.num_nodes();
  stats_.sets_per_shard.clear();
  stats_.shard_domains.clear();
  stats_.sets_per_shard.reserve(plan.shards.size());
  stats_.shard_domains.reserve(plan.shards.size());
  for (const ShardPlan::Shard& shard : plan.shards) {
    // Shard sizes are in blocks here; report the slot count the shard's
    // blocks contribute to THIS round, clipped to [begin, end).
    const std::uint64_t lo =
        std::max(begin, shard.begin * kFusedLanes);
    const std::uint64_t hi = std::min(end, shard.end * kFusedLanes);
    stats_.sets_per_shard.push_back(hi > lo ? hi - lo : 0);
    stats_.shard_domains.push_back(shard.domain);
  }
  static const obs::Counter steal_counter =
      obs::counter("sampling.steals_total");
  static const obs::Counter staged_counter =
      obs::counter("sampling.staged_bytes_total");
  stats_.steals_per_shard.assign(plan.shards.size(), 0);
  std::uint64_t round_steals = 0;
  for (std::size_t s = 0; s < jobs.size(); ++s) {
    stats_.steals_per_shard[s] = jobs[s]->steal_count();
    round_steals += stats_.steals_per_shard[s];
  }
  steal_counter.add(round_steals);
  std::uint64_t staged_after = 0;
  const std::uint64_t staged_bytes_before = stats_.staged_bytes;
  stats_.staged_bytes = 0;
  stats_.mapped_bytes = 0;
  for (const ShardArena& arena : arenas) {
    staged_after += arena.runs();
    stats_.staged_bytes += arena.staged_bytes();
    stats_.mapped_bytes += arena.mapped_bytes();
  }
  if (stats_.staged_bytes > staged_bytes_before) {
    staged_counter.add(stats_.staged_bytes - staged_bytes_before);
  }
  EIMM_CHECK(staged_after - staged_before == count,
             "fused generation lost RRR slots");
}

void ShardedSampler::generate(RRRPool& pool, std::uint64_t begin,
                              std::uint64_t end, CounterArray* fused) {
  EIMM_CHECK(end >= begin, "invalid generation range");
  EIMM_CHECK(pool.size() >= end, "pool not resized for generation range");
  EIMM_CHECK(mode_ != HandOff::kZeroCopy,
             "sampler already used for zero-copy hand-off; one mode per "
             "sampler (byte accounting is per-mode)");
  mode_ = HandOff::kMerge;
  const std::uint64_t count = end - begin;

  // Merge rounds fully drain the staged data, so the arena chunks can be
  // rewound and reused — mapped_bytes plateaus at the largest round
  // while staged_bytes keeps accumulating.
  for (ShardArena& arena : merge_arenas_) arena.reset();

  std::vector<std::pair<std::uint32_t, ShardArena::Ref>> refs;
  stage(merge_arenas_, begin, end, fused, refs);
  if (count == 0) return;

  // Merge: copy every staged run into its RRRPool slot. Slot content is a
  // pure function of the global index, so the image bit-matches the
  // unsharded build no matter how the runs were staged.
  const bool adaptive = config_.adaptive_representation;
  const VertexId n = reverse_.num_vertices();
  std::uint64_t merged = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : merged)
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto& slot = refs[i];
    const std::span<const VertexId> run =
        merge_arenas_[slot.first].view(slot.second);
    std::vector<VertexId> verts(run.begin(), run.end());
    merged += run.size() * sizeof(VertexId);
    pool[begin + i] =
        adaptive ? RRRSet::make_adaptive(std::move(verts), n,
                                         config_.bitmap_threshold)
                 : RRRSet::make_vector(std::move(verts));
  }
  stats_.merged_bytes += merged;
}

void ShardedSampler::generate(SegmentedPool& pool, std::uint64_t begin,
                              std::uint64_t end, CounterArray* fused) {
  EIMM_CHECK(end >= begin, "invalid generation range");
  EIMM_CHECK(pool.size() >= end, "pool not resized for generation range");
  EIMM_CHECK(pool.num_vertices() == reverse_.num_vertices(),
             "segmented pool sized for a different graph");
  EIMM_CHECK(mode_ != HandOff::kMerge,
             "sampler already used for merge hand-off; one mode per "
             "sampler (byte accounting is per-mode)");
  mode_ = HandOff::kZeroCopy;
  const std::uint64_t count = end - begin;

  // The pool owns the arenas on this path (the staged runs ARE the pool,
  // and must outlive the sampler), so stage() appends into them without
  // ever resetting — earlier rounds' entries stay valid.
  std::vector<std::pair<std::uint32_t, ShardArena::Ref>> refs;
  pool.ensure_workers(static_cast<std::size_t>(omp_get_max_threads()));
  std::vector<ShardArena>& arenas = pool.arenas_for_staging();
  stage(arenas, begin, end, fused, refs);

  for (std::uint64_t i = 0; i < count; ++i) {
    const auto& slot = refs[i];
    pool.set_run(begin + i, arenas[slot.first].view(slot.second));
  }
}

}  // namespace eimm
