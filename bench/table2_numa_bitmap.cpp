// Table II reproduction: fraction of Generate_RRRsets core time spent on
// the visited bitmap, original vs NUMA-aware data placement (paper:
// 38-63% improvement on 5 graphs).
//
// In the paper both configurations use the same visited structure; what
// changes is WHERE its pages live (§IV-B): originally wherever the
// master thread faulted them (interleaved => ~7/8 remote on the 8-node
// testbed), NUMA-aware via mbind on the worker's node. This host has a
// single NUMA node, so the placement effect — the dominant term — is
// modeled, in the same spirit as Table IV's cache model:
//
//   1. run the real IC sampler at paper-like vertex counts (the visited
//      array must exceed the L2 so accesses reach DRAM) and capture the
//      visited-access stream through the per-thread L1/L2 cache model;
//   2. time the same run untraced for the true compute baseline, and
//      time the per-set O(|V|) clears both configurations pay;
//   3. charge the DRAM-level misses once with the remote-mix latency
//      (original placement) and once with local latency (NUMA-aware),
//      and report each configuration's share of core time.
//
// Because both shares derive from the SAME measured stream, the
// comparison has no run-to-run noise; only the latency model differs.
#include <omp.h>

#include <cstdio>
#include <iostream>
#include <vector>

#include "cachesim/cache.hpp"
#include "common.hpp"
#include "rrr/generate.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace eimm;

// Latency model (ns), EPYC-class: local DRAM ~90ns; the original
// placement is an interleaved mix, ~7/8 remote on an 8-node box. The
// BFS issues many independent visited probes per window, so DRAM-level
// misses overlap; effective cost = latency / MLP (out-of-order cores
// sustain ~8 outstanding misses).
constexpr double kL1HitNs = 1.0;
constexpr double kL2HitNs = 4.0;
constexpr double kMemoryLevelParallelism = 8.0;
constexpr double kLocalDramNs = 90.0 / kMemoryLevelParallelism;
constexpr double kRemoteMixDramNs =
    (0.875 * 140.0 + 0.125 * 90.0) / kMemoryLevelParallelism;

/// Probe feeding visited accesses (1 byte per vertex) into a per-thread
/// cache model.
struct CacheProbe {
  static thread_local CacheHierarchy* hierarchy;
  static void on_visited_access(VertexId v) noexcept {
    if (hierarchy != nullptr) {
      hierarchy->access(reinterpret_cast<const void*>(
                            static_cast<std::uintptr_t>(0x10000000u + v)),
                        1);
    }
  }
};
thread_local CacheHierarchy* CacheProbe::hierarchy = nullptr;

struct StreamProfile {
  CacheStats cache;             // visited-access cache behaviour
  double baseline_core_seconds; // untraced sampler core time
  double clear_core_seconds;    // per-set O(|V|) clears, measured
};

StreamProfile profile(const DiffusionGraph& g, std::size_t sets,
                      std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  StreamProfile p{};

  {  // Untraced pass: the honest compute baseline.
    const Timer wall;
#pragma omp parallel
    {
      SamplerScratch scratch(n);
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < sets; ++i) {
        Xoshiro256 rng = Xoshiro256::for_stream(seed, i);
        const auto root = static_cast<VertexId>(rng.next_bounded(n));
        sample_rrr_ic(g.reverse, root, rng, scratch);
      }
    }
    p.baseline_core_seconds = wall.seconds() * omp_get_max_threads();
  }

  {  // Traced pass: identical stream through the cache model.
#pragma omp parallel
    {
      CacheHierarchy hierarchy;
      CacheProbe::hierarchy = &hierarchy;
      SamplerScratch scratch(n);
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < sets; ++i) {
        Xoshiro256 rng = Xoshiro256::for_stream(seed, i);
        const auto root = static_cast<VertexId>(rng.next_bounded(n));
        sample_rrr_ic<CacheProbe>(g.reverse, root, rng, scratch);
      }
      CacheProbe::hierarchy = nullptr;
#pragma omp critical
      p.cache += hierarchy.stats();
    }
  }

  {  // Clears: both configurations wipe n bytes before every set.
    std::vector<std::uint8_t> buffer(n, 0);
    const Timer t;
    for (std::size_t i = 0; i < sets; ++i) {
      std::fill(buffer.begin(), buffer.end(),
                static_cast<std::uint8_t>(i & 1));
    }
    volatile std::uint8_t sink = buffer[0];
    (void)sink;
    // The clears are spread across the workers in a real run.
    p.clear_core_seconds = t.seconds();
  }
  return p;
}

double structure_share(const StreamProfile& p, double dram_ns) {
  const std::uint64_t l1_hits = p.cache.accesses - p.cache.l1_misses;
  const std::uint64_t l2_hits = p.cache.l1_misses - p.cache.l2_misses;
  const double structure_seconds =
      (static_cast<double>(l1_hits) * kL1HitNs +
       static_cast<double>(l2_hits) * kL2HitNs +
       static_cast<double>(p.cache.l2_misses) * dram_ns) *
          1e-9 +
      p.clear_core_seconds;
  // The untraced baseline already contains the structure's local-latency
  // cost; remove it before composing the modeled share.
  const double in_situ_seconds =
      (static_cast<double>(l1_hits) * kL1HitNs +
       static_cast<double>(l2_hits) * kL2HitNs +
       static_cast<double>(p.cache.l2_misses) * kLocalDramNs) *
          1e-9 +
      p.clear_core_seconds;
  const double rest = std::max(p.baseline_core_seconds - in_situ_seconds,
                               0.05 * p.baseline_core_seconds);
  return structure_seconds / (rest + structure_seconds);
}

}  // namespace

int main() {
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner(
      "Table II: visited-bitmap core-time share, original vs NUMA-aware",
      config);

  // The visited array must clearly exceed the (512 KiB) L2 for placement
  // to matter, as it does on the paper's 0.3M-4M-vertex graphs. 1.2M
  // keeps the R-MAT families (which round to powers of two) above 1M.
  const auto target_nodes = static_cast<double>(
      env_int("EIMM_T2_NODES", 1'200'000));
  constexpr std::size_t kSets = 48;

  const char* datasets[] = {"com-Amazon", "com-YouTube", "soc-Pokec",
                            "com-LJ", "web-Google"};
  const double paper_improvement[] = {38, 38, 63, 60, 53};

  eimm::AsciiTable table({"Graph", "Nodes", "Original %", "NUMA-aware %",
                          "Improvement %", "Paper improv. %"});
  int row = 0;
  for (const char* name : datasets) {
    const auto spec = eimm::find_workload(name);
    const double scale = target_nodes / spec->base_nodes;
    const eimm::DiffusionGraph g = eimm::make_workload_with_weights(
        name, eimm::DiffusionModel::kIndependentCascade, scale,
        config.rng_seed);
    const StreamProfile p = profile(g, kSets, config.rng_seed);
    const double original = structure_share(p, kRemoteMixDramNs);
    const double aware = structure_share(p, kLocalDramNs);
    const double improvement = 100.0 * (1.0 - aware / original);
    table.new_row()
        .add(name)
        .add(static_cast<std::uint64_t>(g.num_vertices()))
        .add(100.0 * original, 1)
        .add(100.0 * aware, 1)
        .add(improvement, 0)
        .add(paper_improvement[row++], 0);
    std::printf("  profiled %-12s: %llu visited accesses, %.1f%% DRAM\n",
                name, static_cast<unsigned long long>(p.cache.accesses),
                100.0 * static_cast<double>(p.cache.l2_misses) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, p.cache.accesses)));
  }
  std::printf("\n");
  table.set_title(
      "Table II (measured sampler stream + modeled placement latency)");
  table.print(std::cout);
  std::printf(
      "\nShape check: local placement cuts the bitmap's share of core\n"
      "time on every dataset (direction matches the paper everywhere).\n"
      "The latency-only model understates the paper's 38-63%% because it\n"
      "omits coherence and bandwidth-contention effects of remote pages;\n"
      "what is measured vs modeled is documented in the header and\n"
      "EXPERIMENTS.md.\n");
  return 0;
}
