#include "support/macros.hpp"

#include <gtest/gtest.h>

namespace eimm {
namespace {

TEST(Check, PassesOnTrue) {
  EXPECT_NO_THROW(EIMM_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(EIMM_CHECK(true, "with message"));
}

TEST(Check, ThrowsCheckErrorOnFalse) {
  EXPECT_THROW(EIMM_CHECK(false), CheckError);
}

TEST(Check, MessageContainsExpressionAndContext) {
  try {
    EIMM_CHECK(2 > 3, "two is not greater");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater"), std::string::npos);
    EXPECT_NE(what.find("macros_test.cpp"), std::string::npos);
  }
}

TEST(Check, CheckErrorIsLogicError) {
  EXPECT_THROW(EIMM_CHECK(false), std::logic_error);
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto count = [&]() {
    ++calls;
    return true;
  };
  EIMM_CHECK(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace eimm
