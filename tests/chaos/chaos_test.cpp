// Chaos harness: a live SketchServer under deterministic fault
// schedules, hammered by concurrent clients. The serving contract under
// chaos is absolute — every request either returns seeds bit-identical
// to a direct QueryEngine call on the same store, or fails with a typed
// retryable error. Never a wrong answer, never a crash, and a reload
// storm never fails an in-flight query.
//
// Run just this harness with `ctest -L chaos`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_engine.hpp"
#include "serve/server.hpp"
#include "serve/sketch_store.hpp"
#include "support/failpoint.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

// One store for the whole harness: the chaos is in the serving path,
// not the build.
const SketchStore& shared_store() {
  static const SketchStore store = [] {
    const DiffusionGraph g = make_workload_with_weights(
        "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
    ImmOptions options;
    options.k = 6;
    options.max_rrr_sets = 4096;
    return SketchStore::build(g, options, "amazon-chaos");
  }();
  return store;
}

struct ChaosTally {
  std::atomic<std::uint64_t> correct{0};
  std::atomic<std::uint64_t> typed_failures{0};
  std::atomic<std::uint64_t> wrong_answers{0};
  std::atomic<std::uint64_t> untyped_failures{0};
};

// Each worker runs `queries` requests with its own retrying client and
// classifies every outcome. Expected answers are precomputed so the
// workers only compare.
void run_clients(const std::string& socket_path, const RetryOptions& retry,
                 int clients, int queries,
                 const std::vector<std::vector<VertexId>>& expected,
                 ChaosTally& tally) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      try {
        RetryOptions my_retry = retry;
        my_retry.rng_seed = 0x517cc1b727220a95ull + static_cast<unsigned>(c);
        SketchClient client(socket_path, my_retry);
        for (int q = 0; q < queries; ++q) {
          const std::size_t k = 1 + static_cast<std::size_t>((c + q) %
                                                             expected.size());
          try {
            const QueryResult served = client.top_k(k);
            if (served.seeds == expected[k - 1]) {
              tally.correct.fetch_add(1, std::memory_order_relaxed);
            } else {
              tally.wrong_answers.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const TransientError&) {
            tally.typed_failures.fetch_add(1, std::memory_order_relaxed);
          } catch (const DeadlineExceededError&) {
            tally.typed_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const CheckError&) {
        // Construction failed (e.g. connect refused under chaos):
        // typed, so the contract holds, but count every query the
        // worker never ran.
        tally.typed_failures.fetch_add(static_cast<std::uint64_t>(queries),
                                       std::memory_order_relaxed);
      } catch (...) {
        tally.untyped_failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();
}

class ChaosFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::disarm_all();
    fail::set_seed(42);  // fixed chaos schedule, run to run
    engine_ = std::make_unique<QueryEngine>(shared_store());
    expected_.clear();
    for (std::size_t k = 1; k <= shared_store().k_max(); ++k) {
      expected_.push_back(engine_->top_k(k).seeds);
    }
    ServerOptions options;
    options.socket_path = ::testing::TempDir() + "/eimm_chaos_" +
                          std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
                          ".sock";
    snapshot_path_ = ::testing::TempDir() + "/eimm_chaos_store.sks";
    shared_store().save_file(snapshot_path_);
    options.snapshot_path = snapshot_path_;
    server_ = std::make_unique<SketchServer>(shared_store(), options);
    server_->start();
  }

  void TearDown() override {
    fail::disarm_all();
    fail::set_seed(0);
    if (server_) server_->stop();
  }

  static RetryOptions chaos_retry() {
    RetryOptions retry;
    retry.max_attempts = 10;
    retry.initial_backoff = std::chrono::milliseconds(1);
    retry.max_backoff = std::chrono::milliseconds(20);
    return retry;
  }

  void expect_contract_held(const ChaosTally& tally,
                            std::uint64_t total) const {
    // The two absolutes: nothing wrong, nothing untyped.
    EXPECT_EQ(tally.wrong_answers.load(), 0u);
    EXPECT_EQ(tally.untyped_failures.load(), 0u);
    EXPECT_EQ(tally.correct.load() + tally.typed_failures.load(), total);
    // And the retries must actually converge: chaos degrades latency,
    // not availability, at these failure rates.
    EXPECT_GT(tally.correct.load(), total * 8 / 10);
  }

  std::unique_ptr<QueryEngine> engine_;
  std::vector<std::vector<VertexId>> expected_;
  std::string snapshot_path_;
  std::unique_ptr<SketchServer> server_;
};

TEST_F(ChaosFixture, AdmissionRejectionStorm) {
  fail::configure("serve.admit:error:40");
  ChaosTally tally;
  run_clients(server_->socket_path(), chaos_retry(), 4, 8, expected_, tally);
  expect_contract_held(tally, 4 * 8);
  EXPECT_GT(fail::stats("serve.admit").fires, 0u);
}

TEST_F(ChaosFixture, ConnectionDropStorm) {
  fail::configure("serve.conn.recv:error:15,serve.conn.send:error:15");
  ChaosTally tally;
  run_clients(server_->socket_path(), chaos_retry(), 4, 8, expected_, tally);
  expect_contract_held(tally, 4 * 8);
  EXPECT_GT(fail::stats("serve.conn.recv").fires +
                fail::stats("serve.conn.send").fires,
            0u);
}

TEST_F(ChaosFixture, DecodeFaultsWithDelayJitter) {
  fail::configure("serve.wire.decode:error:25,serve.admit:delay:2");
  ChaosTally tally;
  run_clients(server_->socket_path(), chaos_retry(), 4, 8, expected_, tally);
  expect_contract_held(tally, 4 * 8);
}

TEST_F(ChaosFixture, ClientSideTransportChaos) {
  fail::configure("client.send:error:20,client.recv:error:20");
  ChaosTally tally;
  run_clients(server_->socket_path(), chaos_retry(), 4, 8, expected_, tally);
  expect_contract_held(tally, 4 * 8);
}

TEST_F(ChaosFixture, ReloadStormNeverFailsInFlightQueries) {
  // Plain single-shot clients — no retry shield. The epoch handoff
  // alone must keep every query correct while generations churn.
  std::atomic<bool> done{false};
  std::thread reloader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      server_->reload_from();  // re-reads the configured snapshot
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  ChaosTally tally;
  run_clients(server_->socket_path(), RetryOptions{}, 4, 8, expected_,
              tally);
  done.store(true);
  reloader.join();

  EXPECT_EQ(tally.wrong_answers.load(), 0u);
  EXPECT_EQ(tally.untyped_failures.load(), 0u);
  // No fault injection here: with nothing armed, every single query
  // must succeed despite the generation churn.
  EXPECT_EQ(tally.correct.load(), 4u * 8u);
  EXPECT_GT(server_->generation(), 1u);
}

TEST_F(ChaosFixture, CorruptReloadUnderLoadKeepsServing) {
  // A corrupt replacement snapshot keeps getting pushed while clients
  // query: every reload must fail cleanly, every query must answer from
  // the surviving generation.
  const std::string corrupt_path =
      ::testing::TempDir() + "/eimm_chaos_corrupt.sks";
  {
    std::ifstream is(snapshot_path_, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string data = buf.str();
    std::uint64_t offset = 0;
    std::memcpy(&offset, data.data() + 24 + 2 * 24 + 8, 8);
    data[offset] = static_cast<char>(data[offset] ^ 0x08);
    std::ofstream os(corrupt_path, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> failed_reloads{0};
  std::thread reloader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      try {
        server_->reload_from(corrupt_path);
      } catch (const CheckError&) {
        failed_reloads.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  ChaosTally tally;
  run_clients(server_->socket_path(), RetryOptions{}, 4, 8, expected_,
              tally);
  done.store(true);
  reloader.join();

  EXPECT_EQ(tally.wrong_answers.load(), 0u);
  EXPECT_EQ(tally.correct.load(), 4u * 8u);
  EXPECT_GT(failed_reloads.load(), 0u);
  EXPECT_EQ(server_->generation(), 1u);  // nothing corrupt ever swapped in
  EXPECT_GE(server_->registry().failed_reloads(), failed_reloads.load());
}

TEST_F(ChaosFixture, CombinedScheduleEndToEnd) {
  // Everything at once, driven through the same EIMM_FAILPOINTS grammar
  // CI uses: admission errors, connection drops, decode faults, and
  // delay jitter — plus a reload mid-storm.
  fail::configure(
      "serve.admit:error:25,serve.conn.recv:error:10,"
      "serve.wire.decode:error:10,serve.conn.send:delay:1");
  ChaosTally tally;
  std::thread reloader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
      server_->reload_from();
    } catch (const CheckError&) {
      // A reload racing an injected connection fault may fail; the
      // serving contract below is what matters.
    }
  });
  run_clients(server_->socket_path(), chaos_retry(), 4, 8, expected_, tally);
  reloader.join();
  expect_contract_held(tally, 4 * 8);
}

}  // namespace
}  // namespace eimm
