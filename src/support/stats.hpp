// Small descriptive-statistics helpers for bench reporting (best/median
// runtimes, coverage percentiles in Table I).
#pragma once

#include <cstddef>
#include <vector>

namespace eimm {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation; sorts a copy.
double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
inline double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

}  // namespace eimm
