#include "io/mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/failpoint.hpp"
#include "support/macros.hpp"

namespace eimm {

namespace {

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw CheckError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile MappedFile::open_readonly(const std::string& path) {
  if (fail::inject("io.mmap.open")) {
    // kTrunc at this site models a file that vanished or shrank under us.
    throw CheckError("injected truncated mapping for '" + path + "'");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_errno("cannot open file for mapping", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail_errno("cannot stat file for mapping", path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw CheckError("cannot map zero-length file '" + path + "'");
  }

  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping pins the inode; the descriptor is no longer needed either
  // way, so close before checking the result.
  ::close(fd);
  if (base == MAP_FAILED) fail_errno("cannot mmap file", path);

  MappedFile file;
  file.data_ = static_cast<const std::uint8_t*>(base);
  file.size_ = size;
  return file;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace eimm
