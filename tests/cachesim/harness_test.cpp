#include "cachesim/harness.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

RRRPool dense_pool() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.02, 5);
  return testing::sample_pool(g, DiffusionModel::kIndependentCascade, 150,
                              77);
}

TEST(TracedSelection, SeedsMatchUntracedKernels) {
  const RRRPool pool = dense_pool();
  SelectionOptions options;
  options.k = 5;
  options.dynamic_balance = false;
  CounterArray counters(pool.num_vertices());
  const auto untraced = efficient_select(pool, counters, options);

  const auto traced =
      run_traced_selection(Engine::kEfficient, pool, 5, /*threads=*/2);
  EXPECT_EQ(traced.selection.seeds, untraced.seeds);
}

TEST(TracedSelection, RipplesSeedsMatchToo) {
  const RRRPool pool = dense_pool();
  SelectionOptions options;
  options.k = 5;
  const auto untraced = ripples_select(pool, options);
  const auto traced =
      run_traced_selection(Engine::kRipples, pool, 5, /*threads=*/2);
  EXPECT_EQ(traced.selection.seeds, untraced.seeds);
}

TEST(TracedSelection, RecordsAccesses) {
  const RRRPool pool = dense_pool();
  const auto report =
      run_traced_selection(Engine::kEfficient, pool, 3, /*threads=*/1);
  EXPECT_GT(report.cache.accesses, 0u);
  EXPECT_GT(report.cache.l1_misses, 0u);
  EXPECT_LE(report.cache.l2_misses, report.cache.l1_misses);
  EXPECT_GE(report.traced_threads, 1u);
}

TEST(TracedSelection, RipplesTrafficGrowsWithThreads) {
  // The baseline's defining pathology (Challenge 1): every thread scans
  // every RRR set and binary-searches its vertex range, so the probe
  // traffic replicates with the thread count (the member walks stay
  // partitioned, so total access growth is sublinear but must be real).
  const RRRPool pool = dense_pool();
  const auto t1 = run_traced_selection(Engine::kRipples, pool, 3, 1);
  const auto t4 = run_traced_selection(Engine::kRipples, pool, 3, 4);
  EXPECT_GT(t4.cache.accesses, t1.cache.accesses);
  // The efficient kernel has no such replication: its t4/t1 access ratio
  // must be strictly smaller than the baseline's.
  const auto e1 = run_traced_selection(Engine::kEfficient, pool, 3, 1);
  const auto e4 = run_traced_selection(Engine::kEfficient, pool, 3, 4);
  const double ripples_growth = static_cast<double>(t4.cache.accesses) /
                                static_cast<double>(t1.cache.accesses);
  const double efficient_growth = static_cast<double>(e4.cache.accesses) /
                                  static_cast<double>(e1.cache.accesses);
  EXPECT_LT(efficient_growth, ripples_growth);
}

TEST(TracedSelection, EfficientTrafficRoughlyThreadInvariant) {
  const RRRPool pool = dense_pool();
  const auto t1 = run_traced_selection(Engine::kEfficient, pool, 3, 1);
  const auto t4 = run_traced_selection(Engine::kEfficient, pool, 3, 4);
  // RRR-set partitioning: total work is split, not replicated. Allow a
  // generous factor for the per-round survey/argmax overheads.
  EXPECT_LT(static_cast<double>(t4.cache.accesses),
            1.5 * static_cast<double>(t1.cache.accesses));
}

TEST(TracedSelection, EfficientBeatsRipplesOnMisses) {
  // The Table IV headline at test scale: with several threads, the
  // RRR-partitioned kernel must take far fewer L1+L2 misses.
  const RRRPool pool = dense_pool();
  const auto efficient =
      run_traced_selection(Engine::kEfficient, pool, 5, 4);
  const auto ripples = run_traced_selection(Engine::kRipples, pool, 5, 4);
  EXPECT_LT(efficient.cache.l1_plus_l2_misses(),
            ripples.cache.l1_plus_l2_misses());
}

TEST(TraceSession, NestedSessionsRejected) {
  TraceSession outer;
  EXPECT_THROW(TraceSession inner, CheckError);
}

TEST(TraceMem, TouchOutsideSessionIsNoop) {
  int x = 0;
  TraceMem::touch(&x, sizeof x);  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace eimm
