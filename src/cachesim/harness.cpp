#include "cachesim/harness.hpp"

#include "runtime/thread_info.hpp"
#include "seedselect/engine.hpp"

namespace eimm {

TracedSelectionReport run_traced_selection(Engine engine,
                                           const RRRPoolView& pool,
                                           std::size_t k, int threads,
                                           const CacheConfig& config) {
  ThreadCountScope scope(threads);
  TracedSelectionReport report;

  SelectionOptions options;
  options.k = k;
  options.adaptive_update = engine == Engine::kEfficient;
  options.dynamic_balance = false;  // keep the trace schedule-stable
  options.counters_prebuilt = false;

  // Route through the SelectionEngine's traced entry point (flat
  // counters, no pinning) so the cache model keeps observing the paper's
  // Algorithm 2 layout while the engine subsystem owns the kernels.
  SelectionEngineConfig engine_config;
  engine_config.counter_shards = 1;
  engine_config.pin = PinMode::kNone;
  const SelectionEngine selection(engine_config);

  TraceSession session(config);
  if (engine == Engine::kEfficient) {
    CounterArray counters(pool.num_vertices(), MemPolicy::kDefault);
    report.selection = selection.select_traced<TraceMem>(
        SelectionKernel::kEfficient, pool, options, &counters);
  } else {
    report.selection = selection.select_traced<TraceMem>(
        SelectionKernel::kRipples, pool, options);
  }
  report.cache = session.aggregate();
  report.traced_threads = session.thread_count();
  return report;
}

}  // namespace eimm
