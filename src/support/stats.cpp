#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace eimm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace eimm
