#include "rrr/compressed.hpp"

#include <algorithm>

namespace eimm {

void CompressedSet::write_varint(std::vector<std::uint8_t>& out,
                                 std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t CompressedSet::read_varint(std::size_t& pos) const noexcept {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = bytes_[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

CompressedSet CompressedSet::encode(std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());

  CompressedSet set;
  set.count_ = vertices.size();
  set.bytes_.reserve(vertices.size() * 2);  // typical gap fits 1-2 bytes
  VertexId previous = 0;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const std::uint64_t encoded =
        (i == 0) ? static_cast<std::uint64_t>(vertices[i]) + 1
                 : static_cast<std::uint64_t>(vertices[i] - previous);
    write_varint(set.bytes_, encoded);
    previous = vertices[i];
  }
  set.bytes_.shrink_to_fit();
  return set;
}

bool CompressedSet::contains(VertexId v) const noexcept {
  std::size_t pos = 0;
  VertexId current = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::uint64_t value = read_varint(pos);
    current = (i == 0) ? static_cast<VertexId>(value - 1)
                       : static_cast<VertexId>(current + value);
    if (current == v) return true;
    if (current > v) return false;  // sorted: passed the target
  }
  return false;
}

std::vector<VertexId> CompressedSet::decode() const {
  std::vector<VertexId> out;
  out.reserve(count_);
  for_each([&](VertexId v) { out.push_back(v); });
  return out;
}

}  // namespace eimm
