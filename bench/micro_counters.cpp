// Microbenchmarks for the global-counter design space of Algorithm 2:
//  - shared atomic counters (EfficientIMM's choice: one fetch_add per
//    member, 64-bit granularity),
//  - per-thread private counters + merge (the memory-hungry alternative),
//  - a single padded atomic hammered by all threads (worst-case
//    contention reference point).
#include <benchmark/benchmark.h>
#include <omp.h>

#include <vector>

#include "runtime/atomic_counters.hpp"
#include "support/rng.hpp"

namespace {

using namespace eimm;

constexpr std::size_t kVertices = 1 << 16;
constexpr std::size_t kUpdates = 1 << 20;

std::vector<std::uint32_t> random_targets() {
  std::vector<std::uint32_t> targets(kUpdates);
  Xoshiro256 rng(42);
  for (auto& t : targets) {
    t = static_cast<std::uint32_t>(rng.next_bounded(kVertices));
  }
  return targets;
}

void BM_SharedAtomicCounters(benchmark::State& state) {
  const auto targets = random_targets();
  CounterArray counters(kVertices);
  for (auto _ : state) {
    counters.reset();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < targets.size(); ++i) {
      counters.increment(targets[i]);
    }
    benchmark::DoNotOptimize(counters.get(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUpdates));
}
BENCHMARK(BM_SharedAtomicCounters)->Unit(benchmark::kMillisecond);

void BM_PerThreadCountersPlusMerge(benchmark::State& state) {
  const auto targets = random_targets();
  const auto threads = static_cast<std::size_t>(omp_get_max_threads());
  for (auto _ : state) {
    std::vector<std::vector<std::uint64_t>> locals(
        threads, std::vector<std::uint64_t>(kVertices, 0));
    std::vector<std::uint64_t> merged(kVertices, 0);
#pragma omp parallel
    {
      auto& local = locals[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < targets.size(); ++i) {
        local[targets[i]]++;
      }
#pragma omp for schedule(static)
      for (std::size_t v = 0; v < kVertices; ++v) {
        std::uint64_t sum = 0;
        for (std::size_t t = 0; t < threads; ++t) sum += locals[t][v];
        merged[v] = sum;
      }
    }
    benchmark::DoNotOptimize(merged[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUpdates));
}
BENCHMARK(BM_PerThreadCountersPlusMerge)->Unit(benchmark::kMillisecond);

void BM_SingleAtomicContention(benchmark::State& state) {
  CounterArray counters(1);
  for (auto _ : state) {
    counters.reset();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < kUpdates; ++i) {
      counters.increment(0);
    }
    benchmark::DoNotOptimize(counters.get(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUpdates));
}
BENCHMARK(BM_SingleAtomicContention)->Unit(benchmark::kMillisecond);

}  // namespace
