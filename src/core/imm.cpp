#include "core/imm.hpp"

#include <omp.h>

#include <algorithm>
#include <optional>

#include "core/martingale.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_info.hpp"
#include "runtime/work_queue.hpp"
#include "rrr/generate.hpp"
#include "rrr/pool.hpp"
#include "rrr/sharded.hpp"
#include "seedselect/engine.hpp"
#include "support/macros.hpp"
#include "support/timer.hpp"

namespace eimm {
namespace {

/// Builds pool slots [begin, end) through the legacy single-path loop
/// (the sharded path stages into a SegmentedPool instead — see
/// build_rrr_pool). Under kernel fusion (fused != nullptr) each freshly
/// sampled set also increments the base counter in place — Algorithm 3
/// lines 14-16 — while its vertices are still cache-hot.
void generate_rrr_range(RRRPool& pool, const CSRGraph& reverse,
                        const ImmOptions& opt, Engine engine,
                        std::uint64_t begin, std::uint64_t end,
                        CounterArray* fused) {
  const VertexId n = reverse.num_vertices();
  const bool adaptive =
      engine == Engine::kEfficient && opt.adaptive_representation;

  auto build_one = [&](std::uint64_t index, SamplerScratch& scratch) {
    std::vector<VertexId> verts =
        sample_rrr(reverse, opt.model, opt.rng_seed, index, scratch);
    if (fused != nullptr) {
      for (const VertexId v : verts) fused->increment(v);
    }
    pool[index] = adaptive
                      ? RRRSet::make_adaptive(std::move(verts), n,
                                              opt.bitmap_threshold)
                      : RRRSet::make_vector(std::move(verts));
  };

  if (engine == Engine::kEfficient && opt.dynamic_balance) {
    const auto workers = static_cast<std::size_t>(omp_get_max_threads());
    JobPool jobs(end - begin, opt.batch_size, workers);
#pragma omp parallel
    {
      SamplerScratch scratch(n);
      const auto wid = static_cast<std::size_t>(omp_get_thread_num());
      for (JobBatch batch = jobs.next(wid); !batch.empty();
           batch = jobs.next(wid)) {
        for (std::size_t j = batch.begin; j < batch.end; ++j) {
          build_one(begin + j, scratch);
        }
      }
    }
  } else {
    // Baseline: static θ/p split, the parallelization §II-B describes.
#pragma omp parallel
    {
      SamplerScratch scratch(n);
#pragma omp for schedule(static)
      for (std::uint64_t i = begin; i < end; ++i) {
        build_one(i, scratch);
      }
    }
  }
}

/// Counter shards this run's selection phase uses: the ripples baseline
/// and the --no-numa ablation both force the legacy flat layout (the
/// whole sharded-counter machinery is a NUMA feature, so the numa_aware
/// flag must gate it for the ablation benches to measure anything).
int resolved_counter_shards(const ImmOptions& options, Engine engine) {
  if (engine != Engine::kEfficient || !options.numa_aware) return 1;
  return resolve_counter_shards(options.counter_shards);
}

/// The selection-phase engine for one run: pinned thread team, counter
/// layout (flat vs domain-sharded) resolved from the options/environment.
SelectionEngine make_selection_engine(const ImmOptions& options,
                                      Engine engine) {
  SelectionEngineConfig config;
  config.counter_shards = resolved_counter_shards(options, engine);
  config.counter_policy = (engine == Engine::kEfficient && options.numa_aware)
                              ? MemPolicy::kInterleave
                              : MemPolicy::kDefault;
  return SelectionEngine(config);
}

/// One greedy selection pass over the build, consuming whichever storage
/// backs it IN PLACE through the pool view (no flattening) and reusing
/// both the fused base counters and the build's SelectionWorkspace.
/// Shared by the probing loop and the final selection so both see
/// identical SelectionOptions and the whole run performs exactly one
/// counter-layout allocation.
SelectionResult select_over_build(PoolBuild& build, const ImmOptions& options,
                                  Engine engine) {
  SelectionOptions sopt;
  sopt.k = options.k;
  sopt.adaptive_update =
      engine == Engine::kEfficient && options.adaptive_update;
  sopt.dynamic_balance =
      engine == Engine::kEfficient && options.dynamic_balance;
  sopt.batch_size = options.batch_size;
  const SelectionEngine selection = make_selection_engine(options, engine);
  if (engine == Engine::kEfficient) {
    return selection.select(
        SelectionKernel::kEfficient, build.view(), sopt,
        build.counters_prebuilt ? &build.base_counters : nullptr,
        &build.workspace);
  }
  return selection.select(SelectionKernel::kRipples, build.view(), sopt,
                          nullptr, &build.workspace);
}

/// Registry handles for the pipeline-level metrics; registered once per
/// process (the factories are idempotent anyway).
struct CoreMetrics {
  obs::Counter runs = obs::counter("imm.runs_total");
  obs::Counter sets = obs::counter("sampling.sets_total");
  obs::Histogram generate_us = obs::histogram("sampling.generate_us");
  obs::Gauge pool_sets = obs::gauge("imm.pool_sets");
  obs::Gauge pool_bytes = obs::gauge("imm.rrr_memory_bytes");
};

CoreMetrics& core_metrics() {
  static CoreMetrics m;
  return m;
}

}  // namespace

PoolBuild build_rrr_pool(const DiffusionGraph& graph,
                         const ImmOptions& options, Engine engine) {
  EIMM_CHECK(graph.reverse.has_weights(),
             "assign diffusion weights to graph.reverse before run_imm");
  const VertexId n = graph.num_vertices();
  EIMM_CHECK(n >= 2, "graph too small");

  ThreadCountScope thread_scope(options.threads);

  const MartingaleParams params =
      compute_martingale_params(n, options.k, options.epsilon, options.ell);

  const bool use_fusion =
      engine == Engine::kEfficient && options.kernel_fusion;
  const MemPolicy policy = (engine == Engine::kEfficient && options.numa_aware)
                               ? MemPolicy::kInterleave
                               : MemPolicy::kDefault;

  PoolBuild build;
  build.pool = RRRPool(n);
  if (use_fusion) {
    build.base_counters = CounterArray(n, policy);
    build.counters_prebuilt = true;
  }
  build.shards_used =
      engine == Engine::kEfficient ? resolve_shards(options.shards) : 1;
  // Fused sampling stages through the ShardedSampler even at shards == 1
  // (its traversals emit arena runs, not RRRPool slots), so it forces
  // the segmented zero-copy storage path.
  build.fused_sampling_used =
      engine == Engine::kEfficient &&
      resolve_fused_sampling(options.fused_sampling);
  build.segmented = build.shards_used > 1 || build.fused_sampling_used;

  // Compressed backing (kEfficient only): rounds are gap-coded into
  // build.cpool as they land, and the raw staging storage is recycled,
  // so the resident pool is the compressed image plus ONE round of raw
  // staging. Selection and probing read the compressed view; contents
  // are identical, so seeds are too.
  const PoolCompression compression =
      engine == Engine::kEfficient
          ? resolve_pool_compression(options.pool_compress)
          : PoolCompression::kNone;
  build.compressed = compression != PoolCompression::kNone;
  if (build.compressed) {
    build.cpool = CompressedPool(n, compression == PoolCompression::kHuffman
                                        ? PoolCodec::kHuffman
                                        : PoolCodec::kVarint);
  }

  // The sharded sampler persists across the martingale rounds: its
  // arenas (owned by build.segments on the zero-copy path) keep
  // accumulating staged runs, and selection reads them in place through
  // build.view() — the merge copy the PR 3 pipeline paid is gone.
  std::optional<ShardedSampler> sampler;
  if (build.segmented) {
    build.segments = SegmentedPool(n);
    ShardedConfig config;
    config.shards = build.shards_used;
    config.model = options.model;
    config.rng_seed = options.rng_seed;
    config.batch_size = options.batch_size;
    config.fused = build.fused_sampling_used;
    // adaptive_representation/bitmap_threshold are merge-path knobs: the
    // zero-copy path always keeps sorted runs (see ImmOptions docs).
    sampler.emplace(graph.reverse, config);
  }

  std::uint64_t generated = 0;

  auto generate_to = [&](std::uint64_t target) {
    target = cap_theta_request(target, options.max_rrr_sets,
                               build.theta_capped);
    if (target <= generated) return;
    ScopedAccumulator acc(build.sampling_seconds);
    obs::TraceSpan span("sampling.generate", "from",
                        static_cast<std::int64_t>(generated), "to",
                        static_cast<std::int64_t>(target), "shards",
                        build.shards_used);
    Timer generate_timer;
    if (build.segmented) {
      build.segments.resize(target);
      sampler->generate(build.segments, generated, target,
                        use_fusion ? &build.base_counters : nullptr);
      build.shard_stats = sampler->stats();
    } else {
      build.pool.resize(target);
      generate_rrr_range(build.pool, graph.reverse, options, engine,
                         generated, target,
                         use_fusion ? &build.base_counters : nullptr);
    }
    core_metrics().sets.add(target - generated);
    core_metrics().generate_us.observe(generate_timer.nanos() / 1000);
    if (build.compressed) {
      // Encode the fresh round, then recycle its raw staging storage.
      // Fused base counters were already incremented during generation,
      // so dropping the raw sets loses nothing the kernels need.
      const RRRPoolView staged = build.segmented
                                     ? RRRPoolView(build.segments)
                                     : RRRPoolView(build.pool);
      build.cpool.append(staged, generated, target);
      if (build.segmented) {
        build.segments.reset_arenas();
      } else {
        for (std::uint64_t i = generated; i < target; ++i) {
          build.pool[i] = RRRSet();
        }
      }
    }
    generated = target;
  };

  auto probe_coverage = [&]() -> double {
    ScopedAccumulator acc(build.probing_selection_seconds);
    obs::TraceSpan span("selection.probe");
    return select_over_build(build, options, engine).coverage_fraction();
  };

  // --- Sampling phase: probe OPT guesses x_i = n / 2^i, then Set Theta ---
  build.theta = run_martingale_probing(
      params, generate_to, probe_coverage,
      [&](const MartingaleIteration& record) {
        build.iterations.push_back(record);
      });
  return build;
}

ImmResult run_imm(const DiffusionGraph& graph, const ImmOptions& options,
                  Engine engine) {
  ThreadCountScope thread_scope(options.threads);
  Timer total_timer;
  obs::TraceSpan run_span("run_imm", "k", static_cast<std::int64_t>(options.k));

  PoolBuild build = build_rrr_pool(graph, options, engine);
  const RRRPoolView view = build.view();
  const VertexId n = view.num_vertices();
  core_metrics().pool_sets.set(static_cast<std::int64_t>(view.size()));
  core_metrics().pool_bytes.set(
      static_cast<std::int64_t>(view.memory_bytes()));

  PhaseBreakdown breakdown;
  breakdown.sampling_seconds = build.sampling_seconds;
  breakdown.selection_seconds = build.probing_selection_seconds;

  // --- Selection phase ---
  SelectionResult final_selection;
  {
    ScopedAccumulator acc(breakdown.selection_seconds);
    obs::TraceSpan span("selection.final", "k",
                        static_cast<std::int64_t>(options.k));
    final_selection = select_over_build(build, options, engine);
  }
  core_metrics().runs.add();

  ImmResult result;
  result.iterations = std::move(build.iterations);
  result.seeds = final_selection.seeds;
  result.coverage_fraction = final_selection.coverage_fraction();
  result.estimated_spread =
      static_cast<double>(n) * result.coverage_fraction;
  result.theta = build.theta;
  result.num_rrr_sets = view.size();
  result.theta_capped = build.theta_capped;
  result.rrr_memory_bytes = view.memory_bytes();
  result.bitmap_sets = view.bitmap_count();
  result.rebuild_rounds = final_selection.rebuild_rounds;
  result.threads_used = omp_get_max_threads();
  result.shards_used = build.shards_used;
  result.fused_sampling_used = build.fused_sampling_used;
  result.counter_shards_used = resolved_counter_shards(options, engine);
  result.counter_layout_allocations = build.workspace.counter_allocations();
  result.staged_bytes = build.shard_stats.staged_bytes;
  result.mapped_bytes = build.shard_stats.mapped_bytes;
  result.merged_bytes = build.shard_stats.merged_bytes;
  if (build.compressed) {
    result.pool_compression_used = build.cpool.codec() == PoolCodec::kHuffman
                                       ? PoolCompression::kHuffman
                                       : PoolCompression::kVarint;
    result.compressed_payload_bytes = build.cpool.payload_bytes();
    result.encode_seconds = build.cpool.encode_seconds();
  }
  breakdown.total_seconds = total_timer.seconds();
  result.breakdown = breakdown;
  return result;
}

}  // namespace eimm
