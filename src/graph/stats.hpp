// Descriptive graph statistics used by Table 1, the workload registry
// self-checks, and the dataset documentation.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace eimm {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  EdgeId max_out_degree = 0;
  double avg_out_degree = 0.0;
  /// Fraction of edges incident (outgoing) to the top 1% highest-degree
  /// vertices — the skew proxy the adaptive optimizations react to.
  double top1pct_degree_share = 0.0;
  /// Size of the largest SCC as a fraction of |V| (drives RRR coverage).
  double largest_scc_fraction = 0.0;
};

/// Computes stats; `with_scc` toggles the (more expensive) SCC pass.
GraphStats compute_graph_stats(const CSRGraph& g, bool with_scc = true);

/// One-line human-readable summary for logs and examples.
std::string describe(const GraphStats& s);

}  // namespace eimm
