#include "rrr/sharded.hpp"

#include <omp.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "rrr/generate.hpp"
#include "runtime/affinity.hpp"
#include "runtime/partition.hpp"
#include "runtime/work_queue.hpp"
#include "support/env.hpp"
#include "support/macros.hpp"

namespace eimm {

int resolve_shards(int requested) {
  if (requested > 0) return requested;
  const std::int64_t env = env_int("EIMM_SHARDS", 0);
  if (env > 0) {
    return static_cast<int>(
        std::min<std::int64_t>(env, std::numeric_limits<int>::max()));
  }
  return numa_topology().num_nodes();
}

ShardPlan ShardPlan::make(std::uint64_t begin, std::uint64_t end,
                          int num_shards, std::size_t num_workers,
                          const NumaTopology& topo) {
  EIMM_CHECK(end >= begin, "invalid shard range");
  const auto shards = static_cast<std::size_t>(std::max(1, num_shards));
  const std::size_t workers = std::max<std::size_t>(1, num_workers);

  ShardPlan plan;
  plan.total_workers = workers;
  plan.shards.resize(shards);
  const auto slices = split_ranges(static_cast<std::size_t>(end - begin),
                                   shards);
  const int domains = std::max(1, topo.num_nodes());
  for (std::size_t s = 0; s < shards; ++s) {
    Shard& shard = plan.shards[s];
    shard.begin = begin + slices[s].first;
    shard.end = begin + slices[s].second;
    shard.domain = topo.nodes.empty()
                       ? 0
                       : topo.nodes[s % static_cast<std::size_t>(domains)];
    if (workers >= shards) {
      const auto [w_lo, w_hi] = block_range(workers, shards, s);
      shard.first_worker = w_lo;
      shard.worker_count = w_hi - w_lo;
    } else {
      // More shards than workers: worker block_owner(...) serves this
      // shard alone (each worker walks a contiguous run of shards).
      shard.first_worker = block_owner(shards, workers, s);
      shard.worker_count = 1;
    }
  }
  return plan;
}

std::vector<std::size_t> ShardPlan::shards_for_worker(std::size_t w) const {
  std::vector<std::size_t> owned;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    if (w >= shard.first_worker && w < shard.first_worker + shard.worker_count) {
      owned.push_back(s);
    }
  }
  return owned;
}

ShardArena::Ref ShardArena::append(std::span<const VertexId> vertices) {
  const std::size_t len = vertices.size();
  if (head_capacity_ - head_used_ < len || chunks_.empty()) {
    const std::size_t capacity = std::max(chunk_vertices_, len);
    chunks_.emplace_back(capacity * sizeof(VertexId), MemPolicy::kLocal);
    head_capacity_ = chunks_.back().bytes() / sizeof(VertexId);
    head_used_ = 0;
  }
  Ref ref;
  ref.chunk = static_cast<std::uint32_t>(chunks_.size() - 1);
  ref.pos = static_cast<std::uint32_t>(head_used_);
  ref.len = static_cast<std::uint32_t>(len);
  auto* base = static_cast<VertexId*>(chunks_.back().data());
  std::copy(vertices.begin(), vertices.end(), base + head_used_);
  head_used_ += len;
  ++runs_;
  return ref;
}

std::span<const VertexId> ShardArena::view(const Ref& ref) const noexcept {
  const auto* base = static_cast<const VertexId*>(chunks_[ref.chunk].data());
  return {base + ref.pos, ref.len};
}

std::uint64_t ShardArena::mapped_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const NumaBuffer& c : chunks_) bytes += c.bytes();
  return bytes;
}

namespace {

/// Where one staged run lives: which worker's arena plus the handle.
struct SetRef {
  std::uint32_t worker = 0;
  ShardArena::Ref ref;
};

}  // namespace

ShardedSampler::ShardedSampler(const CSRGraph& reverse, ShardedConfig config)
    : reverse_(reverse), config_(std::move(config)) {
  EIMM_CHECK(config_.shards >= 1, "shard count must be >= 1");
  EIMM_CHECK(config_.batch_size > 0, "batch size must be positive");
}

void ShardedSampler::generate(RRRPool& pool, std::uint64_t begin,
                              std::uint64_t end, CounterArray* fused) {
  EIMM_CHECK(end >= begin, "invalid generation range");
  EIMM_CHECK(pool.size() >= end, "pool not resized for generation range");
  const std::uint64_t count = end - begin;
  const NumaTopology& topo = numa_topology();

  // Pin the team before planning work onto it: ShardPlan hands shard s
  // to a contiguous worker group, and the compact pin plan maps
  // contiguous thread ids to one domain each — together they keep a
  // shard's JobPool, scratch, and kLocal arena pages on one domain
  // instead of relying on OMP_PROC_BIND (the ROADMAP placement gap).
  // No-op on single-node hosts or under EIMM_PIN=none.
  pin_openmp_team();

  ShardPlan plan = ShardPlan::make(
      begin, end, config_.shards,
      static_cast<std::size_t>(omp_get_max_threads()), topo);
  std::vector<std::unique_ptr<JobPool>> jobs;
  std::vector<ShardArena> arenas;
  std::vector<SetRef> refs(count);
  const VertexId n = reverse_.num_vertices();

  if (count > 0) {
#pragma omp parallel
    {
#pragma omp single
      {
        // The plan must describe the team that actually materialized:
        // OMP_DYNAMIC, thread limits, or an enclosing parallel region
        // can hand us fewer threads than omp_get_max_threads() promised,
        // and a shard assigned to an absent worker would never drain.
        const auto team = static_cast<std::size_t>(omp_get_num_threads());
        if (team != plan.total_workers) {
          plan = ShardPlan::make(begin, end, config_.shards, team, topo);
        }
        // One job pool per shard: stealing is confined to the shard's
        // worker group, so the locality the plan establishes survives
        // imbalance. Arenas are worker-private (single writer each).
        jobs.reserve(plan.shards.size());
        for (const ShardPlan::Shard& shard : plan.shards) {
          jobs.push_back(std::make_unique<JobPool>(
              shard.size(), config_.batch_size,
              std::max<std::size_t>(1, shard.worker_count)));
        }
        arenas = std::vector<ShardArena>(plan.total_workers);
      }  // implicit barrier: every worker sees the final plan

      const auto wid = static_cast<std::size_t>(omp_get_thread_num());
      if (wid < plan.total_workers) {
        SamplerScratch scratch(n);
        ShardArena& arena = arenas[wid];
        for (const std::size_t s : plan.shards_for_worker(wid)) {
          const ShardPlan::Shard& shard = plan.shards[s];
          const std::size_t local = wid - shard.first_worker;
          for (JobBatch batch = jobs[s]->next(local); !batch.empty();
               batch = jobs[s]->next(local)) {
            for (std::size_t j = batch.begin; j < batch.end; ++j) {
              const std::uint64_t global = shard.begin + j;
              const std::vector<VertexId> verts = sample_rrr(
                  reverse_, config_.model, config_.rng_seed, global,
                  scratch);
              if (fused != nullptr) {
                for (const VertexId v : verts) fused->increment(v);
              }
              SetRef& slot = refs[global - begin];
              slot.worker = static_cast<std::uint32_t>(wid);
              slot.ref = arena.append(verts);
            }
          }
        }
      }
    }
  }

  stats_ = ShardStats{};
  stats_.numa_domains = topo.num_nodes();
  stats_.sets_per_shard.reserve(plan.shards.size());
  stats_.shard_domains.reserve(plan.shards.size());
  for (const ShardPlan::Shard& shard : plan.shards) {
    stats_.sets_per_shard.push_back(shard.size());
    stats_.shard_domains.push_back(shard.domain);
  }
  stats_.steals_per_shard.assign(plan.shards.size(), 0);
  for (std::size_t s = 0; s < jobs.size(); ++s) {
    stats_.steals_per_shard[s] = jobs[s]->steal_count();
  }
  std::uint64_t staged = 0;
  for (const ShardArena& arena : arenas) {
    stats_.staged_bytes += arena.mapped_bytes();
    staged += arena.runs();
  }
  // Every slot must have been staged exactly once; a scheduling bug here
  // would otherwise surface as silently-empty RRR sets far downstream.
  EIMM_CHECK(staged == count, "sharded generation lost RRR slots");
  if (count == 0) return;

  // Merge: copy every staged run into its RRRPool slot. Slot content is a
  // pure function of the global index, so the image bit-matches the
  // unsharded build no matter how the runs were staged.
  const bool adaptive = config_.adaptive_representation;
#pragma omp parallel for schedule(dynamic, 64)
  for (std::uint64_t i = 0; i < count; ++i) {
    const SetRef& slot = refs[i];
    const std::span<const VertexId> run = arenas[slot.worker].view(slot.ref);
    std::vector<VertexId> verts(run.begin(), run.end());
    pool[begin + i] =
        adaptive ? RRRSet::make_adaptive(std::move(verts), n,
                                         config_.bitmap_threshold)
                 : RRRSet::make_vector(std::move(verts));
  }
}

}  // namespace eimm
