#include "diffusion/weights.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {

DiffusionModel parse_model(std::string_view s, DiffusionModel fallback) {
  if (s == "IC" || s == "ic") return DiffusionModel::kIndependentCascade;
  if (s == "LT" || s == "lt") return DiffusionModel::kLinearThreshold;
  return fallback;
}

void assign_ic_weights_uniform(CSRGraph& reverse, std::uint64_t seed) {
  reverse.ensure_weights();
  const VertexId n = reverse.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    // Per-vertex stream keeps the assignment independent of traversal
    // order and allows parallel assignment without coordination.
    Xoshiro256 rng = Xoshiro256::for_stream(seed, v);
    for (float& w : reverse.mutable_weights(v)) {
      w = static_cast<float>(rng.next_double());
    }
  }
}

void assign_ic_weights_weighted_cascade(CSRGraph& reverse) {
  reverse.ensure_weights();
  const VertexId n = reverse.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    auto ws = reverse.mutable_weights(v);
    if (ws.empty()) continue;
    const float p = 1.0f / static_cast<float>(ws.size());
    std::fill(ws.begin(), ws.end(), p);
  }
}

void assign_lt_weights_normalized(CSRGraph& reverse) {
  reverse.ensure_weights();
  const VertexId n = reverse.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    auto ws = reverse.mutable_weights(v);
    if (ws.empty()) continue;
    // indeg weights of 1/(indeg+1) each leave 1/(indeg+1) probability for
    // "no in-neighbor activates v" — the paper's sum-to-one convention.
    const float w = 1.0f / static_cast<float>(ws.size() + 1);
    std::fill(ws.begin(), ws.end(), w);
  }
}

void assign_lt_weights_random(CSRGraph& reverse, std::uint64_t seed) {
  reverse.ensure_weights();
  const VertexId n = reverse.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    auto ws = reverse.mutable_weights(v);
    if (ws.empty()) continue;
    Xoshiro256 rng = Xoshiro256::for_stream(seed, v);
    double sum = 0.0;
    for (float& w : ws) {
      w = static_cast<float>(rng.next_double()) + 1e-6f;
      sum += w;
    }
    const double target = static_cast<double>(ws.size()) /
                          static_cast<double>(ws.size() + 1);
    const auto scale = static_cast<float>(target / sum);
    for (float& w : ws) w *= scale;
  }
}

void assign_paper_weights(CSRGraph& reverse, DiffusionModel model,
                          std::uint64_t seed) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      assign_ic_weights_uniform(reverse, seed);
      return;
    case DiffusionModel::kLinearThreshold:
      assign_lt_weights_normalized(reverse);
      return;
  }
}

void mirror_weights_to_forward(const CSRGraph& reverse, CSRGraph& forward) {
  EIMM_CHECK(reverse.num_vertices() == forward.num_vertices(),
             "orientation mismatch");
  EIMM_CHECK(reverse.has_weights(), "reverse graph has no weights to mirror");
  forward.ensure_weights();
  const VertexId n = reverse.num_vertices();
  // reverse edge (v -> u) corresponds to forward edge (u -> v). Build a
  // per-source cursor walk: for each v, for each in-neighbor u, find the
  // forward slot of (u, v). Forward adjacencies are sorted by target (the
  // builder sorts), so binary search per edge keeps this O(m log d).
  for (VertexId v = 0; v < n; ++v) {
    const auto in_neighbors = reverse.neighbors(v);
    const auto in_weights = reverse.weights(v);
    for (std::size_t i = 0; i < in_neighbors.size(); ++i) {
      const VertexId u = in_neighbors[i];
      const auto targets = forward.neighbors(u);
      const auto it = std::lower_bound(targets.begin(), targets.end(), v);
      EIMM_CHECK(it != targets.end() && *it == v,
                 "forward orientation missing mirrored edge");
      const auto slot = static_cast<std::size_t>(it - targets.begin());
      forward.mutable_weights(u)[slot] = in_weights[i];
    }
  }
}

}  // namespace eimm
