// Reference seed-selection baselines for quality validation.
//
// celf_greedy: the classic lazy-greedy (Leskovec et al. CELF) with a
// Monte-Carlo spread oracle — the (1-1/e)-approximate gold standard IMM
// is proven to match. Exponentially cheaper than naive greedy but still
// only feasible on small graphs; used by tests and examples.
//
// exhaustive_optimal: brute-force enumeration of all C(n,k) seed sets for
// tiny instances — the exact OPT the end-to-end tests compare against.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "simulate/spread.hpp"

namespace eimm {

struct GreedyResult {
  std::vector<VertexId> seeds;
  double spread = 0.0;
};

/// Lazy greedy maximization of σ(S) with |S| = k.
GreedyResult celf_greedy(const CSRGraph& forward, DiffusionModel model,
                         std::size_t k, const SpreadOptions& options = {});

/// Exact optimum by enumeration; requires C(n,k) small (n ≤ 20, k ≤ 3).
GreedyResult exhaustive_optimal(const CSRGraph& forward, DiffusionModel model,
                                std::size_t k,
                                const SpreadOptions& options = {});

}  // namespace eimm
