// Experiment logs mirroring the SC'24 artifact output: each run emits one
// JSON document with the configuration, per-phase timings, and the seed
// set (the artifact's strong-scaling-logs-* directories hold the same
// fields). extract-style CSV summaries are produced by the benches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"

namespace eimm {

struct ExperimentRecord {
  std::string dataset;
  std::string algorithm;      // "EfficientIMM" | "Ripples"
  std::string diffusion;      // "IC" | "LT"
  int threads = 1;
  int k = 0;
  double epsilon = 0.0;
  std::uint64_t rng_seed = 0;
  double total_seconds = 0.0;
  double sampling_seconds = 0.0;
  double selection_seconds = 0.0;
  std::uint64_t num_rrr_sets = 0;
  std::uint64_t rrr_memory_bytes = 0;
  std::vector<VertexId> seeds;
};

/// Serializes one record as a JSON object (artifact-compatible field
/// names: "Total", "GenerateRRRSets", "FindMostInfluentialSet", ...).
void write_experiment_json(std::ostream& os, const ExperimentRecord& record);

/// Writes to `<dir>/<dataset>_<algorithm>_<threads>.json`, creating the
/// directory if needed. Returns the file path.
std::string write_experiment_json_file(const std::string& dir,
                                       const ExperimentRecord& record);

/// One row of the serve-throughput bench (BENCH_serve.json schema:
/// workload, threads, queries/sec, build-seconds).
struct ServeBenchResult {
  std::string workload;
  int threads = 1;
  double queries_per_second = 0.0;
  double build_seconds = 0.0;
};

/// Serializes the bench sweep as one JSON document:
/// {"Bench": "serve_throughput", "Results": [{"Workload": ..., ...}]}.
void write_serve_bench_json(std::ostream& os,
                            const std::vector<ServeBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_serve_bench_json_file(
    const std::string& path, const std::vector<ServeBenchResult>& results);

/// One row of the sharded-sampling bench (BENCH_sharded.json schema):
/// per-shard-count sampling throughput plus the bit-match check against
/// the unsharded build.
struct ShardedBenchResult {
  std::string workload;
  int shards = 1;
  int threads = 1;
  double sampling_seconds = 0.0;
  double sets_per_second = 0.0;
  std::uint64_t num_rrr_sets = 0;
  bool pool_matches_unsharded = true;
};

/// Serializes the sweep as one document:
/// {"Bench": "sharded_sampling", "NumaDomains": N, "Results": [...]}.
/// `numa_domains` is the detected domain count of the host that ran it.
void write_sharded_bench_json(std::ostream& os, int numa_domains,
                              const std::vector<ShardedBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_sharded_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<ShardedBenchResult>& results);

/// One row of the counter-layout bench (BENCH_counters.json schema):
/// update/arg-max throughput of one counter layout at one shard count.
struct CounterBenchResult {
  std::string layout;  // "flat" | "sharded" | "perthread" | "contended"
  int shards = 1;
  int threads = 1;
  double update_seconds = 0.0;
  double updates_per_second = 0.0;
  double argmax_seconds = 0.0;
  /// Snapshot of the layout equals the flat reference after the same
  /// update stream (layouts must agree on VALUES, not just speed).
  bool matches_flat = true;
};

/// Serializes the sweep as one document:
/// {"Bench": "micro_counters", "NumaDomains": N, "Results": [...]}.
void write_counter_bench_json(std::ostream& os, int numa_domains,
                              const std::vector<CounterBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_counter_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<CounterBenchResult>& results);

/// One row of the fused-pipeline bench (BENCH_pipeline.json schema):
/// end-to-end sampling+selection wall time of one data-path variant,
/// with the byte accounting that shows the zero-copy hand-off working —
/// merged_bytes drops to 0 on the view path — and the workspace reuse
/// keeping counter-layout allocations at one per run.
struct PipelineBenchResult {
  std::string workload;
  std::string path;  // "flat" | "sharded-merge" | "sharded-view"
  int shards = 1;
  int threads = 1;
  double total_seconds = 0.0;
  double sampling_seconds = 0.0;
  double selection_seconds = 0.0;
  std::uint64_t num_rrr_sets = 0;
  /// Payload bytes staged into arenas / arena bytes mapped / payload
  /// bytes copied at merge (all 0 on the unsharded flat path).
  std::uint64_t staged_bytes = 0;
  std::uint64_t mapped_bytes = 0;
  std::uint64_t merged_bytes = 0;
  /// Working counter-layout allocations across the whole run.
  std::uint64_t workspace_counter_allocs = 0;
  /// Seed sequence bit-matches the flat reference run.
  bool seeds_match_flat = true;
};

/// Serializes the sweep as one document:
/// {"Bench": "fused_pipeline", "NumaDomains": N, "Results": [...]}.
void write_pipeline_bench_json(std::ostream& os, int numa_domains,
                               const std::vector<PipelineBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_pipeline_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<PipelineBenchResult>& results);

/// One row of the serve-latency bench (BENCH_serve_latency.json schema):
/// request-latency percentiles at one offered load against a store
/// loaded one way (mmap vs stream), plus the cold-start cost and the
/// load-stats byte accounting that proves the mmap path copies nothing.
struct LatencyBenchResult {
  std::string workload;
  std::string load_mode;  // "mmap" | "stream"
  double cold_start_seconds = 0.0;
  std::uint64_t bytes_mapped = 0;
  std::uint64_t bytes_copied = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t cache_hits = 0;
};

/// Serializes the sweep as one document:
/// {"Bench": "serve_latency", "Results": [...]}.
void write_latency_bench_json(std::ostream& os,
                              const std::vector<LatencyBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_latency_bench_json_file(
    const std::string& path, const std::vector<LatencyBenchResult>& results);

/// Serializes an obs registry snapshot as one document:
/// {"Schema": "eimm-metrics-v1", "Metrics": [{"Name": ..., "Kind":
/// "counter"|"gauge"|"histogram", ...}]}. Histogram entries carry
/// Count/Sum/Mean/P50/P99 plus the full fixed bucket array.
void write_metrics_json(std::ostream& os, const obs::MetricsSnapshot& snapshot);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_metrics_json_file(const std::string& path,
                                    const obs::MetricsSnapshot& snapshot);

/// The serving-side stats surface of one live server, mirrored from the
/// kStats wire body (obs types only — this header stays independent of
/// src/serve).
struct ServingStatsRecord {
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t submitted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t largest_batch = 0;
  std::uint64_t qcache_hits = 0;
  std::uint64_t qcache_misses = 0;
  std::uint64_t qcache_evictions = 0;
  std::uint64_t qcache_entries = 0;
  /// Hot-reload accounting: the serving-epoch generation (1 = the store
  /// the server started with) and how many reloads succeeded/failed.
  std::uint64_t generation = 0;
  std::uint64_t reloads = 0;
  std::uint64_t failed_reloads = 0;
  obs::HistogramSnapshot queue_wait_us;
  obs::HistogramSnapshot batch_size;
  obs::HistogramSnapshot exec_us;
};

/// Serializes a metrics snapshot plus the serving stats surface as one
/// document: the write_metrics_json fields with an extra "Serving"
/// object. This is the periodic --metrics dump of tools/sketch_server.
void write_server_metrics_json(std::ostream& os,
                               const obs::MetricsSnapshot& snapshot,
                               const ServingStatsRecord& serving);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_server_metrics_json_file(
    const std::string& path, const obs::MetricsSnapshot& snapshot,
    const ServingStatsRecord& serving);

/// One row of the telemetry-overhead bench (BENCH_obs_overhead.json):
/// the same workload run with telemetry off and on, and the relative
/// cost that must stay under the budget.
struct ObsOverheadBenchResult {
  std::string workload;
  int threads = 1;
  int reps = 1;
  double uninstrumented_seconds = 0.0;
  double instrumented_seconds = 0.0;
  double overhead_fraction = 0.0;
  double budget_fraction = 0.02;
  std::uint64_t trace_events = 0;
  std::uint64_t metric_sets_total = 0;
  bool within_budget = true;
};

/// Serializes the rows as one document:
/// {"Bench": "obs_overhead", "Results": [...]}.
void write_obs_overhead_json(std::ostream& os,
                             const std::vector<ObsOverheadBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_obs_overhead_json_file(
    const std::string& path,
    const std::vector<ObsOverheadBenchResult>& results);

/// One row of the fused-sampling bench (BENCH_fused_sampling.json
/// schema): scalar-vs-fused sampling throughput of the sharded pipeline
/// at one (model, shard count), plus the Monte-Carlo spread-ratio check
/// that replaces bit-identity for the fused IC path (fused output is
/// statistically, not bitwise, equivalent to scalar).
struct FusedBenchResult {
  std::string workload;
  std::string model;  // "IC" | "LT"
  int shards = 1;
  int threads = 1;
  std::uint64_t num_rrr_sets = 0;
  double scalar_seconds = 0.0;
  double fused_seconds = 0.0;
  double scalar_sets_per_second = 0.0;
  double fused_sets_per_second = 0.0;
  /// scalar_seconds / fused_seconds (> 1 means fused is faster).
  double speedup = 0.0;
  /// Fused-seed spread / scalar-seed spread (statcheck harness).
  double spread_ratio = 0.0;
  /// spread_ratio >= 1 - tolerance held for this row.
  bool spread_within_tolerance = true;
};

/// Serializes the sweep as one document:
/// {"Bench": "fused_sampling", "NumaDomains": N, "Results": [...]}.
void write_fused_bench_json(std::ostream& os, int numa_domains,
                            const std::vector<FusedBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_fused_bench_json_file(
    const std::string& path, int numa_domains,
    const std::vector<FusedBenchResult>& results);

/// One row of the compressed-pool bench (BENCH_compressed.json schema):
/// pool footprint and selection throughput of one pool backing, plus the
/// compression ratio and seed-identity check against the raw reference.
struct CompressedBenchResult {
  std::string workload;
  std::string backing;  // "flat" | "varint" | "huffman"
  int threads = 1;
  std::uint64_t num_rrr_sets = 0;
  std::uint64_t pool_bytes = 0;
  /// Gap-coded payload bytes only (0 for the flat backing).
  std::uint64_t payload_bytes = 0;
  /// flat pool_bytes / this pool_bytes (1.0 for the flat row).
  double bytes_ratio = 1.0;
  double encode_seconds = 0.0;
  double selection_seconds = 0.0;
  double sets_per_second = 0.0;
  /// this selection_seconds / flat selection_seconds (1.0 for flat).
  double slowdown = 1.0;
  /// Seed sequence bit-matches the flat reference run.
  bool seeds_match_flat = true;
};

/// Serializes the sweep as one document:
/// {"Bench": "compressed_pool", "Results": [...]}.
void write_compressed_bench_json(
    std::ostream& os, const std::vector<CompressedBenchResult>& results);

/// Writes to `path` (parent directories created). Returns `path`.
std::string write_compressed_bench_json_file(
    const std::string& path,
    const std::vector<CompressedBenchResult>& results);

}  // namespace eimm
