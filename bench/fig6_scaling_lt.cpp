// Fig. 6 reproduction: strong scaling under the LT diffusion model,
// EfficientIMM vs the Ripples strategy, normalized to 1-thread Ripples
// (k=50, ε=0.5), across all eight datasets.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Fig. 6: strong scaling, LT model, normalized to Ripples 1T",
               config);

  constexpr DiffusionModel kModel = DiffusionModel::kLinearThreshold;
  for (const WorkloadSpec& spec : workload_specs()) {
    const DiffusionGraph graph = load_workload(config, spec.name, kModel);
    AsciiTable table({"Threads", "Ripples (s)", "EfficientIMM (s)",
                      "Ripples speedup", "EIMM speedup", "EIMM vs Ripples"});
    double ripples_base = 0.0;
    for (const int threads : thread_sweep(config.max_threads)) {
      const ImmOptions opt = imm_options(config, kModel, threads);
      const double ripples = best_seconds(config.reps, [&] {
        return run_baseline_imm(graph, opt).breakdown.total_seconds;
      });
      const double efficient = best_seconds(config.reps, [&] {
        return run_efficient_imm(graph, opt).breakdown.total_seconds;
      });
      if (threads == 1) ripples_base = ripples;
      table.new_row()
          .add(threads)
          .add(ripples, 3)
          .add(efficient, 3)
          .add(format_speedup(ripples_base / ripples, 2))
          .add(format_speedup(ripples_base / efficient, 2))
          .add(format_speedup(ripples / efficient, 2));
    }
    table.set_title("Fig. 6 — " + spec.name + " (LT)");
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: EfficientIMM's curve keeps rising with threads while\n"
      "the Ripples strategy saturates early (paper: after ~4 threads).\n");
  return 0;
}
