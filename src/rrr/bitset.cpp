#include "rrr/bitset.hpp"

// Header-only in practice; this TU anchors the library target and keeps a
// place for future out-of-line additions.
