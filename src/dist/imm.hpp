// Simulated distributed IMM (paper §VI future work).
//
// Models an MPI-style cluster of `ranks` processes on one node: RRR-set
// indices are block-partitioned across ranks (streams are keyed by
// (seed, index), so partitioning never changes pool contents), and the
// two communication strategies the bench compares are charged an
// analytic byte count:
//
//   kCounterReduce — EfficientIMM's partitioning: sketches stay on the
//     rank that sampled them; each selection round allreduces the |V|
//     vertex-occurrence counters (ring allreduce cost model, so volume
//     is independent of sketch density).
//   kSetGather — Ripples-MPI-style: every non-root rank ships its raw
//     RRR payloads to rank 0 once, then rank 0 selects locally; volume
//     scales with total sketch size.
//
// Both strategies see identical global counters, so they return
// identical seed sequences — the bench asserts this.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace eimm {

enum class DistStrategy { kCounterReduce, kSetGather };

constexpr std::string_view to_string(DistStrategy s) noexcept {
  return s == DistStrategy::kCounterReduce ? "counter-reduce" : "set-gather";
}

/// Bytes and messages crossing the (simulated) network.
struct DistCommStats {
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
  /// Communication rounds (1 for set-gather; 1 + #selection rounds for
  /// counter-reduce: the initial build plus one allreduce per pick).
  std::uint32_t rounds = 0;
};

struct DistImmOptions {
  std::size_t k = 50;
  double epsilon = 0.5;
  double ell = 1.0;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  std::uint64_t rng_seed = 0x5EEDBA5Eu;
  /// Simulated MPI ranks (>= 1; 1 degenerates to zero communication).
  int ranks = 2;
  std::uint64_t max_rrr_sets = 1u << 20;
  DistStrategy strategy = DistStrategy::kCounterReduce;
};

struct DistImmResult {
  std::vector<VertexId> seeds;
  double coverage_fraction = 0.0;
  std::uint64_t theta = 0;
  std::uint64_t num_rrr_sets = 0;
  /// True when max_rrr_sets truncated the pool below theta: num_rrr_sets
  /// (and the comm byte counts) then cover fewer sets than theta implies
  /// and the approximation guarantee is weakened.
  bool theta_capped = false;
  /// Per-rank pool slice sizes (diagnostics; sums to num_rrr_sets).
  std::vector<std::uint64_t> sets_per_rank;
  DistCommStats comm;
};

/// Runs the martingale IMM workflow and charges the chosen strategy's
/// communication. The reverse graph must carry diffusion weights.
DistImmResult run_distributed_imm(const DiffusionGraph& graph,
                                  const DistImmOptions& options);

}  // namespace eimm
