#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

CSRGraph triangle() {
  // 0 -> 1, 0 -> 2, 1 -> 2
  return build_csr({{0, 1, 0.5f}, {0, 2, 0.25f}, {1, 2, 1.0f}}, 3);
}

TEST(CSRGraph, BasicAccessors) {
  const CSRGraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(CSRGraph, NeighborsSortedByBuilder) {
  const CSRGraph g = triangle();
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(CSRGraph, WeightsParallelToNeighbors) {
  const CSRGraph g = triangle();
  ASSERT_TRUE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weights(0)[0], 0.5f);
  EXPECT_FLOAT_EQ(g.weights(0)[1], 0.25f);
  EXPECT_FLOAT_EQ(g.weights(1)[0], 1.0f);
}

TEST(CSRGraph, EmptyGraph) {
  const CSRGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CSRGraph, IsolatedVertices) {
  const CSRGraph g = build_csr({{0, 4, 1.0f}}, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(g.neighbors(5).empty());
}

TEST(CSRGraph, TransposeReversesEdges) {
  const CSRGraph g = triangle();
  const CSRGraph t = g.transpose();
  EXPECT_EQ(t.num_vertices(), 3u);
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.degree(0), 0u);  // nothing points to 0
  EXPECT_EQ(t.degree(1), 1u);  // 0 -> 1
  EXPECT_EQ(t.degree(2), 2u);  // 0 -> 2, 1 -> 2
  EXPECT_EQ(t.neighbors(1)[0], 0u);
}

TEST(CSRGraph, TransposePreservesWeights) {
  const CSRGraph g = triangle();
  const CSRGraph t = g.transpose();
  // Edge 0 -> 2 (weight 0.25) becomes in-edge of 2 from 0.
  const auto neighbors = t.neighbors(2);
  const auto weights = t.weights(2);
  bool found = false;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (neighbors[i] == 0) {
      EXPECT_FLOAT_EQ(weights[i], 0.25f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CSRGraph, DoubleTransposeIsIdentity) {
  const CSRGraph g = triangle();
  const CSRGraph tt = g.transpose().transpose();
  ASSERT_EQ(tt.num_vertices(), g.num_vertices());
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = tt.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CSRGraph, EnsureWeightsFillsDefault) {
  CSRGraph g = build_csr({{0, 1}}, 2);  // builder always adds weights...
  CSRGraph bare({0, 1}, {1});           // ...so construct raw without them
  EXPECT_FALSE(bare.has_weights());
  bare.ensure_weights(0.5f);
  ASSERT_TRUE(bare.has_weights());
  EXPECT_FLOAT_EQ(bare.weights(0)[0], 0.5f);
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(CSRGraph, ValidationRejectsBadOffsets) {
  EXPECT_THROW(CSRGraph({}, {}), CheckError);             // empty offsets
  EXPECT_THROW(CSRGraph({1, 2}, {0, 0}), CheckError);     // not starting at 0
  EXPECT_THROW(CSRGraph({0, 2}, {0}), CheckError);        // size mismatch
  EXPECT_THROW(CSRGraph({0, 2, 1}, {0, 0}), CheckError);  // non-monotone
  EXPECT_THROW(CSRGraph({0, 1}, {0}, {1.0f, 2.0f}), CheckError);  // weights
}

TEST(CSRGraph, MemoryBytesPositive) {
  EXPECT_GT(triangle().memory_bytes(), 0u);
}

TEST(DiffusionGraph, FromForwardBuildsBothOrientations) {
  const auto dg = DiffusionGraph::from_forward(triangle());
  EXPECT_EQ(dg.num_vertices(), 3u);
  EXPECT_EQ(dg.num_edges(), 3u);
  EXPECT_EQ(dg.forward.degree(0), 2u);
  EXPECT_EQ(dg.reverse.degree(2), 2u);
}

}  // namespace
}  // namespace eimm
