// Pool-scale compressed RRR storage — the third backing behind
// RRRPoolView, next to the contiguous RRRPool and the zero-copy
// SegmentedPool.
//
// Every slot is the shared delta-varint gap stream (rrr/gap_codec.hpp)
// of its sorted members, packed into ONE byte blob addressed CSR-style
// by byte offsets — typically 1-2 bytes per member instead of 4, which
// is the HBMax-style memory-bounded scale-up the paper's §IV-C rejects
// for codec overhead and this subsystem makes measurable
// (bench/compressed_pool → BENCH_compressed.json). An optional second
// stage (PoolCodec::kHuffman) canonical-Huffman-codes each slot's gap
// bytes with one pool-wide codebook built from the first generation
// round (Laplace-smoothed over all 256 symbols, so later rounds can
// emit bytes the first round never saw); slot streams are byte-aligned,
// which keeps the shard-parallel encode race-free (no two slots share a
// byte) at a cost of at most 7 pad bits per slot.
//
// Consumption is decode-on-enumerate: slot(i) returns a CompressedSlot
// view whose for_each/contains lazily decode — RRRSetView wraps it with
// repr() == RRRRepr::kCompressed, so the selection kernels, martingale
// probes, and serve/QueryEngine run UNCHANGED over a compressed pool
// and emit bit-identical seed sequences (ascending enumeration and
// exact membership are preserved; ctest -L statcheck enforces it).
//
// append() is the per-round hand-off: after each generation round,
// core/imm encodes the freshly sampled slots (shard-parallel two-pass:
// measure → prefix-sum → encode-in-place) and releases the raw staging
// storage, so peak memory is compressed(all rounds) + raw(one round).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "graph/types.hpp"
#include "rrr/gap_codec.hpp"
#include "rrr/huffman.hpp"

namespace eimm {

class RRRPoolView;

/// Slot encoding: plain gap varints, or gap varints re-coded through the
/// pool-wide canonical Huffman book.
enum class PoolCodec : std::uint8_t { kVarint = 0, kHuffman = 1 };

/// Pool-compression request (ImmOptions::pool_compress). kAuto resolves
/// the EIMM_POOL_COMPRESS environment variable: unset/0/off/false →
/// kNone, 1/on/true/varint → kVarint, 2/huffman → kHuffman.
enum class PoolCompression { kAuto, kNone, kVarint, kHuffman };

/// Applies the environment defaulting (explicit request wins).
[[nodiscard]] PoolCompression resolve_pool_compression(
    PoolCompression requested);

[[nodiscard]] std::string_view to_string(PoolCompression mode) noexcept;

/// One compressed slot: `count` members gap-coded into `bytes` payload
/// bytes at `data`; `huffman` non-null when the bytes are a byte-aligned
/// Huffman bit stream of the gap bytes (decode through the table),
/// null for plain varints. Cheap value type — RRRSetView carries it.
struct CompressedSlot {
  const std::uint8_t* data = nullptr;
  std::uint64_t bytes = 0;
  std::uint32_t count = 0;
  const HuffmanDecodeTable* huffman = nullptr;

  /// Invokes fn(vertex) for every member in ascending order. Throws
  /// CheckError on a corrupt payload (bounds-checked decode).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (huffman == nullptr) {
      GapRun{data, bytes, count}.for_each(std::forward<Fn>(fn));
      return;
    }
    const std::uint64_t bit_limit = bytes * 8;
    std::uint64_t cursor = 0;
    VertexId current = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t value = decode_gap(bit_limit, cursor);
      current = (i == 0) ? static_cast<VertexId>(value - 1)
                         : static_cast<VertexId>(current + value);
      fn(current);
    }
  }

  /// Membership by linear decode, early-exiting past `v` (gaps are
  /// strictly positive). O(count) — the measured §IV-C trade.
  [[nodiscard]] bool contains(VertexId v) const {
    if (huffman == nullptr) return GapRun{data, bytes, count}.contains(v);
    const std::uint64_t bit_limit = bytes * 8;
    std::uint64_t cursor = 0;
    VertexId current = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t value = decode_gap(bit_limit, cursor);
      current = (i == 0) ? static_cast<VertexId>(value - 1)
                         : static_cast<VertexId>(current + value);
      if (current == v) return true;
      if (current > v) return false;
    }
    return false;
  }

  [[nodiscard]] std::vector<VertexId> decode() const {
    std::vector<VertexId> out;
    out.reserve(count);
    for_each([&](VertexId v) { out.push_back(v); });
    return out;
  }

 private:
  /// One varint whose bytes come out of the Huffman bit stream.
  [[nodiscard]] std::uint64_t decode_gap(std::uint64_t bit_limit,
                                         std::uint64_t& cursor) const {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
      const std::uint8_t byte = huffman->decode_one(data, bit_limit, cursor);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (EIMM_UNLIKELY(shift > 63)) {
        detail::fail_varint("varint wider than 64 bits",
                            static_cast<std::size_t>(cursor >> 3));
      }
    }
  }
};

class CompressedPool {
 public:
  CompressedPool() = default;
  explicit CompressedPool(VertexId num_vertices,
                          PoolCodec codec = PoolCodec::kVarint)
      : num_vertices_(num_vertices), codec_(codec) {}

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] PoolCodec codec() const noexcept { return codec_; }

  /// Encodes slots [begin, end) of `src` and appends them — the
  /// per-round hand-off from the sampling storage. Rounds must arrive
  /// in order (begin == size()). Shard-parallel; must be called outside
  /// any OpenMP parallel region.
  void append(const RRRPoolView& src, std::size_t begin, std::size_t end);

  /// Slot `i` as the decode-on-enumerate view RRRSetView wraps.
  [[nodiscard]] CompressedSlot slot(std::size_t i) const noexcept {
    return CompressedSlot{bytes_.data() + offsets_[i],
                          offsets_[i + 1] - offsets_[i], counts_[i],
                          codec_ == PoolCodec::kHuffman ? decode_table_.get()
                                                        : nullptr};
  }

  /// Full decode of slot `i` (tests, flatten, snapshot transcode).
  /// Observes obs `pool.decode_us` per call.
  [[nodiscard]] std::vector<VertexId> decode_slot(std::size_t i) const;

  /// Compressed payload bytes only (the memory the codec buys back).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return bytes_.size();
  }
  /// Full footprint: payload + offsets + counts + decode tables.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;
  /// Sum of member counts over all slots.
  [[nodiscard]] std::uint64_t total_vertices() const noexcept {
    return total_vertices_;
  }
  /// Wall-clock spent inside append() so far.
  [[nodiscard]] double encode_seconds() const noexcept {
    return encode_seconds_;
  }

  /// Raw CSR arrays — the snapshot adoption seam (serve/SketchStore
  /// serves varint pools from these spans in place).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return bytes_;
  }

 private:
  VertexId num_vertices_ = 0;
  PoolCodec codec_ = PoolCodec::kVarint;
  std::vector<std::uint64_t> offsets_{0};  // byte offsets, size()+1
  std::vector<std::uint32_t> counts_;      // members per slot
  std::vector<std::uint8_t> bytes_;        // packed slot payloads
  std::uint64_t total_vertices_ = 0;
  double encode_seconds_ = 0.0;
  /// Huffman stage: one pool-wide codebook, built from the first
  /// append()'s gap bytes (+1 smoothing over all 256 symbols so unseen
  /// bytes in later rounds still have codes). unique_ptr keeps slot
  /// views' table pointer stable across moves of the pool.
  bool book_built_ = false;
  HuffmanEncodeTable encode_table_;
  std::unique_ptr<HuffmanDecodeTable> decode_table_;
};

}  // namespace eimm
