#include "runtime/partition.hpp"

#include <gtest/gtest.h>

#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(Partition, CoversRangeExactly) {
  for (std::size_t total : {0ul, 1ul, 7ul, 100ul, 1000ul}) {
    for (std::size_t parts : {1ul, 2ul, 3ul, 7ul, 16ul}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const auto [begin, end] = block_range(total, parts, p);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, total) << "total=" << total << " parts=" << parts;
    }
  }
}

TEST(Partition, BlockSizesDifferByAtMostOne) {
  for (std::size_t total : {10ul, 11ul, 97ul}) {
    constexpr std::size_t parts = 4;
    std::size_t min_size = total, max_size = 0;
    for (std::size_t p = 0; p < parts; ++p) {
      const auto [begin, end] = block_range(total, parts, p);
      min_size = std::min(min_size, end - begin);
      max_size = std::max(max_size, end - begin);
    }
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(Partition, SinglePartOwnsEverything) {
  const auto [begin, end] = block_range(42, 1, 0);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 42u);
}

TEST(Partition, MorePartsThanItems) {
  std::size_t nonempty = 0;
  for (std::size_t p = 0; p < 10; ++p) {
    const auto [begin, end] = block_range(3, 10, p);
    if (end > begin) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3u);
}

TEST(Partition, InvalidArgumentsThrow) {
  EXPECT_THROW(block_range(10, 0, 0), CheckError);
  EXPECT_THROW(block_range(10, 4, 4), CheckError);
}

TEST(Partition, OwnerConsistentWithRange) {
  for (std::size_t total : {13ul, 100ul, 101ul}) {
    for (std::size_t parts : {1ul, 3ul, 8ul}) {
      for (std::size_t i = 0; i < total; ++i) {
        const std::size_t owner = block_owner(total, parts, i);
        const auto [begin, end] = block_range(total, parts, owner);
        EXPECT_GE(i, begin) << total << " " << parts << " " << i;
        EXPECT_LT(i, end) << total << " " << parts << " " << i;
      }
    }
  }
}

TEST(Partition, OwnerRejectsOutOfRange) {
  EXPECT_THROW(block_owner(5, 2, 5), CheckError);
}

}  // namespace
}  // namespace eimm
