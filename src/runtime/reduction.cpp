#include "runtime/reduction.hpp"

#include <omp.h>

#include <vector>

#include "runtime/partition.hpp"
#include "support/aligned.hpp"

namespace eimm {

namespace {

/// Regional arg-max over [begin, end); the mask test is hoisted so the
/// common unmasked path keeps its original tight loop.
ArgMaxResult block_argmax(const CounterArray& counters,
                          const std::uint8_t* eligible, std::size_t begin,
                          std::size_t end) {
  ArgMaxResult best{begin < end ? begin : 0, 0};
  if (eligible == nullptr) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {  // strict '>' keeps the lowest index on ties
        best.value = v;
        best.index = i;
      }
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      if (eligible[i] == 0) continue;
      const std::uint64_t v = counters.get(i);
      if (v > best.value) {
        best.value = v;
        best.index = i;
      }
    }
  }
  return best;
}

}  // namespace

ArgMaxResult serial_argmax(const CounterArray& counters,
                           const std::uint8_t* eligible) {
  if (counters.size() == 0) return {};
  return block_argmax(counters, eligible, 0, counters.size());
}

ArgMaxResult parallel_argmax(const CounterArray& counters,
                             const std::uint8_t* eligible) {
  const std::size_t n = counters.size();
  if (n == 0) return {};

  const int max_threads = omp_get_max_threads();
  std::vector<CachePadded<ArgMaxResult>> regional(
      static_cast<std::size_t>(max_threads));

#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [begin, end] = block_range(n, nthreads, tid);
    // Step 1: regional maximum over the thread's contiguous block.
    regional[tid].value = block_argmax(counters, eligible, begin, end);
  }

  // Step 2: reduce the regional maxima. Blocks are in index order, so
  // strict '>' again keeps the lowest winning index.
  ArgMaxResult best = regional[0].value;
  for (int t = 1; t < max_threads; ++t) {
    const ArgMaxResult& r = regional[static_cast<std::size_t>(t)].value;
    if (r.value > best.value) best = r;
  }
  return best;
}

}  // namespace eimm
