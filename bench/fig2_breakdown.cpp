// Fig. 2 reproduction: "Ripples Runtime Breakdown" on web-Google.
//
// Splits each Ripples-strategy run into Generate_RRRsets vs
// Find_Most_Influential_Set vs other, across the thread sweep and both
// models. The paper's point: the two kernels dominate, and the selection
// share *grows* with the thread count (it stops scaling first).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "support/table.hpp"

int main() {
  using namespace eimm;
  using namespace eimm::bench;

  const BenchConfig config = load_config();
  print_banner("Fig. 2: Ripples-strategy runtime breakdown (web-Google)",
               config);

  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    const DiffusionGraph graph = load_workload(config, "web-Google", model);
    AsciiTable table({"Threads", "Total (s)", "GenerateRRRsets (s)",
                      "FindMostInfluential (s)", "Other (s)", "Select %"});
    for (const int threads : thread_sweep(config.max_threads)) {
      const ImmOptions opt = imm_options(config, model, threads);
      const ImmResult result = run_baseline_imm(graph, opt);
      const PhaseBreakdown& b = result.breakdown;
      table.new_row()
          .add(threads)
          .add(b.total_seconds, 3)
          .add(b.sampling_seconds, 3)
          .add(b.selection_seconds, 3)
          .add(b.other_seconds(), 3)
          .add(100.0 * b.selection_seconds / b.total_seconds, 0);
    }
    table.set_title(std::string("Fig. 2 — breakdown, ") +
                    std::string(to_string(model)) + " model");
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: Generate_RRRsets + Find_Most_Influential_Set dominate\n"
      "the runtime; the selection share grows with the thread count.\n");
  return 0;
}
