// BatchingExecutor — admission control + micro-batching over
// QueryEngine::run_batch.
//
// Clients submit single queries; a dispatcher thread coalesces whatever
// arrives within a small window (or up to max_batch) into one pinned
// OpenMP batch, amortizing the affinity save/restore and team spin-up
// that dominate singleton run_batch calls. Constrained results feed a
// QueryCache; repeat queries skip the kernel entirely.
//
// Split out of server.hpp so the epoch-versioned StoreRegistry (hot
// snapshot reload) can own one executor per serving epoch without the
// registry and the socket front end including each other.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query_cache.hpp"
#include "serve/query_engine.hpp"
#include "support/macros.hpp"

namespace eimm {

struct ExecutorOptions {
  /// Largest batch one dispatch passes to run_batch.
  std::size_t max_batch = 64;
  /// How long the dispatcher waits for more queries to coalesce after
  /// the first arrival. Zero = dispatch immediately (no batching).
  std::chrono::microseconds batch_window{200};
  /// Admission bound: submissions beyond this many queued queries are
  /// rejected (OverloadError) instead of growing the queue without
  /// bound under overload.
  std::size_t max_queue = 1024;
  /// OpenMP threads per dispatched batch (0 = library default).
  int threads = 0;
  /// Constrained-result cache entries (0 disables).
  std::size_t cache_capacity = 256;
};

/// Thrown by submit() when the admission queue is full.
class OverloadError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// Micro-batching admission layer over QueryEngine::run_batch.
/// Thread-safe: any number of producers may submit concurrently.
class BatchingExecutor {
 public:
  BatchingExecutor(const QueryEngine& engine, ExecutorOptions options);
  /// Drains the queue, then joins the dispatcher.
  ~BatchingExecutor();

  BatchingExecutor(const BatchingExecutor&) = delete;
  BatchingExecutor& operator=(const BatchingExecutor&) = delete;

  /// Validates the query against the store (CheckError on bad k / ids —
  /// the error surfaces HERE, synchronously, never poisoning a batch),
  /// consults the cache, and otherwise enqueues for the next dispatch.
  /// Throws OverloadError when the queue is full (or when the
  /// `serve.admit` failpoint fires — an injected rejection is
  /// indistinguishable from a real one to the client).
  [[nodiscard]] std::future<QueryResult> submit(QueryOptions query);

  /// Stops accepting work, drains what was admitted, joins. Idempotent.
  void stop();

  /// A point-in-time copy of the executor's telemetry. The scalar part
  /// is snapshotted under the executor mutex and the whole struct is
  /// returned by value, so readers never observe a half-updated set of
  /// counters while the dispatcher mutates them.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t rejected = 0;
    std::uint64_t batches = 0;
    std::uint64_t largest_batch = 0;
    /// Dispatch-queue wait per query, µs (cache hits never enqueue).
    obs::HistogramSnapshot queue_wait_us;
    /// Queries per dispatched batch.
    obs::HistogramSnapshot batch_size;
    /// run_batch wall time per dispatched batch, µs.
    obs::HistogramSnapshot exec_us;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] QueryCache::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  struct Pending {
    QueryOptions query;
    std::promise<QueryResult> promise;
    std::uint64_t enqueue_ns = 0;
  };
  void dispatch_loop();
  void run_one_batch(std::vector<Pending>&& batch);

  const QueryEngine* engine_;
  ExecutorOptions options_;
  QueryCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;  // scalar fields only; histograms live below

  // Shared-cell histograms: updated lock-free by the dispatcher, read
  // by stats() snapshots. Not gated by EIMM_METRICS — a live server's
  // stats surface must answer even with process metrics off.
  obs::AtomicHistogram queue_wait_us_;
  obs::AtomicHistogram batch_size_;
  obs::AtomicHistogram exec_us_;

  // Last member: the dispatcher must not start until every field above
  // it is constructed, and must be joined before any of them die.
  std::thread dispatcher_;
};

}  // namespace eimm
