// sketch_client — scripted client for a running sketch_server.
//
//   sketch_client --socket /tmp/eimm.sock ping
//   sketch_client --socket /tmp/eimm.sock info
//   sketch_client --socket /tmp/eimm.sock query --k 10
//   sketch_client --socket /tmp/eimm.sock query --k 5 --forbid 3,17
//   sketch_client --socket /tmp/eimm.sock stats
//   sketch_client --socket /tmp/eimm.sock reload [--snapshot PATH]
//   sketch_client --socket /tmp/eimm.sock shutdown
//
// Resilience flags (any verb): --retries N caps retry attempts on
// transient failures (default 1 = single shot), --deadline-ms N bounds
// the whole call including backoff sleeps.
//
// Query output matches `sketch_cli query` exactly, so CI can diff the
// two paths: same store + same query must yield byte-identical seed
// lines whether served over the socket or computed in-process.
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace {

using namespace eimm;

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --socket PATH ping|info|stats|shutdown\n"
               "       %s --socket PATH query --k N [--candidates LIST]\n"
               "          [--forbid LIST]       LIST = comma-separated ids\n"
               "       %s --socket PATH reload [--snapshot PATH]\n"
               "       any verb: --retries N (attempts on transient errors,\n"
               "       default 1) and --deadline-ms N (whole-call bound)\n",
               argv0, argv0, argv0);
  std::exit(error != nullptr ? 2 : 0);
}

std::vector<VertexId> parse_vertex_list(const char* argv0,
                                        const std::string& list) {
  std::vector<VertexId> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(pos, comma - pos);
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
        value > std::numeric_limits<VertexId>::max()) {
      usage(argv0, ("vertex list entry '" + token +
                    "' is not a valid vertex id")
                       .c_str());
    }
    out.push_back(static_cast<VertexId>(value));
    pos = comma + 1;
  }
  return out;
}

void print_histogram_line(const char* label,
                          const obs::HistogramSnapshot& histogram) {
  std::printf("%s: count=%llu mean=%.1f p50=%.1f p99=%.1f\n", label,
              static_cast<unsigned long long>(histogram.count),
              histogram.mean(), histogram.quantile(0.5),
              histogram.quantile(0.99));
}

void print_query_result(const QueryResult& result) {
  std::printf("seeds:");
  for (const VertexId s : result.seeds) std::printf(" %u", s);
  std::printf("\ncovered %llu / %llu sketches — estimated spread %.1f "
              "(%.2f%% of |V|)\n",
              static_cast<unsigned long long>(result.covered_sketches),
              static_cast<unsigned long long>(result.total_sketches),
              result.estimated_spread, 100.0 * result.coverage_fraction());
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string verb;
  std::string snapshot_path;
  QueryOptions query;
  RetryOptions retry;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--k") {
      query.k = static_cast<std::size_t>(
          std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--candidates") {
      query.candidates = parse_vertex_list(argv[0], next());
    } else if (arg == "--forbid") {
      query.forbidden = parse_vertex_list(argv[0], next());
    } else if (arg == "--retries") {
      retry.max_attempts = static_cast<std::size_t>(
          std::strtoull(next().c_str(), nullptr, 10));
      if (retry.max_attempts == 0) {
        usage(argv[0], "--retries must be at least 1");
      }
    } else if (arg == "--deadline-ms") {
      retry.deadline = std::chrono::milliseconds(
          std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0], ("unknown option " + arg).c_str());
    } else if (verb.empty()) verb = arg;
    else usage(argv[0], ("unexpected argument " + arg).c_str());
  }
  if (socket_path.empty()) usage(argv[0], "--socket PATH is required");
  if (verb.empty()) usage(argv[0], "missing verb");

  try {
    SketchClient client(socket_path, retry);
    if (verb == "ping") {
      client.ping();
      std::printf("pong\n");
    } else if (verb == "info") {
      const SketchClient::Info info = client.info();
      std::printf("store: workload=%s model=%s |V|=%u sketches=%llu "
                  "k_max=%llu\n",
                  info.workload.empty() ? "(unnamed)" : info.workload.c_str(),
                  info.model.c_str(), info.num_vertices,
                  static_cast<unsigned long long>(info.num_sketches),
                  static_cast<unsigned long long>(info.k_max));
      std::printf("load:  %s, %.1f MiB mapped, %.1f MiB copied\n",
                  info.mmap_backed ? "mmap" : "stream/built",
                  static_cast<double>(info.bytes_mapped) / (1024.0 * 1024.0),
                  static_cast<double>(info.bytes_copied) / (1024.0 * 1024.0));
      std::printf("epoch: generation %llu\n",
                  static_cast<unsigned long long>(info.generation));
    } else if (verb == "query") {
      if (query.k == 0) usage(argv[0], "'query' requires --k N");
      print_query_result(query.constrained() ? client.select(query)
                                             : client.top_k(query.k));
    } else if (verb == "stats") {
      const SketchClient::ServerStats stats = client.stats();
      std::printf("requests: %llu (%llu timeouts)\n",
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.timeouts));
      std::printf("executor: %llu submitted, %llu cache hits, %llu rejected, "
                  "%llu batches (largest %llu)\n",
                  static_cast<unsigned long long>(stats.executor.submitted),
                  static_cast<unsigned long long>(stats.executor.cache_hits),
                  static_cast<unsigned long long>(stats.executor.rejected),
                  static_cast<unsigned long long>(stats.executor.batches),
                  static_cast<unsigned long long>(
                      stats.executor.largest_batch));
      std::printf("query cache: %llu hits / %llu misses, %llu evictions, "
                  "%llu entries\n",
                  static_cast<unsigned long long>(stats.cache.hits),
                  static_cast<unsigned long long>(stats.cache.misses),
                  static_cast<unsigned long long>(stats.cache.evictions),
                  static_cast<unsigned long long>(stats.cache.entries));
      std::printf("store: generation %llu, %llu reloads (%llu failed)\n",
                  static_cast<unsigned long long>(stats.generation),
                  static_cast<unsigned long long>(stats.reloads),
                  static_cast<unsigned long long>(stats.failed_reloads));
      print_histogram_line("queue wait us", stats.executor.queue_wait_us);
      print_histogram_line("batch size", stats.executor.batch_size);
      print_histogram_line("exec us", stats.executor.exec_us);
    } else if (verb == "reload") {
      const std::uint64_t generation = client.reload(snapshot_path);
      std::printf("reloaded: now serving generation %llu\n",
                  static_cast<unsigned long long>(generation));
    } else if (verb == "shutdown") {
      client.shutdown_server();
      std::printf("server shutting down\n");
    } else {
      usage(argv[0], ("unknown verb " + verb).c_str());
    }
    // Retry accounting goes to stderr so the stdout byte-diff against
    // sketch_cli stays clean even when transient faults were retried.
    const RetryStats rs = client.retry_stats();
    if (rs.retries > 0 || rs.reconnects > 0) {
      std::fprintf(stderr,
                   "note: %llu retr%s, %llu reconnect%s before success\n",
                   static_cast<unsigned long long>(rs.retries),
                   rs.retries == 1 ? "y" : "ies",
                   static_cast<unsigned long long>(rs.reconnects),
                   rs.reconnects == 1 ? "" : "s");
    }
    return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
