// Range-partition helpers: the building block of both parallelization
// strategies (vertex partitioning in the Ripples baseline, RRR-set
// partitioning in EfficientIMM).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/macros.hpp"

namespace eimm {

/// Half-open block [begin, end) owned by `part` out of `parts` when
/// `total` items are split as evenly as possible (first `total % parts`
/// blocks get one extra item).
inline std::pair<std::size_t, std::size_t> block_range(std::size_t total,
                                                       std::size_t parts,
                                                       std::size_t part) {
  EIMM_CHECK(parts > 0 && part < parts, "invalid partition");
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t begin = part * base + (part < extra ? part : extra);
  const std::size_t size = base + (part < extra ? 1 : 0);
  return {begin, begin + size};
}

/// All `parts` block ranges at once — the per-shard / per-rank loop body
/// of the sharded sampler and the distributed simulation.
inline std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t total, std::size_t parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    out.push_back(block_range(total, parts, p));
  }
  return out;
}

/// Owner of item `index` under block_range partitioning.
inline std::size_t block_owner(std::size_t total, std::size_t parts,
                               std::size_t index) {
  EIMM_CHECK(index < total, "index out of range");
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t big_items = (base + 1) * extra;  // items in the big blocks
  if (index < big_items) return index / (base + 1);
  return extra + (index - big_items) / (base == 0 ? 1 : base);
}

}  // namespace eimm
