#include "simulate/heuristics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(TopDegree, StarHubFirst) {
  const CSRGraph g = build_csr(gen_star(10), 10);
  const auto seeds = top_degree_seeds(g, 3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(TopDegree, TiesBreakToLowestId) {
  const CSRGraph g = build_csr(gen_cycle(8), 8);  // all degree 1
  const auto seeds = top_degree_seeds(g, 3);
  EXPECT_EQ(seeds, (std::vector<VertexId>{0, 1, 2}));
}

TEST(TopDegree, OrderedByDegree) {
  // Degrees: v0 has 3 out-edges, v1 has 2, v2 has 1.
  const CSRGraph g = build_csr(
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4);
  const auto seeds = top_degree_seeds(g, 3);
  EXPECT_EQ(seeds, (std::vector<VertexId>{0, 1, 2}));
}

TEST(TopDegree, RejectsBadK) {
  const CSRGraph g = build_csr(gen_star(5), 5);
  EXPECT_THROW(top_degree_seeds(g, 0), CheckError);
  EXPECT_THROW(top_degree_seeds(g, 6), CheckError);
}

TEST(RandomSeeds, DistinctAndInRange) {
  const auto seeds = random_seeds(100, 20, 7);
  EXPECT_EQ(seeds.size(), 20u);
  std::set<VertexId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const VertexId v : seeds) EXPECT_LT(v, 100u);
}

TEST(RandomSeeds, DeterministicInSeed) {
  EXPECT_EQ(random_seeds(50, 10, 3), random_seeds(50, 10, 3));
  EXPECT_NE(random_seeds(50, 10, 3), random_seeds(50, 10, 4));
}

TEST(RandomSeeds, FullSaturation) {
  const auto seeds = random_seeds(5, 5, 11);
  std::set<VertexId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RandomSeeds, RejectsBadK) {
  EXPECT_THROW(random_seeds(10, 0, 1), CheckError);
  EXPECT_THROW(random_seeds(10, 11, 1), CheckError);
}

}  // namespace
}  // namespace eimm
