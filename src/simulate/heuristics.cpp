#include "simulate/heuristics.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {

std::vector<VertexId> top_degree_seeds(const CSRGraph& forward,
                                       std::size_t k) {
  const VertexId n = forward.num_vertices();
  EIMM_CHECK(k >= 1 && k <= n, "k out of range");
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](VertexId a, VertexId b) {
                      const EdgeId da = forward.degree(a);
                      const EdgeId db = forward.degree(b);
                      if (da != db) return da > db;
                      return a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<VertexId> random_seeds(VertexId num_vertices, std::size_t k,
                                   std::uint64_t seed) {
  EIMM_CHECK(k >= 1 && k <= num_vertices, "k out of range");
  Xoshiro256 rng(seed);
  std::unordered_set<VertexId> chosen;
  std::vector<VertexId> seeds;
  seeds.reserve(k);
  while (seeds.size() < k) {
    const auto v = static_cast<VertexId>(rng.next_bounded(num_vertices));
    if (chosen.insert(v).second) seeds.push_back(v);
  }
  return seeds;
}

}  // namespace eimm
