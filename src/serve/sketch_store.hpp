// SketchStore — the frozen, queryable image of one IMM build.
//
// The paper's asymmetry (sampling dominates, selection is cheap) is also
// a serving opportunity: generate the RRR sketches ONCE with the full
// martingale machinery, then answer many independent seed-selection
// queries against the frozen pool without regeneration — the same
// build/serve split HBMax exploits by compressing RRR state for reuse.
//
// The store holds two immutable CSR indexes over the same pool:
//   sketch → member vertices   (the flattened pool; drives decrements)
//   vertex → covering sketches (the inverted index; after a pick, jump
//                               straight to the covered sketches instead
//                               of scanning all θ sets)
// plus the precomputed unconstrained greedy sequence up to the build-time
// cap k_max, so plain top-k queries are an O(k) prefix read.
//
// Zero-copy freezing: build() takes ownership of the PoolBuild's storage
// and serves sketch() spans straight from it — arena runs of the sharded
// SegmentedPool, or the RRRSets' own sorted vectors (only bitmap sets
// are expanded, into one side array). The contiguous CSR image is NOT
// materialized at build time; flatten is deferred to save() (or an
// explicit materialize_flat()), so build-and-query-only workloads never
// pay the copy. Stores that come back from load() are flat by nature.
//
// Everything is read-only after build/load — queries allocate their own
// scratch (see QueryEngine) — so any number of threads can serve from one
// store concurrently. Snapshots round-trip through the eimm::bin
// primitives of io/binary; save→load→save is bit-identical, and a
// deferred-backing store compares equal (operator== is logical, not
// representational) to its own loaded snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/imm.hpp"
#include "graph/types.hpp"
#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"

namespace eimm {

/// Sketch ids are dense [0, num_sketches); 32 bits bounds a store at
/// ~4.3B sketches, far above the 2^22 default generation cap.
using SketchId = std::uint32_t;

/// Build provenance carried in every snapshot: enough to reproduce the
/// store (workload + seed + accuracy) and to label benchmark output.
struct SketchStoreMeta {
  std::string workload;  // free-form dataset label
  std::string model;     // "IC" | "LT"
  std::uint64_t rng_seed = 0;
  double epsilon = 0.0;
  std::uint64_t theta = 0;  // martingale θ the build requested
  bool theta_capped = false;

  friend bool operator==(const SketchStoreMeta&,
                         const SketchStoreMeta&) = default;
};

class SketchStore {
 public:
  /// Runs the sampling phase (identical to run_imm with Engine::kEfficient
  /// and the same options) and freezes the resulting build WITHOUT
  /// flattening it (see from_build). options.k is the build-time query
  /// cap: queries may ask for any k ≤ k_max. The cap is clamped to |V|
  /// (greedy can never return more seeds).
  static SketchStore build(const DiffusionGraph& graph,
                           const ImmOptions& options,
                           std::string workload_label = "");

  /// Zero-copy freeze: takes ownership of the build's storage (the
  /// SegmentedPool arenas on the sharded path, the RRRPool otherwise)
  /// and serves sketches in place. Only bitmap-represented sets are
  /// expanded; the contiguous image is deferred to save().
  static SketchStore from_build(PoolBuild&& build, std::size_t k_max,
                                SketchStoreMeta meta = {});

  /// Freezes a COPY of an existing pool via the contiguous image (test
  /// seam and offline conversions; the caller keeps the pool).
  static SketchStore from_pool(const RRRPool& pool, std::size_t k_max,
                               SketchStoreMeta meta = {});

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::uint64_t num_sketches() const noexcept {
    return num_sketches_;
  }
  [[nodiscard]] std::size_t k_max() const noexcept { return k_max_; }
  [[nodiscard]] const SketchStoreMeta& meta() const noexcept { return meta_; }

  /// Member vertices of sketch `s`, ascending — served from the flat
  /// image when one exists, otherwise straight from the owned backing
  /// storage (zero-copy).
  [[nodiscard]] std::span<const VertexId> sketch(SketchId s) const noexcept {
    const std::uint64_t len = sketch_offsets_[s + 1] - sketch_offsets_[s];
    if (flat_) {
      return {sketch_vertices_.data() + sketch_offsets_[s], len};
    }
    return {entry_ptrs_[s], len};
  }

  /// True when the contiguous CSR image is materialized (always after
  /// load(); after build() only once save()/materialize_flat() ran).
  [[nodiscard]] bool flat() const noexcept { return flat_; }

  /// Builds the contiguous image from the backing storage, switches
  /// sketch() to serve from it, and releases the backing (idempotent).
  /// NOT safe against concurrent readers: it frees the storage deferred
  /// sketch() spans point into, so call it before publishing the store
  /// to serving threads (or rely on save(), which assembles a transient
  /// payload without touching the backing). Useful to pay the copy once
  /// before repeated save()s.
  void materialize_flat();

  /// Sketches covering vertex `v`, ascending.
  [[nodiscard]] std::span<const SketchId> covering(VertexId v) const noexcept {
    return {node_sketches_.data() + node_offsets_[v],
            node_sketches_.data() + node_offsets_[v + 1]};
  }

  /// Number of sketches covering `v` — exactly the initial value of the
  /// Algorithm 2 vertex-occurrence counter.
  [[nodiscard]] std::uint64_t degree(VertexId v) const noexcept {
    return node_offsets_[v + 1] - node_offsets_[v];
  }

  /// The unconstrained greedy sequence (≤ k_max seeds; shorter when the
  /// pool is exhausted first) and each seed's marginal coverage.
  [[nodiscard]] const std::vector<VertexId>& default_seeds() const noexcept {
    return default_seeds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& default_marginals()
      const noexcept {
    return default_marginals_;
  }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

  // --- Snapshots (eimm::bin format, magic "EIMMSKS") ---
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  static SketchStore load(std::istream& is);
  static SketchStore load_file(const std::string& path);

  /// Logical equality: same shape, meta, and per-sketch members —
  /// independent of which storage backs each side, so a deferred store
  /// equals its own loaded (flat) snapshot.
  friend bool operator==(const SketchStore& a, const SketchStore& b);

 private:
  SketchStore() = default;

  /// Derives the inverted index and the default greedy sequence from the
  /// sketch members (shared by every construction path — snapshots carry
  /// only the primary data). Reads through sketch(), so it works over
  /// flat and deferred backings alike.
  void finalize();

  /// Assembles the contiguous payload from sketch() spans (the deferred
  /// flatten, shared by save() and materialize_flat()).
  [[nodiscard]] std::vector<VertexId> assemble_payload() const;

  VertexId num_vertices_ = 0;
  std::uint64_t num_sketches_ = 0;
  std::uint64_t k_max_ = 0;
  SketchStoreMeta meta_;
  std::vector<std::uint64_t> sketch_offsets_;  // num_sketches_ + 1
  /// Contiguous payload; populated iff flat_.
  std::vector<VertexId> sketch_vertices_;
  bool flat_ = false;
  /// Deferred backing (used iff !flat_): per-sketch member pointers into
  /// the owned storage below. Pointers survive moves of the store — the
  /// containers' heap/mmap allocations never relocate.
  std::vector<const VertexId*> entry_ptrs_;
  RRRPool backing_pool_{0};
  SegmentedPool backing_segments_;
  std::vector<VertexId> bitmap_expansion_;  // expanded bitmap sets only
  std::vector<std::uint64_t> node_offsets_;  // num_vertices_ + 1
  std::vector<SketchId> node_sketches_;
  std::vector<VertexId> default_seeds_;
  std::vector<std::uint64_t> default_marginals_;
};

}  // namespace eimm
