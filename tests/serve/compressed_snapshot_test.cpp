// v3 (compressed) snapshot coverage: gap-coded sketch payloads must
// round-trip through both loaders, serve identical queries to the flat
// v2 image, reject structural corruption with typed errors, and adopt a
// compressed PoolBuild without materializing the flat payload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "io/binary.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

constexpr std::size_t kVersionAt = 8;
constexpr std::size_t kFileBytesAt = 16;

SketchStore make_store(PoolCompression compress = PoolCompression::kNone) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 4096;
  options.pool_compress = compress;
  return SketchStore::build(g, options, "amazon-compressed");
}

std::string snapshot_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

template <typename T>
void store_at(std::string& data, std::size_t at, T v) {
  std::memcpy(data.data() + at, &v, sizeof v);
}

TEST(CompressedSnapshot, V3RoundTripsThroughBothLoaders) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_v3_roundtrip.sks");
  SnapshotSaveOptions save;
  save.compress = true;
  store.save_file(path, save);

  SnapshotLoadOptions stream_options;
  stream_options.mode = SnapshotLoadMode::kStream;
  const SketchStore streamed = SketchStore::load_file(path, stream_options);
  EXPECT_EQ(streamed.load_stats().version, 4u);
  EXPECT_TRUE(streamed.load_stats().compressed);
  EXPECT_GT(streamed.load_stats().compressed_payload_bytes, 0u);
  EXPECT_TRUE(streamed.compressed());
  EXPECT_TRUE(store == streamed);

  SnapshotLoadOptions map_options;
  map_options.mode = SnapshotLoadMode::kMap;
  const SketchStore mapped = SketchStore::load_file(path, map_options);
  EXPECT_EQ(mapped.load_stats().version, 4u);
  EXPECT_TRUE(mapped.load_stats().mmap_backed);
  EXPECT_EQ(mapped.load_stats().bytes_copied, 0u);
  EXPECT_TRUE(mapped.compressed());
  EXPECT_TRUE(store == mapped);

  // Re-saving the compressed load must reproduce the v3 bytes exactly.
  std::stringstream resaved;
  SnapshotSaveOptions resave;
  resave.compress = true;
  mapped.save(resaved, resave);
  EXPECT_EQ(resaved.str(), read_file(path));
}

TEST(CompressedSnapshot, V3IsSmallerThanV2AndServesIdenticalQueries) {
  const SketchStore store = make_store();
  const std::string v2_path = snapshot_path("eimm_v3_cmp_v2.sks");
  const std::string v3_path = snapshot_path("eimm_v3_cmp_v3.sks");
  store.save_file(v2_path);
  SnapshotSaveOptions save;
  save.compress = true;
  store.save_file(v3_path, save);

  const std::string v2_bytes = read_file(v2_path);
  const std::string v3_bytes = read_file(v3_path);
  EXPECT_LT(v3_bytes.size(), v2_bytes.size());

  const SketchStore flat = SketchStore::load_file(v2_path);
  const SketchStore compressed = SketchStore::load_file(v3_path);
  EXPECT_FALSE(flat.compressed());
  EXPECT_TRUE(compressed.compressed());
  EXPECT_TRUE(flat == compressed);

  const QueryEngine a(flat);
  const QueryEngine b(compressed);
  EXPECT_EQ(a.top_k(6).seeds, b.top_k(6).seeds);
  QueryOptions constrained;
  constrained.k = 4;
  constrained.forbidden = {a.top_k(1).seeds[0]};
  EXPECT_EQ(a.select(constrained).seeds, b.select(constrained).seeds);
}

TEST(CompressedSnapshot, MemberEnumerationMatchesFlatSpans) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_v3_members.sks");
  SnapshotSaveOptions save;
  save.compress = true;
  store.save_file(path, save);
  const SketchStore compressed = SketchStore::load_file(path);

  ASSERT_EQ(compressed.num_sketches(), store.num_sketches());
  for (std::uint64_t s = 0; s < store.num_sketches(); ++s) {
    const auto id = static_cast<SketchId>(s);
    EXPECT_EQ(compressed.member_count(id), store.sketch(id).size());
    std::vector<VertexId> members;
    compressed.for_each_member(id, [&](VertexId v) {
      members.push_back(v);
    });
    const std::span<const VertexId> expected = store.sketch(id);
    ASSERT_EQ(members.size(), expected.size()) << s;
    EXPECT_TRUE(std::equal(members.begin(), members.end(),
                           expected.begin()))
        << s;
  }
  // Raw spans are unavailable on the compressed store — loud contract,
  // not a silent empty span.
  EXPECT_THROW((void)compressed.sketch(0), CheckError);
}

TEST(CompressedSnapshot, MaterializeFlatRestoresSpans) {
  const std::string path = snapshot_path("eimm_v3_materialize.sks");
  SnapshotSaveOptions save;
  save.compress = true;
  make_store().save_file(path, save);
  SketchStore compressed = SketchStore::load_file(path);
  ASSERT_TRUE(compressed.compressed());

  const SketchStore reference = SketchStore::load_file(path);
  compressed.materialize_flat();
  EXPECT_FALSE(compressed.compressed());
  for (std::uint64_t s = 0; s < compressed.num_sketches(); ++s) {
    const auto id = static_cast<SketchId>(s);
    EXPECT_EQ(compressed.member_count(id), reference.member_count(id));
  }
  EXPECT_TRUE(compressed == reference);
}

TEST(CompressedSnapshot, CompressedBuildAdoptsPoolWithoutFlattening) {
  for (const PoolCompression mode :
       {PoolCompression::kVarint, PoolCompression::kHuffman}) {
    const SketchStore compressed = make_store(mode);
    EXPECT_TRUE(compressed.compressed());
    EXPECT_GT(compressed.compressed_payload_bytes(), 0u);

    const SketchStore raw = make_store();
    EXPECT_FALSE(raw.compressed());
    EXPECT_TRUE(raw == compressed) << to_string(mode);
    const std::span<const VertexId> raw_seeds = raw.default_seeds();
    const std::span<const VertexId> comp_seeds = compressed.default_seeds();
    ASSERT_EQ(raw_seeds.size(), comp_seeds.size());
    EXPECT_TRUE(std::equal(raw_seeds.begin(), raw_seeds.end(),
                           comp_seeds.begin()));

    // Both saves (v2 and v3) of the compressed-build store must load
    // back equal to the raw-build image.
    const std::string path = snapshot_path("eimm_v3_adopted.sks");
    SnapshotSaveOptions save;
    save.compress = true;
    compressed.save_file(path, save);
    EXPECT_TRUE(raw == SketchStore::load_file(path)) << to_string(mode);
    compressed.save_file(path);
    EXPECT_TRUE(raw == SketchStore::load_file(path)) << to_string(mode);
  }
}

TEST(CompressedSnapshot, StructuralCorruptionsThrow) {
  const std::string path = snapshot_path("eimm_v3_corrupt.sks");
  SnapshotSaveOptions save;
  save.compress = true;
  make_store().save_file(path, save);
  const std::string good = read_file(path);

  {
    // Wrong section count for a v3 header.
    std::string bad = good;
    store_at(bad, 12, std::uint32_t{7});
    write_file(path, bad);
    EXPECT_THROW(SketchStore::load_file(path), bin::FormatError);
  }
  {
    // Truncated file: declared length disagrees.
    std::string bad = good.substr(0, good.size() - 64);
    write_file(path, bad);
    EXPECT_THROW(SketchStore::load_file(path), bin::FormatError);
    SnapshotLoadOptions stream_options;
    stream_options.mode = SnapshotLoadMode::kStream;
    EXPECT_THROW(SketchStore::load_file(path, stream_options),
                 bin::FormatError);
  }
  {
    // Unknown version.
    std::string bad = good;
    store_at(bad, kVersionAt, std::uint32_t{9});
    write_file(path, bad);
    EXPECT_THROW(SketchStore::load_file(path), bin::FormatError);
  }
  {
    // Bytes-declared-vs-real mismatch in the header.
    std::string bad = good;
    store_at(bad, kFileBytesAt,
             static_cast<std::uint64_t>(good.size() + 8));
    write_file(path, bad);
    EXPECT_THROW(SketchStore::load_file(path), bin::FormatError);
  }
}

TEST(CompressedSnapshot, TamperedGapPayloadFailsValidation) {
  const SketchStore store = make_store();
  const std::string path = snapshot_path("eimm_v3_tampered.sks");
  SnapshotSaveOptions save;
  save.compress = true;
  store.save_file(path, save);
  std::string bytes = read_file(path);

  // Locate the gap-coded payload (section id 3) through the section
  // table: entries of {u32 id, u32 reserved, u64 offset, u64 bytes}
  // starting at byte 24.
  std::uint64_t payload_at = 0;
  std::uint64_t payload_bytes = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint32_t id = 0;
    std::memcpy(&id, bytes.data() + 24 + i * 24, sizeof id);
    if (id == 3) {
      std::memcpy(&payload_at, bytes.data() + 24 + i * 24 + 8,
                  sizeof payload_at);
      std::memcpy(&payload_bytes, bytes.data() + 24 + i * 24 + 16,
                  sizeof payload_bytes);
    }
  }
  ASSERT_GT(payload_bytes, 0u);

  // An all-0xFF run forges an endless varint continuation chain; the
  // hardened decoder must throw (shift cap / truncation), never read out
  // of bounds, and the stream loader's payload validation surfaces it.
  for (std::uint64_t i = 0; i < payload_bytes; ++i) {
    bytes[payload_at + i] = static_cast<char>(0xFF);
  }
  write_file(path, bytes);
  SnapshotLoadOptions stream_options;
  stream_options.mode = SnapshotLoadMode::kStream;
  EXPECT_THROW(SketchStore::load_file(path, stream_options), CheckError);

  // The mmap loader defers payload decode; --deep-validate must catch it.
  SnapshotLoadOptions deep;
  deep.mode = SnapshotLoadMode::kMap;
  deep.deep_validate = true;
  EXPECT_THROW(SketchStore::load_file(path, deep), CheckError);
}

}  // namespace
}  // namespace eimm
