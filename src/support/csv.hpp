// CSV writer for the speedup_{ic,lt}.csv-style summaries the SC'24
// artifact produces from its JSON logs.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace eimm {

/// Row-oriented CSV writer. Fields containing commas, quotes, or newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes a full row from string fields.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Incremental interface: cell() appends one field, end_row() terminates.
  template <typename T>
  CsvWriter& cell(const T& v) {
    std::ostringstream os;
    os << v;
    pending_.push_back(os.str());
    return *this;
  }
  void end_row();

  static std::string escape(std::string_view field);

 private:
  std::ostream& os_;
  std::vector<std::string> pending_;
};

}  // namespace eimm
