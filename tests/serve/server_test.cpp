// Serving-layer coverage, bottom-up: the wire codec (pure byte
// buffers), the BatchingExecutor admission layer, and a real
// SketchServer/SketchClient round trip over an AF_UNIX socket — every
// served answer is checked against a direct QueryEngine call on the
// same store.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

SketchStore make_store() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 4096;
  return SketchStore::build(g, options, "amazon-server");
}

void expect_results_equal(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.marginal_coverage, b.marginal_coverage);
  EXPECT_EQ(a.covered_sketches, b.covered_sketches);
  EXPECT_EQ(a.total_sketches, b.total_sketches);
  EXPECT_DOUBLE_EQ(a.estimated_spread, b.estimated_spread);
}

// --- wire codec ---

TEST(Wire, QueryRoundTrips) {
  QueryOptions query;
  query.k = 7;
  query.candidates = {3, 1, 4};
  query.forbidden = {15, 9};

  wire::WireWriter w;
  wire::encode_query(w, query);
  const std::vector<std::uint8_t> bytes = w.bytes();

  wire::WireReader r(bytes);
  const QueryOptions back = wire::decode_query(r);
  r.expect_done();
  EXPECT_EQ(back.k, query.k);
  EXPECT_EQ(back.candidates, query.candidates);
  EXPECT_EQ(back.forbidden, query.forbidden);
}

TEST(Wire, ResultRoundTrips) {
  QueryResult result;
  result.seeds = {10, 20, 30};
  result.marginal_coverage = {100, 50, 25};
  result.covered_sketches = 175;
  result.total_sketches = 400;
  result.estimated_spread = 123.5;

  wire::WireWriter w;
  wire::encode_result(w, result);
  const std::vector<std::uint8_t> bytes = w.bytes();

  wire::WireReader r(bytes);
  const QueryResult back = wire::decode_result(r);
  r.expect_done();
  expect_results_equal(result, back);
}

TEST(Wire, ScalarAndStringRoundTrips) {
  wire::WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x1122334455667788ull);
  w.f64(-2.5);
  w.str("hello");
  w.str("");

  const std::vector<std::uint8_t> bytes = w.bytes();
  wire::WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_DOUBLE_EQ(r.f64(), -2.5);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  r.expect_done();
}

TEST(Wire, TruncatedPayloadThrows) {
  wire::WireWriter w;
  w.u64(42);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.pop_back();
  wire::WireReader r(bytes);
  EXPECT_THROW((void)r.u64(), CheckError);
}

TEST(Wire, TruncatedIdListThrows) {
  wire::WireWriter w;
  w.u32(5);  // claims five ids...
  w.u32(1);  // ...delivers one
  const std::vector<std::uint8_t> bytes = w.bytes();
  wire::WireReader r(bytes);
  EXPECT_THROW((void)r.ids(), CheckError);
}

TEST(Wire, TrailingBytesThrowOnExpectDone) {
  wire::WireWriter w;
  w.u8(1);
  w.u8(2);
  const std::vector<std::uint8_t> bytes = w.bytes();
  wire::WireReader r(bytes);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.expect_done(), CheckError);
}

// --- BatchingExecutor ---

TEST(BatchingExecutor, SingleSubmitMatchesDirectEngine) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  BatchingExecutor executor(engine, ExecutorOptions{});

  QueryOptions query;
  query.k = 4;
  std::future<QueryResult> f = executor.submit(query);
  expect_results_equal(f.get(), engine.answer(query));
  EXPECT_EQ(executor.stats().submitted, 1u);
}

TEST(BatchingExecutor, ConcurrentSubmitsAllCorrectAndBatched) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  ExecutorOptions options;
  options.batch_window = std::chrono::microseconds(2000);
  BatchingExecutor executor(engine, options);

  constexpr std::size_t kQueries = 48;
  std::vector<QueryOptions> queries(kQueries);
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries[i].k = 1 + i % store.k_max();
    if (i % 3 == 1) queries[i].forbidden = {static_cast<VertexId>(i)};
    futures.push_back(executor.submit(queries[i]));
  }
  for (std::size_t i = 0; i < kQueries; ++i) {
    expect_results_equal(futures[i].get(), engine.answer(queries[i]));
  }
  const BatchingExecutor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, kQueries);
  // The coalescing window must have merged at least some submissions.
  EXPECT_LT(stats.batches, kQueries);
  EXPECT_GT(stats.largest_batch, 1u);
}

TEST(BatchingExecutor, InvalidQueryFailsSynchronously) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  BatchingExecutor executor(engine, ExecutorOptions{});

  QueryOptions zero_k;
  zero_k.k = 0;
  EXPECT_THROW((void)executor.submit(zero_k), CheckError);

  QueryOptions too_big;
  too_big.k = store.k_max() + 1;
  EXPECT_THROW((void)executor.submit(too_big), CheckError);

  QueryOptions bad_id;
  bad_id.k = 1;
  bad_id.forbidden = {store.num_vertices()};
  EXPECT_THROW((void)executor.submit(bad_id), CheckError);

  // A good query still works afterwards — bad ones never poison a batch.
  QueryOptions good;
  good.k = 2;
  EXPECT_EQ(executor.submit(good).get().seeds, engine.top_k(2).seeds);
}

TEST(BatchingExecutor, OverloadRejectsInsteadOfGrowing) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  ExecutorOptions options;
  options.max_queue = 2;
  options.max_batch = 1024;  // keep the window from dispatching early
  options.batch_window = std::chrono::microseconds(200000);
  BatchingExecutor executor(engine, options);

  QueryOptions query;
  query.k = 1;
  std::vector<std::future<QueryResult>> futures;
  std::uint64_t overloads = 0;
  for (int i = 0; i < 32; ++i) {
    try {
      futures.push_back(executor.submit(query));
    } catch (const OverloadError&) {
      ++overloads;
    }
  }
  EXPECT_GT(overloads, 0u);
  EXPECT_EQ(executor.stats().rejected, overloads);
  executor.stop();  // drains the admitted queries
  for (auto& f : futures) EXPECT_EQ(f.get().seeds, engine.top_k(1).seeds);
}

TEST(BatchingExecutor, RepeatedConstrainedQueryHitsCache) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  BatchingExecutor executor(engine, ExecutorOptions{});

  QueryOptions query;
  query.k = 3;
  query.forbidden = {engine.top_k(1).seeds[0]};
  const QueryResult first = executor.submit(query).get();
  const QueryResult second = executor.submit(query).get();
  expect_results_equal(first, second);
  expect_results_equal(first, engine.select(query));
  EXPECT_GE(executor.stats().cache_hits, 1u);
}

TEST(BatchingExecutor, StopDrainsAdmittedWork) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  ExecutorOptions options;
  options.batch_window = std::chrono::microseconds(100000);
  BatchingExecutor executor(engine, options);

  QueryOptions query;
  query.k = 2;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(executor.submit(query));
  executor.stop();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().seeds, engine.top_k(2).seeds);
  }
}

// --- SketchServer + SketchClient over a real socket ---

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<SketchStore>(make_store());
    engine_ = std::make_unique<QueryEngine>(*store_);
    ServerOptions options;
    options.socket_path = ::testing::TempDir() + "/eimm_server_test_" +
                          std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
                          ".sock";
    server_ = std::make_unique<SketchServer>(*store_, options);
    server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<SketchStore> store_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<SketchServer> server_;
};

TEST_F(ServerFixture, PingAndInfo) {
  SketchClient client(server_->socket_path());
  client.ping();
  const SketchClient::Info info = client.info();
  EXPECT_EQ(info.num_vertices, store_->num_vertices());
  EXPECT_EQ(info.num_sketches, store_->num_sketches());
  EXPECT_EQ(info.k_max, store_->k_max());
  EXPECT_EQ(info.workload, store_->meta().workload);
  EXPECT_EQ(info.model, store_->meta().model);
  EXPECT_GE(server_->requests_served(), 2u);
}

TEST_F(ServerFixture, ServedQueriesMatchDirectEngine) {
  SketchClient client(server_->socket_path());

  expect_results_equal(client.top_k(6), engine_->top_k(6));

  QueryOptions constrained;
  constrained.k = 4;
  constrained.forbidden = {engine_->top_k(1).seeds[0]};
  expect_results_equal(client.select(constrained),
                       engine_->select(constrained));

  std::vector<QueryOptions> queries(5);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].k = i + 1;
    if (i % 2 == 1) {
      queries[i].candidates = engine_->top_k(4).seeds;
    }
  }
  const std::vector<QueryResult> served = client.batch(queries);
  ASSERT_EQ(served.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_results_equal(served[i], engine_->answer(queries[i]));
  }
}

TEST_F(ServerFixture, InvalidQueryGetsErrorResponseNotHangup) {
  SketchClient client(server_->socket_path());
  try {
    (void)client.top_k(store_->k_max() + 1);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("server"), std::string::npos);
  }
  // The connection survives an error response.
  client.ping();
  expect_results_equal(client.top_k(2), engine_->top_k(2));
}

TEST_F(ServerFixture, ConcurrentClientsAllGetCorrectAnswers) {
  constexpr int kClients = 6;
  std::vector<int> ok(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      SketchClient client(server_->socket_path());
      const std::size_t k = 1 + static_cast<std::size_t>(c) %
                                    store_->k_max();
      const QueryResult served = client.top_k(k);
      ok[static_cast<std::size_t>(c)] =
          served.seeds == engine_->top_k(k).seeds ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok[static_cast<std::size_t>(c)], 1) << c;
  }
}

TEST_F(ServerFixture, ShutdownVerbStopsServer) {
  {
    SketchClient client(server_->socket_path());
    client.shutdown_server();
  }
  server_->wait();
  EXPECT_FALSE(server_->running());
}

TEST(SketchServerStandalone, ConnectToMissingSocketThrows) {
  EXPECT_THROW(SketchClient("/nonexistent/eimm_no_server.sock"), CheckError);
}

TEST(SketchServerStandalone, StopIsIdempotentAndUnlinksSocket) {
  const SketchStore store = make_store();
  ServerOptions options;
  options.socket_path = ::testing::TempDir() + "/eimm_server_stop.sock";
  SketchServer server(store, options);
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_THROW(SketchClient(options.socket_path), CheckError);
}

// --- telemetry surface (kStats verb + executor histograms) ---

TEST(Wire, HistogramRoundTrips) {
  obs::AtomicHistogram source;
  source.observe(0);
  source.observe(1);
  source.observe(17);
  source.observe(1 << 20);
  const obs::HistogramSnapshot snap = source.snapshot();

  wire::WireWriter w;
  wire::encode_histogram(w, snap);
  wire::WireReader r(w.bytes());
  const obs::HistogramSnapshot back = wire::decode_histogram(r);
  r.expect_done();
  EXPECT_EQ(back.count, snap.count);
  EXPECT_EQ(back.sum, snap.sum);
  EXPECT_EQ(back.buckets, snap.buckets);
}

TEST(BatchingExecutor, StatsHistogramsTrackDispatch) {
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  BatchingExecutor executor(engine, ExecutorOptions{});

  QueryOptions repeated;
  repeated.k = 3;
  repeated.forbidden = {engine.top_k(1).seeds[0]};
  (void)executor.submit(repeated).get();
  (void)executor.submit(repeated).get();  // served from the query cache
  QueryOptions fresh;
  fresh.k = 2;
  (void)executor.submit(fresh).get();

  const BatchingExecutor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_GE(stats.cache_hits, 1u);
  // Every dispatched batch observes its size once; every enqueued query
  // (cache hits never enqueue) observes its queue wait once.
  EXPECT_EQ(stats.batch_size.count, stats.batches);
  EXPECT_EQ(stats.queue_wait_us.count, stats.submitted - stats.cache_hits);
  EXPECT_EQ(stats.exec_us.count, stats.batches);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : stats.batch_size.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, stats.batch_size.count);
  EXPECT_GE(stats.batch_size.sum, stats.batches);  // every batch size >= 1
}

TEST(BatchingExecutor, StatsSnapshotSafeWhileSubmitting) {
  // Satellite regression: Stats must be a consistent by-value snapshot
  // taken under the executor mutex — reading it concurrently with
  // submissions must be race-free (asan/tsan presets enforce this) and
  // monotonic in the counters.
  const SketchStore store = make_store();
  const QueryEngine engine(store);
  BatchingExecutor executor(engine, ExecutorOptions{});

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last_submitted = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const BatchingExecutor::Stats stats = executor.stats();
      EXPECT_GE(stats.submitted, last_submitted);
      EXPECT_GE(stats.submitted, stats.cache_hits);
      // Histograms are snapshotted after the scalar copy, so they may
      // run ahead of it — but never behind.
      EXPECT_GE(stats.batch_size.count, stats.batches);
      last_submitted = stats.submitted;
    }
  });

  constexpr std::size_t kQueries = 64;
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    QueryOptions q;
    q.k = 1 + i % store.k_max();
    futures.push_back(executor.submit(q));
  }
  for (auto& f : futures) (void)f.get();
  stop.store(true);
  reader.join();

  const BatchingExecutor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, kQueries);
  EXPECT_EQ(stats.queue_wait_us.count, stats.submitted - stats.cache_hits);
}

TEST_F(ServerFixture, StatsVerbMatchesScriptedSequence) {
  SketchClient client(server_->socket_path());
  client.ping();
  (void)client.top_k(4);
  QueryOptions constrained;
  constrained.k = 3;
  constrained.forbidden = {engine_->top_k(1).seeds[0]};
  (void)client.select(constrained);
  (void)client.select(constrained);  // query-cache hit

  const SketchClient::ServerStats stats = client.stats();
  // ping + top_k + 2 selects (the in-flight stats request may not be
  // counted yet).
  EXPECT_GE(stats.requests, 4u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.executor.submitted, 3u);
  EXPECT_GE(stats.executor.cache_hits, 1u);
  EXPECT_GE(stats.executor.batches, 1u);
  EXPECT_GE(stats.executor.largest_batch, 1u);
  EXPECT_EQ(stats.cache.hits, stats.executor.cache_hits);
  // Only the two constrained selects are cacheable; the unconstrained
  // top_k bypasses the cache without recording a miss.
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 2u);
  // Wire-decoded histograms carry the executor's real distributions.
  EXPECT_EQ(stats.executor.batch_size.count, stats.executor.batches);
  EXPECT_EQ(stats.executor.queue_wait_us.count,
            stats.executor.submitted - stats.executor.cache_hits);
  EXPECT_EQ(stats.executor.exec_us.count, stats.executor.batches);
  EXPECT_GE(stats.executor.batch_size.sum, stats.executor.batches);

  // A second stats call sees a strictly larger request count.
  const SketchClient::ServerStats again = client.stats();
  EXPECT_GT(again.requests, stats.requests);
  EXPECT_EQ(again.executor.submitted, stats.executor.submitted);
}

}  // namespace
}  // namespace eimm
