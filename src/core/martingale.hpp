// Martingale sample-size machinery of IMM (Tang, Shi, Xiao — SIGMOD'15),
// the "Theta Estimation", "OPT Lower Bound" and "Set Theta" steps of
// Algorithm 1 in the paper.
//
// The sampling phase probes guesses x = n/2^i for OPT: for each guess it
// needs θ_i = λ'/x RRR sets; if the greedy seed set covers enough of them
// (n·F(S) ≥ (1+ε')·x), then LB = n·F(S)/(1+ε') lower-bounds OPT with
// high probability and the final sample size θ = λ*/LB delivers a
// (1 − 1/e − ε)-approximation with probability ≥ 1 − 1/n^ℓ.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/types.hpp"

namespace eimm {

/// All derived constants for one (n, k, ε, ℓ) configuration.
struct MartingaleParams {
  std::uint64_t n = 0;
  std::size_t k = 0;
  double epsilon = 0.5;
  /// ε' = √2·ε, the looser accuracy used while probing for LB.
  double epsilon_prime = 0.0;
  /// ℓ boosted by (1 + ln2/ln n) so the union bound over the probing
  /// iterations still yields overall success probability 1 - 1/n^ℓ.
  double ell = 1.0;
  /// ln C(n, k).
  double log_choose_nk = 0.0;
  /// λ' — the sampling-phase constant (Tang et al., Eq. 9 region).
  double lambda_prime = 0.0;
  /// λ* — the final-phase constant (Tang et al., Theorem 1 region).
  double lambda_star = 0.0;

  /// Number of probing iterations: ⌈log2(n)⌉ - 1, at least 1.
  [[nodiscard]] unsigned max_iterations() const noexcept;

  /// θ_i = λ' / (n / 2^i) for probing iteration i (1-based).
  [[nodiscard]] std::uint64_t theta_for_iteration(unsigned i) const noexcept;

  /// θ = λ* / LB for the final sampling round.
  [[nodiscard]] std::uint64_t theta_final(double lower_bound) const noexcept;

  /// The probe-acceptance test: does coverage F(S) certify OPT ≥ x_i?
  [[nodiscard]] bool accepts(double coverage_fraction, unsigned i) const noexcept;

  /// LB implied by an accepted probe.
  [[nodiscard]] double lower_bound(double coverage_fraction) const noexcept;
};

/// ln C(n, k) via lgamma — stable for n in the billions.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Derives every constant above. ell is the caller's ℓ before boosting.
MartingaleParams compute_martingale_params(VertexId n, std::size_t k,
                                           double epsilon, double ell = 1.0);

/// One probing iteration of the sampling phase (Algorithm 1 lines 1-6).
struct MartingaleIteration {
  unsigned iteration = 0;       // i (1-based)
  std::uint64_t theta = 0;      // θ_i requested for this probe
  double coverage = 0.0;        // F(S_tmp) over the pool at this point
  double lower_bound = 0.0;     // LB implied by this probe
  bool accepted = false;        // did n·F(S) certify OPT >= x_i?
};

/// The shared sampling-phase workflow: probes x_i = n/2^i via
/// generate_to(θ_i) + select_coverage() until a probe accepts (with the
/// LB/2 fallback when none does), then tops up to θ = λ*/LB and returns
/// it. Both the single-node drivers and the distributed simulation run
/// exactly this loop, so any change to the acceptance logic lands in all
/// of them at once. `observe` (optional) receives each probe's record.
std::uint64_t run_martingale_probing(
    const MartingaleParams& params,
    const std::function<void(std::uint64_t)>& generate_to,
    const std::function<double()>& select_coverage,
    const std::function<void(const MartingaleIteration&)>& observe = {});

/// Clamps a theta request to the caller's pool budget. Sets `capped` and
/// warns (with the requested value, so the overshoot is visible) when the
/// budget truncates the request — the shared policy for every driver, so
/// "approximation guarantee weakened" means the same thing everywhere.
std::uint64_t cap_theta_request(std::uint64_t target, std::uint64_t max_sets,
                                bool& capped);

}  // namespace eimm
