#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eimm {
namespace {

TEST(Scc, CycleIsOneComponent) {
  const CSRGraph g = build_csr(gen_cycle(5), 5);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, 1u);
  EXPECT_EQ(result.largest_component_size(), 5u);
}

TEST(Scc, PathIsAllSingletons) {
  const CSRGraph g = build_csr(gen_path(6), 6);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, 6u);
  EXPECT_EQ(result.largest_component_size(), 1u);
}

TEST(Scc, TwoCyclesBridgedOneWay) {
  // Cycle {0,1,2}, cycle {3,4,5}, bridge 2 -> 3 (one direction only).
  const CSRGraph g = build_csr(
      {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}}, 6);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, 2u);
  EXPECT_EQ(result.largest_component_size(), 3u);
  // The two cycles are distinct components, members agree within each.
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_EQ(result.component[1], result.component[2]);
  EXPECT_EQ(result.component[3], result.component[4]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(Scc, CompleteGraphIsOneComponent) {
  const CSRGraph g = build_csr(gen_complete(8), 8);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, 1u);
}

TEST(Scc, StarIsAllSingletons) {
  const CSRGraph g = build_csr(gen_star(7), 7);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, 7u);
}

TEST(Scc, ComponentSizesSumToVertexCount) {
  const CSRGraph g = build_csr(gen_erdos_renyi(200, 600, 3), 0);
  const auto result = strongly_connected_components(g);
  const auto sizes = result.component_sizes();
  const auto total = std::accumulate(sizes.begin(), sizes.end(), VertexId{0});
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Scc, EmptyAdjacency) {
  const CSRGraph g = build_csr({}, 3);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, 3u);
}

TEST(Scc, ReverseTopologicalIdOrder) {
  // Tarjan assigns component ids in reverse topological order: the sink
  // SCC gets id 0. For 0 -> 1, vertex 1's component finishes first.
  const CSRGraph g = build_csr({{0, 1}}, 2);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.component[1], 0u);
  EXPECT_EQ(result.component[0], 1u);
}

TEST(Scc, DeepPathDoesNotOverflowStack) {
  // 200k-vertex path: a recursive Tarjan would blow the stack here.
  constexpr VertexId n = 200'000;
  const CSRGraph g = build_csr(gen_path(n), n);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.num_components, n);
}

}  // namespace
}  // namespace eimm
