#include "cachesim/harness.hpp"

#include "runtime/thread_info.hpp"

namespace eimm {

TracedSelectionReport run_traced_selection(Engine engine, const RRRPool& pool,
                                           std::size_t k, int threads,
                                           const CacheConfig& config) {
  ThreadCountScope scope(threads);
  TracedSelectionReport report;

  SelectionOptions options;
  options.k = k;
  options.adaptive_update = engine == Engine::kEfficient;
  options.dynamic_balance = false;  // keep the trace schedule-stable
  options.counters_prebuilt = false;

  TraceSession session(config);
  if (engine == Engine::kEfficient) {
    CounterArray counters(pool.num_vertices(), MemPolicy::kDefault);
    report.selection = efficient_select_t<TraceMem>(pool, counters, options);
  } else {
    report.selection = ripples_select_t<TraceMem>(pool, options);
  }
  report.cache = session.aggregate();
  report.traced_threads = session.thread_count();
  return report;
}

}  // namespace eimm
