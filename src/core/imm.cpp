#include "core/imm.hpp"

#include <omp.h>

#include <algorithm>

#include "core/martingale.hpp"
#include "runtime/thread_info.hpp"
#include "runtime/work_queue.hpp"
#include "rrr/generate.hpp"
#include "rrr/pool.hpp"
#include "seedselect/select.hpp"
#include "support/macros.hpp"
#include "support/timer.hpp"

namespace eimm {
namespace {

/// Builds pool slots [begin, end). Under kernel fusion (fused != nullptr)
/// each freshly sampled set also increments the base counter in place —
/// Algorithm 3 lines 14-16 — while its vertices are still cache-hot.
void generate_rrr_range(RRRPool& pool, const CSRGraph& reverse,
                        const ImmOptions& opt, Engine engine,
                        std::uint64_t begin, std::uint64_t end,
                        CounterArray* fused) {
  const VertexId n = reverse.num_vertices();
  const bool adaptive =
      engine == Engine::kEfficient && opt.adaptive_representation;

  auto build_one = [&](std::uint64_t index, SamplerScratch& scratch) {
    std::vector<VertexId> verts =
        sample_rrr(reverse, opt.model, opt.rng_seed, index, scratch);
    if (fused != nullptr) {
      for (const VertexId v : verts) fused->increment(v);
    }
    pool[index] = adaptive
                      ? RRRSet::make_adaptive(std::move(verts), n,
                                              opt.bitmap_threshold)
                      : RRRSet::make_vector(std::move(verts));
  };

  if (engine == Engine::kEfficient && opt.dynamic_balance) {
    const auto workers = static_cast<std::size_t>(omp_get_max_threads());
    JobPool jobs(end - begin, opt.batch_size, workers);
#pragma omp parallel
    {
      SamplerScratch scratch(n);
      const auto wid = static_cast<std::size_t>(omp_get_thread_num());
      for (JobBatch batch = jobs.next(wid); !batch.empty();
           batch = jobs.next(wid)) {
        for (std::size_t j = batch.begin; j < batch.end; ++j) {
          build_one(begin + j, scratch);
        }
      }
    }
  } else {
    // Baseline: static θ/p split, the parallelization §II-B describes.
#pragma omp parallel
    {
      SamplerScratch scratch(n);
#pragma omp for schedule(static)
      for (std::uint64_t i = begin; i < end; ++i) {
        build_one(i, scratch);
      }
    }
  }
}

/// Copies the fused base counters into the working counters (the final
/// selection mutates its counter; the base stays valid for reuse in the
/// next martingale round).
void copy_counters(const CounterArray& base, CounterArray& working) {
  const std::size_t n = base.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    working.set(i, base.get(i));
  }
}

}  // namespace

ImmResult run_imm(const DiffusionGraph& graph, const ImmOptions& options,
                  Engine engine) {
  EIMM_CHECK(graph.reverse.has_weights(),
             "assign diffusion weights to graph.reverse before run_imm");
  const VertexId n = graph.num_vertices();
  EIMM_CHECK(n >= 2, "graph too small");

  ThreadCountScope thread_scope(options.threads);
  Timer total_timer;
  PhaseBreakdown breakdown;

  const MartingaleParams params =
      compute_martingale_params(n, options.k, options.epsilon, options.ell);

  const bool use_fusion =
      engine == Engine::kEfficient && options.kernel_fusion;
  const MemPolicy policy = (engine == Engine::kEfficient && options.numa_aware)
                               ? MemPolicy::kInterleave
                               : MemPolicy::kDefault;

  RRRPool pool(n);
  CounterArray base_counters;  // populated incrementally under fusion
  if (use_fusion) base_counters = CounterArray(n, policy);

  std::uint64_t generated = 0;
  bool capped = false;

  auto generate_to = [&](std::uint64_t target) {
    target = cap_theta_request(target, options.max_rrr_sets, capped);
    if (target <= generated) return;
    ScopedAccumulator acc(breakdown.sampling_seconds);
    pool.resize(target);
    generate_rrr_range(pool, graph.reverse, options, engine, generated,
                       target, use_fusion ? &base_counters : nullptr);
    generated = target;
  };

  auto select = [&]() -> SelectionResult {
    ScopedAccumulator acc(breakdown.selection_seconds);
    SelectionOptions sopt;
    sopt.k = options.k;
    sopt.adaptive_update =
        engine == Engine::kEfficient && options.adaptive_update;
    sopt.dynamic_balance =
        engine == Engine::kEfficient && options.dynamic_balance;
    sopt.batch_size = options.batch_size;
    if (engine == Engine::kEfficient) {
      CounterArray working(n, policy);
      if (use_fusion) {
        copy_counters(base_counters, working);
        sopt.counters_prebuilt = true;
      }
      return efficient_select_t<NullMem>(pool, working, sopt);
    }
    return ripples_select_t<NullMem>(pool, sopt);
  };

  // --- Sampling phase: probe OPT guesses x_i = n / 2^i, then Set Theta ---
  ImmResult result;
  const std::uint64_t theta = run_martingale_probing(
      params, generate_to, [&] { return select().coverage_fraction(); },
      [&](const MartingaleIteration& record) {
        result.iterations.push_back(record);
      });

  // --- Selection phase ---
  const SelectionResult final_selection = select();

  result.seeds = final_selection.seeds;
  result.coverage_fraction = final_selection.coverage_fraction();
  result.estimated_spread =
      static_cast<double>(n) * result.coverage_fraction;
  result.theta = theta;
  result.num_rrr_sets = pool.size();
  result.theta_capped = capped;
  result.rrr_memory_bytes = pool.memory_bytes();
  result.bitmap_sets = pool.bitmap_count();
  result.rebuild_rounds = final_selection.rebuild_rounds;
  result.threads_used = omp_get_max_threads();
  breakdown.total_seconds = total_timer.seconds();
  result.breakdown = breakdown;
  return result;
}

}  // namespace eimm
