// sketch_server core — a long-lived serving layer over one frozen
// SketchStore.
//
// The paper's build/serve split stops one step short of a service: the
// CLI re-loads the snapshot per invocation. With v2 snapshots mmap'ed
// read-only, N server processes share one page-cache copy of the sketch
// data and cold-start in O(section table), so running the store as a
// daemon is finally cheaper than running it as a command. This header
// is that daemon, split into three independently testable layers:
//
//   wire        — a length-prefixed little-endian frame codec
//                 (WireWriter/WireReader over byte buffers; no sockets,
//                 so protocol tests run without any I/O).
//   BatchingExecutor — admission control + micro-batching over
//                 QueryEngine::run_batch. Clients submit single queries;
//                 a dispatcher thread coalesces whatever arrives within
//                 a small window (or up to max_batch) into one pinned
//                 OpenMP batch, amortizing the affinity save/restore and
//                 team spin-up that dominate singleton run_batch calls.
//                 Constrained results feed a QueryCache; repeat queries
//                 skip the kernel entirely.
//   SketchServer — the AF_UNIX socket front end: acceptor thread +
//                 thread-per-connection, length-prefixed frames, one
//                 request/response pair per frame, per-request timeout,
//                 graceful drain on shutdown.
//
// Protocol (all integers little-endian):
//   frame    := u32 payload_bytes, payload
//   request  := u8 verb, verb body
//   response := u8 status, status/verb body
//
//   verbs: Ping(0)      — empty; pong (empty kOk body)
//          TopK(1)      — u64 k
//          Select(2)    — u64 k, u32 ncand, u32[ncand], u32 nforb,
//                         u32[nforb]
//          Evaluate(3)  — u32 nseeds, u32[nseeds]
//          Batch(4)     — u32 nqueries, nqueries × Select body
//          Info(5)      — empty
//          Shutdown(6)  — empty; server drains and exits after replying
//          Stats(7)     — empty; live telemetry snapshot (body below)
//   status: kOk(0)         — verb-specific body below
//           kError(1)      — string (u64 length + bytes) diagnostic
//           kTimeout(2)    — string diagnostic (the query kept running;
//                            its result is discarded)
//           kOverloaded(3) — string diagnostic (admission queue full —
//                            the client should back off and retry)
//   kOk bodies: query result  := u32 nseeds, u32[nseeds] seeds,
//                                u64[nseeds] marginals, u64 covered,
//                                u64 total, f64 spread
//               batch         := u32 nresults, nresults × query result
//               evaluate      := u32 n, u64[n] incremental, u64 covered,
//                                u64 total, f64 spread
//               info          := u32 |V|, u64 sketches, u64 k_max,
//                                string workload, string model,
//                                u8 mmap_backed, u64 bytes_mapped,
//                                u64 bytes_copied
//               stats         := u64 requests, u64 timeouts,
//                                u64 submitted, u64 cache_hits,
//                                u64 rejected, u64 batches,
//                                u64 largest_batch, u64 qc_hits,
//                                u64 qc_misses, u64 qc_evictions,
//                                u64 qc_entries, 3 × histogram
//                                (queue wait µs, batch size, exec µs)
//               histogram     := u64 count, u64 sum, u32 nbuckets,
//                                nbuckets × u64 (log2 buckets; see
//                                obs::kHistogramBuckets layout)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query_cache.hpp"
#include "serve/query_engine.hpp"
#include "support/macros.hpp"

namespace eimm::wire {

enum class Verb : std::uint8_t {
  kPing = 0,
  kTopK = 1,
  kSelect = 2,
  kEvaluate = 3,
  kBatch = 4,
  kInfo = 5,
  kShutdown = 6,
  kStats = 7,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,
  kTimeout = 2,
  kOverloaded = 3,
};

/// Frames larger than this are rejected on read — a corrupt or hostile
/// length prefix must not turn into a giant allocation.
constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

/// Append-only payload builder (the frame length prefix is written by
/// the transport, not the codec).
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void f64(double v) { pod(v); }
  void str(const std::string& s);
  void ids(std::span<const VertexId> v);     // u32 count + u32 ids
  void counts(std::span<const std::uint64_t> v);  // u64 values, NO count

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  template <typename T>
  void pod(const T& v) {
    const auto* raw = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), raw, raw + sizeof v);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader: every underrun (and trailing garbage,
/// via expect_done) throws CheckError, so a malformed frame becomes a
/// kError response instead of UB.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> payload)
      : payload_(payload) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<VertexId> ids();
  [[nodiscard]] std::vector<std::uint64_t> counts(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return payload_.size() - pos_;
  }
  /// Call after the last field: trailing bytes mean a protocol mismatch.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

/// Request/response payload helpers shared by server, client tool and
/// tests (one encoding, written once).
void encode_query(WireWriter& w, const QueryOptions& query);
[[nodiscard]] QueryOptions decode_query(WireReader& r);
void encode_result(WireWriter& w, const QueryResult& result);
[[nodiscard]] QueryResult decode_result(WireReader& r);
void encode_histogram(WireWriter& w, const obs::HistogramSnapshot& histogram);
[[nodiscard]] obs::HistogramSnapshot decode_histogram(WireReader& r);

}  // namespace eimm::wire

namespace eimm {

struct ExecutorOptions {
  /// Largest batch one dispatch passes to run_batch.
  std::size_t max_batch = 64;
  /// How long the dispatcher waits for more queries to coalesce after
  /// the first arrival. Zero = dispatch immediately (no batching).
  std::chrono::microseconds batch_window{200};
  /// Admission bound: submissions beyond this many queued queries are
  /// rejected (OverloadError) instead of growing the queue without
  /// bound under overload.
  std::size_t max_queue = 1024;
  /// OpenMP threads per dispatched batch (0 = library default).
  int threads = 0;
  /// Constrained-result cache entries (0 disables).
  std::size_t cache_capacity = 256;
};

/// Thrown by submit() when the admission queue is full.
class OverloadError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// Micro-batching admission layer over QueryEngine::run_batch.
/// Thread-safe: any number of producers may submit concurrently.
class BatchingExecutor {
 public:
  BatchingExecutor(const QueryEngine& engine, ExecutorOptions options);
  /// Drains the queue, then joins the dispatcher.
  ~BatchingExecutor();

  BatchingExecutor(const BatchingExecutor&) = delete;
  BatchingExecutor& operator=(const BatchingExecutor&) = delete;

  /// Validates the query against the store (CheckError on bad k / ids —
  /// the error surfaces HERE, synchronously, never poisoning a batch),
  /// consults the cache, and otherwise enqueues for the next dispatch.
  /// Throws OverloadError when the queue is full.
  [[nodiscard]] std::future<QueryResult> submit(QueryOptions query);

  /// Stops accepting work, drains what was admitted, joins. Idempotent.
  void stop();

  /// A point-in-time copy of the executor's telemetry. The scalar part
  /// is snapshotted under the executor mutex and the whole struct is
  /// returned by value, so readers never observe a half-updated set of
  /// counters while the dispatcher mutates them.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t rejected = 0;
    std::uint64_t batches = 0;
    std::uint64_t largest_batch = 0;
    /// Dispatch-queue wait per query, µs (cache hits never enqueue).
    obs::HistogramSnapshot queue_wait_us;
    /// Queries per dispatched batch.
    obs::HistogramSnapshot batch_size;
    /// run_batch wall time per dispatched batch, µs.
    obs::HistogramSnapshot exec_us;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] QueryCache::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  struct Pending {
    QueryOptions query;
    std::promise<QueryResult> promise;
    std::uint64_t enqueue_ns = 0;
  };
  void dispatch_loop();
  void run_one_batch(std::vector<Pending>&& batch);

  const QueryEngine* engine_;
  ExecutorOptions options_;
  QueryCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;  // scalar fields only; histograms live below
  std::thread dispatcher_;

  // Shared-cell histograms: updated lock-free by the dispatcher, read
  // by stats() snapshots. Not gated by EIMM_METRICS — a live server's
  // stats surface must answer even with process metrics off.
  obs::AtomicHistogram queue_wait_us_;
  obs::AtomicHistogram batch_size_;
  obs::AtomicHistogram exec_us_;
};

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket (created on
  /// start(), unlinked on stop()).
  std::string socket_path;
  /// Reply deadline: a query not finished within this window gets a
  /// kTimeout response (the kernel run is not cancelled — its result is
  /// discarded).
  std::chrono::milliseconds request_timeout{2000};
  ExecutorOptions executor;
};

/// The socket front end. One acceptor thread, one thread per
/// connection; all queries funnel through one BatchingExecutor, so
/// concurrent clients micro-batch into shared kernel dispatches.
class SketchServer {
 public:
  /// Non-owning: store must outlive the server.
  SketchServer(const SketchStore& store, ServerOptions options);
  ~SketchServer();

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;

  /// Binds + listens + spawns the acceptor. Throws CheckError when the
  /// socket cannot be created (stale paths are unlinked first).
  void start();
  /// Initiates shutdown: stops accepting, shuts down live connections,
  /// drains admitted queries, joins all threads. Idempotent.
  void stop();
  /// Blocks until stop() completes (from any thread or a Shutdown verb).
  void wait();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  [[nodiscard]] BatchingExecutor::Stats executor_stats() const {
    return executor_.stats();
  }
  [[nodiscard]] QueryCache::Stats cache_stats() const {
    return executor_.cache_stats();
  }
  /// Requests served per verb, summed over all connections.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Requests answered with kTimeout, summed over all connections.
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] std::vector<std::uint8_t> handle_request(
      std::span<const std::uint8_t> payload, bool& shutdown_requested);

  const SketchStore* store_;
  QueryEngine engine_;
  ServerOptions options_;
  BatchingExecutor executor_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::thread acceptor_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::mutex stop_mutex_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

// --- Blocking client-side transport (tools + tests) ---
/// Connects, frames requests, unframes responses. Synchronous: one
/// outstanding request at a time per connection.
class SketchClient {
 public:
  /// Throws CheckError when the socket cannot be reached.
  explicit SketchClient(const std::string& socket_path);
  ~SketchClient();

  SketchClient(const SketchClient&) = delete;
  SketchClient& operator=(const SketchClient&) = delete;

  /// Sends one framed request payload, returns the response payload.
  [[nodiscard]] std::vector<std::uint8_t> roundtrip(
      std::span<const std::uint8_t> request);

  // Verb conveniences. Non-kOk statuses throw CheckError carrying the
  // server's diagnostic (so callers never mistake an error frame for an
  // empty result).
  void ping();
  [[nodiscard]] QueryResult top_k(std::size_t k);
  [[nodiscard]] QueryResult select(const QueryOptions& query);
  [[nodiscard]] std::vector<QueryResult> batch(
      const std::vector<QueryOptions>& queries);
  struct Info {
    VertexId num_vertices = 0;
    std::uint64_t num_sketches = 0;
    std::uint64_t k_max = 0;
    std::string workload;
    std::string model;
    bool mmap_backed = false;
    std::uint64_t bytes_mapped = 0;
    std::uint64_t bytes_copied = 0;
  };
  [[nodiscard]] Info info();
  /// Live telemetry of the server: request/timeout totals, executor
  /// stats (incl. queue-wait / batch-size / exec-time histograms) and
  /// query-cache hit/miss counts.
  struct ServerStats {
    std::uint64_t requests = 0;
    std::uint64_t timeouts = 0;
    BatchingExecutor::Stats executor;
    QueryCache::Stats cache;
  };
  [[nodiscard]] ServerStats stats();
  void shutdown_server();

 private:
  [[nodiscard]] wire::WireReader checked(std::vector<std::uint8_t>& response);
  int fd_ = -1;
};

}  // namespace eimm
