#include "io/json_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace eimm {
namespace {

ExperimentRecord sample_record() {
  ExperimentRecord r;
  r.dataset = "com-Amazon";
  r.algorithm = "EfficientIMM";
  r.diffusion = "IC";
  r.threads = 8;
  r.k = 50;
  r.epsilon = 0.5;
  r.rng_seed = 1234;
  r.total_seconds = 0.97;
  r.sampling_seconds = 0.6;
  r.selection_seconds = 0.3;
  r.num_rrr_sets = 4096;
  r.rrr_memory_bytes = 1 << 20;
  r.seeds = {5, 17, 99};
  return r;
}

TEST(JsonLog, ContainsArtifactFieldNames) {
  std::ostringstream os;
  write_experiment_json(os, sample_record());
  const std::string out = os.str();
  for (const char* field :
       {"\"Input\"", "\"Algorithm\"", "\"DiffusionModel\"", "\"NumThreads\"",
        "\"Total\"", "\"GenerateRRRSets\"", "\"FindMostInfluentialSet\"",
        "\"Seeds\"", "\"K\"", "\"Epsilon\""}) {
    EXPECT_NE(out.find(field), std::string::npos) << field;
  }
}

TEST(JsonLog, SeedValuesSerialized) {
  std::ostringstream os;
  write_experiment_json(os, sample_record());
  const std::string out = os.str();
  EXPECT_NE(out.find("17"), std::string::npos);
  EXPECT_NE(out.find("99"), std::string::npos);
}

TEST(JsonLog, WritesFileWithConventionalName) {
  const std::string dir = ::testing::TempDir() + "/eimm_logs";
  std::filesystem::remove_all(dir);
  const std::string path = write_experiment_json_file(dir, sample_record());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_NE(path.find("com-Amazon_EfficientIMM_8.json"), std::string::npos);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"Input\": \"com-Amazon\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(JsonLog, PipelineBenchSchemaCarriesZeroCopyAccounting) {
  PipelineBenchResult row;
  row.workload = "com-DBLP";
  row.path = "sharded-view";
  row.shards = 4;
  row.threads = 8;
  row.total_seconds = 1.5;
  row.sampling_seconds = 1.1;
  row.selection_seconds = 0.3;
  row.num_rrr_sets = 2048;
  row.staged_bytes = 777;
  row.mapped_bytes = 4096;
  row.merged_bytes = 0;
  row.workspace_counter_allocs = 1;
  row.seeds_match_flat = true;

  std::ostringstream os;
  write_pipeline_bench_json(os, 2, {row});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"Bench\": \"fused_pipeline\""), std::string::npos);
  EXPECT_NE(out.find("\"NumaDomains\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"Path\": \"sharded-view\""), std::string::npos);
  EXPECT_NE(out.find("\"StagedBytes\": 777"), std::string::npos);
  EXPECT_NE(out.find("\"MergedBytes\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"WorkspaceCounterAllocs\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"SeedsMatchFlat\": true"), std::string::npos);
}

TEST(JsonLog, PipelineBenchFileRoundTrips) {
  const std::string dir = ::testing::TempDir() + "/eimm_pipeline";
  std::filesystem::remove_all(dir);
  PipelineBenchResult row;
  row.workload = "w";
  row.path = "flat";
  const std::string path =
      write_pipeline_bench_json_file(dir + "/BENCH_pipeline.json", 1, {row});
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eimm
