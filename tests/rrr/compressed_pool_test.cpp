#include "rrr/compressed_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"
#include "seedselect/engine.hpp"
#include "support/macros.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

RRRPool make_pool(VertexId n, std::size_t sets, std::uint64_t seed,
                  std::size_t max_size = 60) {
  RRRPool pool(n);
  pool.resize(sets);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < sets; ++i) {
    std::vector<VertexId> members;
    const std::size_t count = rng.next_bounded(max_size);
    for (std::size_t j = 0; j < count; ++j) {
      members.push_back(static_cast<VertexId>(rng.next_bounded(n)));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    pool[i] = RRRSet::make_vector(members);
  }
  return pool;
}

TEST(CompressedPool, SlotIdentityAgainstSourceBothCodecs) {
  const VertexId n = 40'000;
  const RRRPool source = make_pool(n, 300, 31);
  for (const PoolCodec codec : {PoolCodec::kVarint, PoolCodec::kHuffman}) {
    CompressedPool cpool(n, codec);
    cpool.append(RRRPoolView(source), 0, source.size());
    ASSERT_EQ(cpool.size(), source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
      const std::vector<VertexId> expected(source[i].vertices().begin(),
                                           source[i].vertices().end());
      EXPECT_EQ(cpool.decode_slot(i), expected)
          << "codec=" << static_cast<int>(codec) << " slot " << i;
    }
    EXPECT_EQ(cpool.total_vertices(), RRRPoolView(source).total_vertices());
  }
}

TEST(CompressedPool, MultiRoundAppendMatchesSingleAppend) {
  const VertexId n = 10'000;
  const RRRPool source = make_pool(n, 257, 47);
  CompressedPool whole(n);
  whole.append(RRRPoolView(source), 0, source.size());

  CompressedPool rounds(n);
  rounds.append(RRRPoolView(source), 0, 100);
  rounds.append(RRRPoolView(source), 100, 101);
  rounds.append(RRRPoolView(source), 101, source.size());

  ASSERT_EQ(rounds.size(), whole.size());
  EXPECT_EQ(rounds.payload_bytes(), whole.payload_bytes());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(rounds.decode_slot(i), whole.decode_slot(i)) << i;
  }
}

TEST(CompressedPool, AppendRequiresInOrderRounds) {
  const RRRPool source = make_pool(1000, 10, 3);
  CompressedPool cpool(1000);
  cpool.append(RRRPoolView(source), 0, 5);
  EXPECT_THROW(cpool.append(RRRPoolView(source), 0, 5), CheckError);
  EXPECT_THROW(cpool.append(RRRPoolView(source), 7, 10), CheckError);
  EXPECT_THROW(cpool.append(RRRPoolView(source), 5, 20), CheckError);
}

TEST(CompressedPool, EdgeSlots) {
  const VertexId big = kInvalidVertex - 1;
  RRRPool source(kInvalidVertex);
  source.resize(4);
  source[0] = RRRSet::make_vector({});            // empty slot
  source[1] = RRRSet::make_vector({0});           // vertex 0
  source[2] = RRRSet::make_vector({big});         // max representable id
  source[3] = RRRSet::make_vector({7, 8, 9, 10});  // adjacent ids
  for (const PoolCodec codec : {PoolCodec::kVarint, PoolCodec::kHuffman}) {
    CompressedPool cpool(kInvalidVertex, codec);
    cpool.append(RRRPoolView(source), 0, 4);
    EXPECT_TRUE(cpool.decode_slot(0).empty());
    EXPECT_EQ(cpool.decode_slot(1), (std::vector<VertexId>{0}));
    EXPECT_EQ(cpool.decode_slot(2), (std::vector<VertexId>{big}));
    EXPECT_EQ(cpool.decode_slot(3), (std::vector<VertexId>{7, 8, 9, 10}));
    EXPECT_TRUE(cpool.slot(2).contains(big));
    EXPECT_FALSE(cpool.slot(2).contains(0));
    EXPECT_TRUE(cpool.slot(1).contains(0));
  }
}

TEST(CompressedPool, ViewFlattenBitMatchesSourceFlatten) {
  const VertexId n = 25'000;
  const RRRPool source = make_pool(n, 400, 53);
  const FlatPool reference = source.flatten();
  for (const PoolCodec codec : {PoolCodec::kVarint, PoolCodec::kHuffman}) {
    CompressedPool cpool(n, codec);
    cpool.append(RRRPoolView(source), 0, source.size());
    const RRRPoolView view(cpool);
    EXPECT_EQ(view.size(), source.size());
    EXPECT_EQ(view.num_vertices(), n);
    const FlatPool flat = view.flatten();
    EXPECT_EQ(flat.offsets, reference.offsets);
    EXPECT_EQ(flat.vertices, reference.vertices);
  }
}

TEST(CompressedPool, ViewReportsCompressedRepr) {
  const RRRPool source = make_pool(5000, 20, 9);
  CompressedPool cpool(5000);
  cpool.append(RRRPoolView(source), 0, source.size());
  const RRRPoolView view(cpool);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i].repr(), RRRRepr::kCompressed);
    EXPECT_EQ(view[i].size(), source[i].size());
  }
  EXPECT_LT(view.memory_bytes(), RRRPoolView(source).memory_bytes());
}

TEST(CompressedPool, SelectionSeedsMatchRawPool) {
  // The acceptance contract at engine level: the selection kernels run
  // unchanged over the compressed backing and pick identical seeds.
  std::vector<WeightedEdge> edges;
  for (VertexId v = 0; v < 3000; ++v) {
    edges.push_back({v, (v + 1) % 3000, 0.0F});
    edges.push_back({v, (v + 7) % 3000, 0.0F});
  }
  const DiffusionGraph g = testing::make_weighted_graph(
      std::move(edges), DiffusionModel::kIndependentCascade);
  const RRRPool raw = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 4000, 0xFEED, true);
  SelectionOptions sopt;
  sopt.k = 8;
  const SelectionEngine engine;
  const SelectionResult reference =
      engine.select(SelectionKernel::kEfficient, raw, sopt);

  for (const PoolCodec codec : {PoolCodec::kVarint, PoolCodec::kHuffman}) {
    CompressedPool cpool(g.num_vertices(), codec);
    cpool.append(RRRPoolView(raw), 0, raw.size());
    const SelectionResult compressed = engine.select(
        SelectionKernel::kEfficient, RRRPoolView(cpool), sopt);
    EXPECT_EQ(compressed.seeds, reference.seeds)
        << "codec=" << static_cast<int>(codec);
    EXPECT_EQ(compressed.marginal_coverage, reference.marginal_coverage);

    const SelectionResult ripples = engine.select(
        SelectionKernel::kRipples, RRRPoolView(cpool), sopt);
    const SelectionResult ripples_ref =
        engine.select(SelectionKernel::kRipples, raw, sopt);
    EXPECT_EQ(ripples.seeds, ripples_ref.seeds);
  }
}

TEST(CompressedPool, HuffmanPacksBelowVarint) {
  // Dense adjacent-ish sets: the gap bytes are heavily skewed, the case
  // the second stage exists for.
  const VertexId n = 200'000;
  RRRPool source(n);
  source.resize(64);
  Xoshiro256 rng(77);
  for (std::size_t i = 0; i < 64; ++i) {
    std::vector<VertexId> members;
    VertexId v = static_cast<VertexId>(rng.next_bounded(1000));
    for (int j = 0; j < 500; ++j) {
      v += 1 + static_cast<VertexId>(rng.next_bounded(3));
      members.push_back(v);
    }
    source[i] = RRRSet::make_vector(members);
  }
  CompressedPool varint(n, PoolCodec::kVarint);
  varint.append(RRRPoolView(source), 0, source.size());
  CompressedPool huffman(n, PoolCodec::kHuffman);
  huffman.append(RRRPoolView(source), 0, source.size());
  EXPECT_LT(huffman.payload_bytes(), varint.payload_bytes());
  for (std::size_t i = 0; i < source.size(); ++i) {
    EXPECT_EQ(huffman.decode_slot(i), varint.decode_slot(i)) << i;
  }
}

TEST(PoolCompression, ResolveHonorsExplicitRequestOverEnvironment) {
  ::setenv("EIMM_POOL_COMPRESS", "huffman", 1);
  EXPECT_EQ(resolve_pool_compression(PoolCompression::kNone),
            PoolCompression::kNone);
  EXPECT_EQ(resolve_pool_compression(PoolCompression::kVarint),
            PoolCompression::kVarint);
  EXPECT_EQ(resolve_pool_compression(PoolCompression::kAuto),
            PoolCompression::kHuffman);
  ::setenv("EIMM_POOL_COMPRESS", "1", 1);
  EXPECT_EQ(resolve_pool_compression(PoolCompression::kAuto),
            PoolCompression::kVarint);
  ::setenv("EIMM_POOL_COMPRESS", "off", 1);
  EXPECT_EQ(resolve_pool_compression(PoolCompression::kAuto),
            PoolCompression::kNone);
  ::unsetenv("EIMM_POOL_COMPRESS");
  EXPECT_EQ(resolve_pool_compression(PoolCompression::kAuto),
            PoolCompression::kNone);
}

}  // namespace
}  // namespace eimm
