// Histogram-layer and registry coverage: bucket boundary arithmetic,
// per-thread slab merge determinism, concurrent-update exactness, and
// snapshot-while-updating safety (the asan/tsan presets exercise the
// last one with real data races if the slab design regresses).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/macros.hpp"

namespace eimm::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_metrics();
    set_metrics_enabled(true);
  }
  void TearDown() override {
    reset_metrics();
    set_metrics_enabled(true);
  }
};

// --- bucket boundaries ---

TEST(HistogramBuckets, ZeroGetsItsOwnBucket) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket_floor(0), 0u);
}

TEST(HistogramBuckets, PowersOfTwoStartNewBuckets) {
  // Bucket b >= 1 covers [2^(b-1), 2^b).
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  for (std::size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    const std::uint64_t lo = histogram_bucket_floor(b);
    EXPECT_EQ(histogram_bucket(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(histogram_bucket(2 * lo - 1), b) << "ceiling of bucket " << b;
    EXPECT_EQ(histogram_bucket(2 * lo), b + 1) << "first past bucket " << b;
  }
}

TEST(HistogramBuckets, LastBucketAbsorbsOverflow) {
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 60), kHistogramBuckets - 1);
}

TEST(HistogramBuckets, FloorsAreStrictlyIncreasing) {
  for (std::size_t b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_GT(histogram_bucket_floor(b), histogram_bucket_floor(b - 1));
  }
}

// --- handles and registration ---

TEST_F(MetricsTest, CounterAccumulatesExactly) {
  const Counter c = counter("test.counter_basic");
  c.add();
  c.add(41);
  const MetricsSnapshot snap = snapshot_metrics();
  const MetricValue* v = snap.find("test.counter_basic");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kCounter);
  EXPECT_EQ(v->value, 42u);
}

TEST_F(MetricsTest, RegistrationIsIdempotentByName) {
  const Counter a = counter("test.counter_shared");
  const Counter b = counter("test.counter_shared");
  a.add(10);
  b.add(5);
  const MetricsSnapshot snap = snapshot_metrics();
  std::size_t matches = 0;
  for (const MetricValue& entry : snap.entries) {
    if (entry.name == "test.counter_shared") ++matches;
  }
  EXPECT_EQ(matches, 1u);
  EXPECT_EQ(snap.find("test.counter_shared")->value, 15u);
}

TEST_F(MetricsTest, KindMismatchThrows) {
  (void)counter("test.kind_clash");
  EXPECT_THROW((void)gauge("test.kind_clash"), CheckError);
  EXPECT_THROW((void)histogram("test.kind_clash"), CheckError);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  const Gauge g = gauge("test.gauge_basic");
  g.set(100);
  g.add(-30);
  const MetricsSnapshot snap = snapshot_metrics();
  const MetricValue* v = snap.find("test.gauge_basic");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kGauge);
  EXPECT_EQ(v->gauge, 70);
}

TEST_F(MetricsTest, DisabledUpdatesAreDropped) {
  const Counter c = counter("test.counter_gated");
  const Histogram h = histogram("test.hist_gated");
  set_metrics_enabled(false);
  c.add(1000);
  h.observe(7);
  set_metrics_enabled(true);
  c.add(1);
  const MetricsSnapshot snap = snapshot_metrics();
  EXPECT_EQ(snap.find("test.counter_gated")->value, 1u);
  EXPECT_EQ(snap.find("test.hist_gated")->histogram.count, 0u);
}

TEST_F(MetricsTest, FindUnregisteredReturnsNull) {
  EXPECT_EQ(snapshot_metrics().find("test.never_registered"), nullptr);
}

TEST_F(MetricsTest, SnapshotEntriesSortedByName) {
  (void)counter("test.zz_last");
  (void)counter("test.aa_first");
  const MetricsSnapshot snap = snapshot_metrics();
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
}

// --- histogram recording ---

TEST_F(MetricsTest, HistogramCountSumAndBucketsExact) {
  const Histogram h = histogram("test.hist_exact");
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1000);
  const MetricsSnapshot snap = snapshot_metrics();
  const MetricValue* v = snap.find("test.hist_exact");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kHistogram);
  EXPECT_EQ(v->histogram.count, 5u);
  EXPECT_EQ(v->histogram.sum, 1006u);
  EXPECT_EQ(v->histogram.buckets[0], 1u);              // the zero
  EXPECT_EQ(v->histogram.buckets[1], 1u);              // 1
  EXPECT_EQ(v->histogram.buckets[2], 2u);              // 2, 3
  EXPECT_EQ(v->histogram.buckets[histogram_bucket(1000)], 1u);
  EXPECT_DOUBLE_EQ(v->histogram.mean(), 1006.0 / 5.0);
}

TEST_F(MetricsTest, QuantileBracketsObservations) {
  const Histogram h = histogram("test.hist_quantile");
  for (int i = 0; i < 100; ++i) h.observe(100);  // bucket [64, 128)
  const HistogramSnapshot snap =
      snapshot_metrics().find("test.hist_quantile")->histogram;
  const double p50 = snap.quantile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), snap.quantile(0.0));  // no NaN
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST_F(MetricsTest, SnapshotMergeOperator) {
  HistogramSnapshot a;
  a.count = 2;
  a.sum = 10;
  a.buckets[3] = 2;
  HistogramSnapshot b;
  b.count = 1;
  b.sum = 5;
  b.buckets[3] = 1;
  a += b;
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 15u);
  EXPECT_EQ(a.buckets[3], 3u);
}

// --- concurrency ---

TEST_F(MetricsTest, ConcurrentCounterUpdatesAreExact) {
  const Counter c = counter("test.counter_mt");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(snapshot_metrics().find("test.counter_mt")->value,
            kThreads * kPerThread);
}

TEST_F(MetricsTest, SlabMergeIsDeterministicAcrossExitedThreads) {
  // Each thread writes from its own slab and exits; the registry keeps
  // retired slabs alive, so repeated snapshots after the joins must all
  // see the identical commutative sum.
  const Counter c = counter("test.counter_retired");
  const Histogram h = histogram("test.hist_retired");
  for (int round = 0; round < 4; ++round) {
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) {
          c.add();
          h.observe(static_cast<std::uint64_t>(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const MetricsSnapshot first = snapshot_metrics();
  EXPECT_EQ(first.find("test.counter_retired")->value, 16000u);
  EXPECT_EQ(first.find("test.hist_retired")->histogram.count, 16000u);
  for (int i = 0; i < 3; ++i) {
    const MetricsSnapshot again = snapshot_metrics();
    EXPECT_EQ(again.find("test.counter_retired")->value,
              first.find("test.counter_retired")->value);
    EXPECT_EQ(again.find("test.hist_retired")->histogram.sum,
              first.find("test.hist_retired")->histogram.sum);
    EXPECT_EQ(again.find("test.hist_retired")->histogram.buckets,
              first.find("test.hist_retired")->histogram.buckets);
  }
}

TEST_F(MetricsTest, SnapshotWhileUpdatingIsSafeAndMonotonic) {
  const Counter c = counter("test.counter_live");
  const Histogram h = histogram("test.hist_live");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.observe(i++ & 1023);
      }
    });
  }
  std::uint64_t last_count = 0;
  std::uint64_t last_hist = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = snapshot_metrics();
    const std::uint64_t now = snap.find("test.counter_live")->value;
    const std::uint64_t hist_now = snap.find("test.hist_live")->histogram.count;
    EXPECT_GE(now, last_count);
    EXPECT_GE(hist_now, last_hist);
    last_count = now;
    last_hist = hist_now;
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  // Quiescent: the final snapshot is exact again.
  const MetricsSnapshot final_snap = snapshot_metrics();
  const HistogramSnapshot hist =
      final_snap.find("test.hist_live")->histogram;
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.count);
  EXPECT_GE(final_snap.find("test.counter_live")->value, last_count);
}

TEST_F(MetricsTest, AtomicHistogramConcurrentExactness) {
  AtomicHistogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(i & 255);
    });
  }
  for (std::thread& w : workers) w.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) expected_sum += i & 255;
  EXPECT_EQ(snap.sum, kThreads * expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  const Counter c = counter("test.counter_reset");
  const Gauge g = gauge("test.gauge_reset");
  c.add(9);
  g.set(9);
  reset_metrics();
  const MetricsSnapshot snap = snapshot_metrics();
  const MetricValue* cv = snap.find("test.counter_reset");
  const MetricValue* gv = snap.find("test.gauge_reset");
  ASSERT_NE(cv, nullptr);
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(cv->value, 0u);
  EXPECT_EQ(gv->gauge, 0);
  c.add(2);  // old handle still valid after reset
  EXPECT_EQ(snapshot_metrics().find("test.counter_reset")->value, 2u);
}

}  // namespace
}  // namespace eimm::obs
