#include "numa/policy.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "numa/topology.hpp"

namespace eimm {
namespace {

// Policy modes from <linux/mempolicy.h>; spelled out to avoid requiring
// kernel headers at build time.
constexpr int kMpolDefault = 0;
constexpr int kMpolInterleave = 3;
constexpr int kMpolLocal = 4;

bool call_mbind(void* addr, std::size_t len, int mode,
                const unsigned long* nodemask, unsigned long maxnode) {
#if defined(__NR_mbind)
  const long rc = ::syscall(__NR_mbind, addr, len, mode, nodemask, maxnode,
                            /*flags=*/0u);
  return rc == 0;
#else
  (void)addr;
  (void)len;
  (void)mode;
  (void)nodemask;
  (void)maxnode;
  return false;
#endif
}

}  // namespace

bool apply_mempolicy(void* addr, std::size_t len, MemPolicy policy) {
  if (addr == nullptr || len == 0) return false;
  const NumaTopology& topo = numa_topology();
  if (!topo.is_numa()) return false;  // nothing to place

  switch (policy) {
    case MemPolicy::kDefault:
      return call_mbind(addr, len, kMpolDefault, nullptr, 0);
    case MemPolicy::kLocal:
      return call_mbind(addr, len, kMpolLocal, nullptr, 0);
    case MemPolicy::kInterleave: {
      // Build a nodemask covering all online nodes.
      unsigned long mask[16] = {};
      unsigned long max_node = 0;
      for (const int node : topo.nodes) {
        const auto n = static_cast<unsigned long>(node);
        if (n / (8 * sizeof(unsigned long)) < std::size(mask)) {
          mask[n / (8 * sizeof(unsigned long))] |=
              1UL << (n % (8 * sizeof(unsigned long)));
          max_node = n > max_node ? n : max_node;
        }
      }
      return call_mbind(addr, len, kMpolInterleave, mask, max_node + 2);
    }
  }
  return false;
}

bool numa_available() {
  static const bool available = [] {
    if (!numa_topology().is_numa()) return false;
    // Probe with a throwaway page.
    alignas(4096) static char probe[4096];
    return apply_mempolicy(probe, sizeof probe, MemPolicy::kDefault);
  }();
  return available;
}

}  // namespace eimm
