#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {

std::vector<WeightedEdge> gen_erdos_renyi(VertexId n, EdgeId m,
                                          std::uint64_t seed) {
  EIMM_CHECK(n >= 2, "ER graph needs at least 2 vertices");
  Xoshiro256 rng(seed);
  std::vector<WeightedEdge> edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_bounded(n));
    const auto v = static_cast<VertexId>(rng.next_bounded(n));
    edges.push_back({u, v, 1.0f});
  }
  return edges;
}

std::vector<WeightedEdge> gen_barabasi_albert(VertexId n,
                                              VertexId edges_per_vertex,
                                              std::uint64_t seed) {
  EIMM_CHECK(edges_per_vertex >= 1, "BA needs >= 1 edge per vertex");
  EIMM_CHECK(n > edges_per_vertex, "BA needs n > edges_per_vertex");
  Xoshiro256 rng(seed);

  // Repeated-vertex list: picking a uniform element of `endpoints` is
  // equivalent to degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * edges_per_vertex * 2);
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * edges_per_vertex * 2);

  // Seed clique over the first edges_per_vertex+1 vertices.
  const VertexId seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.push_back({u, v, 1.0f});
      edges.push_back({v, u, 1.0f});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  for (VertexId u = seed_size; u < n; ++u) {
    for (VertexId j = 0; j < edges_per_vertex; ++j) {
      const VertexId v = endpoints[rng.next_bounded(endpoints.size())];
      edges.push_back({u, v, 1.0f});
      edges.push_back({v, u, 1.0f});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return edges;
}

std::vector<WeightedEdge> gen_watts_strogatz(VertexId n, VertexId k,
                                             double beta,
                                             std::uint64_t seed) {
  EIMM_CHECK(k >= 1 && n > 2 * k, "WS needs n > 2k, k >= 1");
  Xoshiro256 rng(seed);
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k * 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.next_bool(beta)) {
        // Rewire the far endpoint uniformly (avoid self loop).
        do {
          v = static_cast<VertexId>(rng.next_bounded(n));
        } while (v == u);
      }
      edges.push_back({u, v, 1.0f});
      edges.push_back({v, u, 1.0f});
    }
  }
  return edges;
}

std::vector<WeightedEdge> gen_rmat(const RmatParams& params,
                                   std::uint64_t seed) {
  const double d = 1.0 - params.a - params.b - params.c;
  EIMM_CHECK(params.a > 0 && params.b >= 0 && params.c >= 0 && d >= 0,
             "RMAT quadrant probabilities must be a valid distribution");
  const VertexId n = static_cast<VertexId>(1) << params.scale;
  const EdgeId m = params.edge_factor * static_cast<EdgeId>(n);
  Xoshiro256 rng(seed);

  std::vector<WeightedEdge> edges;
  edges.reserve(m);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (EdgeId i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (unsigned bit = 0; bit < params.scale; ++bit) {
      const double r = rng.next_double();
      // Pick a quadrant; add a little per-level noise the way Graph500
      // implementations do to avoid exact self-similarity artifacts.
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < ab) {
        v |= (VertexId{1} << bit);
      } else if (r < abc) {
        u |= (VertexId{1} << bit);
      } else {
        u |= (VertexId{1} << bit);
        v |= (VertexId{1} << bit);
      }
    }
    edges.push_back({u, v, 1.0f});
  }
  return edges;
}

std::vector<WeightedEdge> gen_grid2d(VertexId rows, VertexId cols,
                                     EdgeId shortcuts, std::uint64_t seed) {
  EIMM_CHECK(rows >= 2 && cols >= 2, "grid needs at least 2x2");
  const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 4 + shortcuts * 2);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back({id(r, c), id(r, c + 1), 1.0f});
        edges.push_back({id(r, c + 1), id(r, c), 1.0f});
      }
      if (r + 1 < rows) {
        edges.push_back({id(r, c), id(r + 1, c), 1.0f});
        edges.push_back({id(r + 1, c), id(r, c), 1.0f});
      }
    }
  }
  Xoshiro256 rng(seed);
  const VertexId n = rows * cols;
  for (EdgeId i = 0; i < shortcuts; ++i) {
    const auto u = static_cast<VertexId>(rng.next_bounded(n));
    const auto v = static_cast<VertexId>(rng.next_bounded(n));
    edges.push_back({u, v, 1.0f});
    edges.push_back({v, u, 1.0f});
  }
  return edges;
}

std::vector<WeightedEdge> gen_planted_partition(VertexId n,
                                                VertexId communities,
                                                double avg_in_degree,
                                                double avg_out_degree,
                                                std::uint64_t seed) {
  EIMM_CHECK(communities >= 1 && n >= communities,
             "need at least one vertex per community");
  Xoshiro256 rng(seed);
  const VertexId comm_size = n / communities;
  std::vector<WeightedEdge> edges;
  const auto intra_edges =
      static_cast<EdgeId>(avg_in_degree * static_cast<double>(n) / 2.0);
  const auto inter_edges =
      static_cast<EdgeId>(avg_out_degree * static_cast<double>(n) / 2.0);
  edges.reserve((intra_edges + inter_edges) * 2);

  for (EdgeId i = 0; i < intra_edges; ++i) {
    const auto c = static_cast<VertexId>(rng.next_bounded(communities));
    const VertexId base = c * comm_size;
    const VertexId size =
        (c == communities - 1) ? (n - base) : comm_size;  // last takes slack
    const auto u = static_cast<VertexId>(base + rng.next_bounded(size));
    const auto v = static_cast<VertexId>(base + rng.next_bounded(size));
    edges.push_back({u, v, 1.0f});
    edges.push_back({v, u, 1.0f});
  }
  for (EdgeId i = 0; i < inter_edges; ++i) {
    const auto u = static_cast<VertexId>(rng.next_bounded(n));
    const auto v = static_cast<VertexId>(rng.next_bounded(n));
    edges.push_back({u, v, 1.0f});
    edges.push_back({v, u, 1.0f});
  }
  return edges;
}

std::vector<WeightedEdge> gen_star(VertexId n) {
  EIMM_CHECK(n >= 2, "star needs >= 2 vertices");
  std::vector<WeightedEdge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) edges.push_back({0, v, 1.0f});
  return edges;
}

std::vector<WeightedEdge> gen_path(VertexId n) {
  EIMM_CHECK(n >= 2, "path needs >= 2 vertices");
  std::vector<WeightedEdge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1.0f});
  return edges;
}

std::vector<WeightedEdge> gen_cycle(VertexId n) {
  auto edges = gen_path(n);
  edges.push_back({n - 1, 0, 1.0f});
  return edges;
}

std::vector<WeightedEdge> gen_complete(VertexId n) {
  EIMM_CHECK(n >= 2 && n <= 4096, "complete graph limited to test sizes");
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.push_back({u, v, 1.0f});
    }
  }
  return edges;
}

}  // namespace eimm
