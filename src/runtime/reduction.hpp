// The two-step parallel arg-max reduction of Algorithm 2, line 9:
// each thread scans a contiguous vertex block for its regional maximum,
// then the regional maxima are reduced to the global maximum.
// Ties break toward the lowest vertex id in BOTH steps, which makes the
// result deterministic regardless of thread count — a property the test
// suite leans on heavily.
#pragma once

#include <cstdint>
#include <utility>

#include "runtime/atomic_counters.hpp"

namespace eimm {

struct ArgMaxResult {
  std::size_t index = 0;
  std::uint64_t value = 0;
};

/// Parallel arg-max over `counters` (must be called OUTSIDE any OpenMP
/// parallel region; spawns its own). Deterministic lowest-index
/// tie-break. `eligible`, when non-null, points at counters.size() bytes;
/// indices with a zero entry are skipped (SelectionOptions::eligible,
/// the constrained-selection path).
ArgMaxResult parallel_argmax(const CounterArray& counters,
                             const std::uint8_t* eligible = nullptr);

/// Serial reference implementation (tests compare against this).
ArgMaxResult serial_argmax(const CounterArray& counters,
                           const std::uint8_t* eligible = nullptr);

}  // namespace eimm
