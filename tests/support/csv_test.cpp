#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace eimm {
namespace {

TEST(Csv, SimpleRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, PlainFieldsUnquoted) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(Csv, IncrementalCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.cell("dataset").cell(5.9).cell(42);
  csv.end_row();
  EXPECT_EQ(os.str(), "dataset,5.9,42\n");
}

TEST(Csv, MultipleRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"h1", "h2"});
  csv.row({"v1", "v2"});
  EXPECT_EQ(os.str(), "h1,h2\nv1,v2\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(std::vector<std::string>{});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace eimm
