#include "runtime/reduction.hpp"

#include <gtest/gtest.h>

#include "runtime/thread_info.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

TEST(ArgMax, EmptyCounters) {
  CounterArray c;
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 0u);
}

TEST(ArgMax, SingleElement) {
  CounterArray c(1);
  c.set(0, 7);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 7u);
}

TEST(ArgMax, FindsUniqueMaximum) {
  CounterArray c(1000);
  for (std::size_t i = 0; i < c.size(); ++i) c.set(i, i % 97);
  c.set(513, 1000);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 513u);
  EXPECT_EQ(r.value, 1000u);
}

TEST(ArgMax, TieBreaksToLowestIndex) {
  CounterArray c(100);
  c.set(20, 50);
  c.set(80, 50);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 20u);
}

TEST(ArgMax, AllZerosPicksIndexZero) {
  CounterArray c(64);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 0u);
}

TEST(ArgMax, MatchesSerialOnRandomData) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_bounded(5000);
    CounterArray c(n);
    for (std::size_t i = 0; i < n; ++i) c.set(i, rng.next_bounded(1000));
    const auto serial = serial_argmax(c);
    const auto parallel = parallel_argmax(c);
    EXPECT_EQ(parallel.index, serial.index) << "trial " << trial;
    EXPECT_EQ(parallel.value, serial.value) << "trial " << trial;
  }
}

TEST(ArgMax, DeterministicAcrossThreadCounts) {
  CounterArray c(10000);
  Xoshiro256 rng(5);
  for (std::size_t i = 0; i < c.size(); ++i) c.set(i, rng.next_bounded(50));
  ArgMaxResult reference{};
  bool first = true;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadCountScope scope(threads);
    const auto r = parallel_argmax(c);
    if (first) {
      reference = r;
      first = false;
    } else {
      EXPECT_EQ(r.index, reference.index) << threads << " threads";
      EXPECT_EQ(r.value, reference.value) << threads << " threads";
    }
  }
}

TEST(ArgMax, MaximumAtBoundaries) {
  CounterArray c(1024);
  c.set(0, 9);
  EXPECT_EQ(parallel_argmax(c).index, 0u);
  c.set(0, 0);
  c.set(1023, 9);
  EXPECT_EQ(parallel_argmax(c).index, 1023u);
}

TEST(ArgMaxBetter, IsATotalOrderOnValueThenIndex) {
  EXPECT_TRUE(argmax_better({3, 10}, {5, 9}));
  EXPECT_FALSE(argmax_better({5, 9}, {3, 10}));
  EXPECT_TRUE(argmax_better({3, 10}, {5, 10}));   // tie: lower index wins
  EXPECT_FALSE(argmax_better({5, 10}, {3, 10}));
  EXPECT_FALSE(argmax_better({4, 8}, {4, 8}));    // irreflexive
}

TEST(ShardedArgMax, EmptyCounters) {
  ShardedCounterArray c;
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 0u);
}

TEST(ShardedArgMax, SumsReplicasBeforeComparing) {
  // Replica-local values 3 and 4 at different indices, but index 2's sum
  // (3+3=6) beats index 7's single 4 — the arg-max must see sums.
  ShardedCounterArray c(10, 2);
  c.local(0).store(2, 3);
  c.local(1).store(2, 3);
  c.local(0).store(7, 4);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 2u);
  EXPECT_EQ(r.value, 6u);
}

TEST(ShardedArgMax, MatchesFlatOnEqualLogicalValues) {
  Xoshiro256 rng(123);
  for (const int shards : {1, 2, 3, 8}) {
    const std::size_t n = 1 + rng.next_bounded(3000);
    CounterArray flat(n);
    ShardedCounterArray sharded(n, shards);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = rng.next_bounded(500);
      flat.set(i, v);
      // Split the logical value across two replicas (when they exist;
      // a second store to the SAME replica would overwrite, not add).
      const int a = static_cast<int>(i) % shards;
      const int b = static_cast<int>(i + 1) % shards;
      if (a == b) {
        sharded.local(a).store(i, v);
      } else {
        const std::uint64_t low = v / 2;
        sharded.local(a).store(i, low);
        sharded.local(b).store(i, v - low);
      }
    }
    const auto f = parallel_argmax(flat);
    const auto s = parallel_argmax(sharded);
    EXPECT_EQ(s.index, f.index) << shards << " shards";
    EXPECT_EQ(s.value, f.value) << shards << " shards";
    const auto serial = serial_argmax(sharded);
    EXPECT_EQ(serial.index, f.index) << shards << " shards";
    EXPECT_EQ(serial.value, f.value) << shards << " shards";
  }
}

TEST(ShardedArgMax, HonorsEligibilityMask) {
  ShardedCounterArray c(50, 3);
  c.local(0).store(10, 100);
  c.local(1).store(20, 90);
  c.local(2).store(30, 80);
  std::vector<std::uint8_t> eligible(50, 1);
  eligible[10] = 0;  // mask out the true maximum
  const auto r = parallel_argmax(c, eligible.data());
  EXPECT_EQ(r.index, 20u);
  EXPECT_EQ(r.value, 90u);
  EXPECT_EQ(serial_argmax(c, eligible.data()).index, 20u);
}

TEST(ShardedArgMax, DeterministicAcrossThreadAndShardCounts) {
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> values(10000);
  for (auto& v : values) v = rng.next_bounded(50);
  ArgMaxResult reference{};
  bool first = true;
  for (const int shards : {1, 2, 4}) {
    ShardedCounterArray c(values.size(), shards);
    for (std::size_t i = 0; i < values.size(); ++i) {
      c.local(static_cast<int>(i) % shards).store(i, values[i]);
    }
    for (const int threads : {1, 3, 8}) {
      ThreadCountScope scope(threads);
      const auto r = parallel_argmax(c);
      if (first) {
        reference = r;
        first = false;
      } else {
        EXPECT_EQ(r.index, reference.index)
            << shards << " shards, " << threads << " threads";
        EXPECT_EQ(r.value, reference.value)
            << shards << " shards, " << threads << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace eimm
