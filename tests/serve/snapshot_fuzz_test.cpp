// Bit-flip fuzz sweep over snapshot sections. For every format the
// repo can write (v2 raw, v3 compressed, v4 raw, v4 compressed) and
// both loaders, a single flipped bit inside any section must surface as
// a typed CheckError/FormatError or load as a well-formed store — never
// crash, never UB. For v4 the bar is higher: the per-section CRC32C
// must catch every single-bit payload flip, on the stream loader and
// the eager mmap loader alike.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/binary.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

constexpr std::size_t kSectionCountAt = 12;
constexpr std::size_t kTableAt = 24;
constexpr std::size_t kEntryBytes = 24;

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

SketchStore make_small_store() {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options;
  options.k = 4;
  options.max_rrr_sets = 512;  // keep the sweep's per-flip load cheap
  return SketchStore::build(g, options, "amazon-fuzz");
}

std::string snapshot_bytes(const SketchStore& store,
                           SnapshotSaveOptions options) {
  std::ostringstream os;
  store.save(os, options);
  return os.str();
}

std::vector<Section> parse_sections(const std::string& data) {
  std::uint32_t count = 0;
  std::memcpy(&count, data.data() + kSectionCountAt, sizeof count);
  std::vector<Section> sections(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    const std::size_t entry = kTableAt + s * kEntryBytes;
    std::memcpy(&sections[s].offset, data.data() + entry + 8, 8);
    std::memcpy(&sections[s].bytes, data.data() + entry + 16, 8);
  }
  return sections;
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

enum class Outcome { kLoaded, kRejected };

// Attempts one load (and, when it succeeds, one query — the full
// serving path). Anything other than a clean result or a typed
// CheckError escapes and fails the test.
Outcome try_load(const std::string& path, SnapshotLoadMode mode,
                 bool deep_validate) {
  try {
    SnapshotLoadOptions options;
    options.mode = mode;
    options.deep_validate = deep_validate;
    options.checksums = ChecksumMode::kEager;
    const SketchStore store = SketchStore::load_file(path, options);
    const QueryEngine engine(store);
    (void)engine.top_k(1);
    return Outcome::kLoaded;
  } catch (const CheckError&) {
    return Outcome::kRejected;  // FormatError included — typed rejection
  }
}

struct Variant {
  const char* label;
  bool compress;
  bool checksum;
};

TEST(SnapshotFuzz, SingleBitSectionFlipsNeverCrashAndV4AlwaysRejects) {
  const SketchStore store = make_small_store();
  const std::string path = ::testing::TempDir() + "/eimm_fuzz_victim.sks";

  constexpr Variant kVariants[] = {
      {"v2-raw", false, false},
      {"v3-compressed", true, false},
      {"v4-raw", false, true},
      {"v4-compressed", true, true},
  };

  for (const Variant& variant : kVariants) {
    SnapshotSaveOptions save;
    save.compress = variant.compress;
    save.checksum = variant.checksum;
    const std::string clean = snapshot_bytes(store, save);
    const std::vector<Section> sections = parse_sections(clean);
    ASSERT_GE(sections.size(), 7u) << variant.label;

    // The clean bytes must load everywhere before we start flipping.
    write_file(path, clean);
    ASSERT_EQ(try_load(path, SnapshotLoadMode::kStream, false),
              Outcome::kLoaded)
        << variant.label;
    ASSERT_EQ(try_load(path, SnapshotLoadMode::kMap, true), Outcome::kLoaded)
        << variant.label;

    for (std::size_t s = 0; s < sections.size(); ++s) {
      const Section& section = sections[s];
      if (section.bytes == 0) continue;
      // Sample up to 8 byte positions spread across the section; rotate
      // the flipped bit with the position so low and high bits both get
      // exercised.
      const std::size_t samples =
          section.bytes < 8 ? static_cast<std::size_t>(section.bytes) : 8;
      for (std::size_t i = 0; i < samples; ++i) {
        const std::uint64_t at =
            section.offset + i * (section.bytes / samples);
        const int bit = static_cast<int>((s + i) % 8);
        std::string corrupt = clean;
        corrupt[at] = static_cast<char>(
            corrupt[at] ^ static_cast<char>(1u << bit));
        write_file(path, corrupt);

        const Outcome streamed =
            try_load(path, SnapshotLoadMode::kStream, false);
        const Outcome mapped = try_load(path, SnapshotLoadMode::kMap, true);
        if (variant.checksum) {
          // v4: the section CRC must catch every payload flip.
          EXPECT_EQ(streamed, Outcome::kRejected)
              << variant.label << " section " << s << " byte " << at
              << " bit " << bit << " (stream)";
          EXPECT_EQ(mapped, Outcome::kRejected)
              << variant.label << " section " << s << " byte " << at
              << " bit " << bit << " (mmap)";
        }
        // For v2/v3 reaching this line at all is the assertion: the
        // flip either loaded as a well-formed store or was rejected
        // with a typed error — no crash, no escape.
      }
    }
  }

  // v4 lazy mmap: the corruption must still be fenced at the serving
  // choke point (QueryEngine ctor), not just at eager load time.
  const std::string clean = snapshot_bytes(store, SnapshotSaveOptions{});
  const std::vector<Section> sections = parse_sections(clean);
  std::string corrupt = clean;
  const std::uint64_t victim = sections[2].offset + sections[2].bytes / 2;
  corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x40);
  write_file(path, corrupt);
  SnapshotLoadOptions lazy;
  lazy.mode = SnapshotLoadMode::kMap;
  const SketchStore mapped = SketchStore::load_file(path, lazy);
  EXPECT_TRUE(mapped.checksums_pending());
  EXPECT_THROW(QueryEngine{mapped}, bin::FormatError);
}

}  // namespace
}  // namespace eimm
