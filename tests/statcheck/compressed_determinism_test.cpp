// Compressed-pool determinism sweep: the gap-coded RRR pool backing
// (ImmOptions::pool_compress / EIMM_POOL_COMPRESS) must emit
// BIT-IDENTICAL seed sequences to the raw reference for every codec,
// model, and shard count — compression changes storage, never set
// contents or greedy outcomes. This is the PR's acceptance contract,
// enforced under the statcheck label CI runs explicitly (also with
// EIMM_POOL_COMPRESS=1 exported, which flips the kAuto default this
// suite exercises).
#include <gtest/gtest.h>

#include "core/imm.hpp"
#include "rrr/compressed_pool.hpp"
#include "statcheck.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using statcheck::statcheck_imm_options;
using statcheck::statcheck_workload;

TEST(CompressedDeterminism, CompressedSeedsMatchRawAcrossModelsAndCodecs) {
  for (const DiffusionModel model :
       {DiffusionModel::kIndependentCascade,
        DiffusionModel::kLinearThreshold}) {
    const DiffusionGraph g = statcheck_workload(
        model == DiffusionModel::kIndependentCascade ? "com-Amazon"
                                                     : "com-DBLP",
        model, 0.03);
    auto opt = statcheck_imm_options(model, 6);
    opt.pool_compress = PoolCompression::kNone;
    const ImmResult raw = run_imm(g, opt, Engine::kEfficient);
    EXPECT_EQ(raw.pool_compression_used, PoolCompression::kNone);
    EXPECT_EQ(raw.compressed_payload_bytes, 0u);

    for (const PoolCompression mode :
         {PoolCompression::kVarint, PoolCompression::kHuffman}) {
      opt.pool_compress = mode;
      const ImmResult compressed = run_imm(g, opt, Engine::kEfficient);
      EXPECT_EQ(compressed.seeds, raw.seeds)
          << to_string(model) << " mode=" << to_string(mode);
      EXPECT_DOUBLE_EQ(compressed.coverage_fraction, raw.coverage_fraction);
      EXPECT_EQ(compressed.num_rrr_sets, raw.num_rrr_sets);
      EXPECT_EQ(compressed.pool_compression_used, mode);
      EXPECT_GT(compressed.compressed_payload_bytes, 0u);
      // No footprint assertion here: the statcheck workloads are tiny
      // and dense enough that the raw pool holds most sets as bitmaps,
      // which gap coding cannot undercut in this regime. The
      // bytes-reduction contract lives in bench_compressed_pool at
      // realistic sparse-set scales.
    }
  }
}

TEST(CompressedDeterminism, CompressedShardedGridMatchesRawFlatReference) {
  // Compression composes with the sharded zero-copy pipeline: every
  // (codec, shards) cell against the raw single-shard reference.
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.shards = 1;
  opt.pool_compress = PoolCompression::kNone;
  const ImmResult reference = run_imm(g, opt, Engine::kEfficient);

  for (const PoolCompression mode :
       {PoolCompression::kVarint, PoolCompression::kHuffman}) {
    for (const int shards : {1, 2, 5}) {
      opt.shards = shards;
      opt.pool_compress = mode;
      const ImmResult candidate = run_imm(g, opt, Engine::kEfficient);
      EXPECT_EQ(candidate.seeds, reference.seeds)
          << "mode=" << to_string(mode) << " shards=" << shards;
      EXPECT_EQ(candidate.shards_used, shards);
      EXPECT_EQ(candidate.pool_compression_used, mode);
    }
  }
}

TEST(CompressedDeterminism, EnvironmentAutoModeMatchesExplicitRequest) {
  // EIMM_POOL_COMPRESS=1 (the CI smoke configuration) must resolve to
  // the same build an explicit kVarint request produces.
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.pool_compress = PoolCompression::kVarint;
  const ImmResult explicit_run = run_imm(g, opt, Engine::kEfficient);

  testing::ScopedEnv env("EIMM_POOL_COMPRESS", "1");
  opt.pool_compress = PoolCompression::kAuto;
  const ImmResult auto_run = run_imm(g, opt, Engine::kEfficient);
  EXPECT_EQ(auto_run.seeds, explicit_run.seeds);
  EXPECT_EQ(auto_run.pool_compression_used, PoolCompression::kVarint);
  EXPECT_EQ(auto_run.compressed_payload_bytes,
            explicit_run.compressed_payload_bytes);
}

}  // namespace
}  // namespace eimm
