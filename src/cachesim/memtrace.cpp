#include "cachesim/memtrace.hpp"

#include "support/macros.hpp"

namespace eimm {

TraceSession* TraceSession::active_ = nullptr;

namespace {
// Thread-local cache pointer, reset when a session begins/ends via the
// session generation counter (a stale pointer from a previous session
// must not be reused).
thread_local CacheHierarchy* tls_hierarchy = nullptr;
thread_local std::uint64_t tls_generation = 0;
std::uint64_t session_generation = 0;
}  // namespace

TraceSession::TraceSession(const CacheConfig& config) : config_(config) {
  EIMM_CHECK(active_ == nullptr, "nested TraceSessions are not supported");
  ++session_generation;
  active_ = this;
}

TraceSession::~TraceSession() { active_ = nullptr; }

CacheHierarchy* TraceSession::hierarchy_for_current_thread() {
  if (tls_hierarchy == nullptr || tls_generation != session_generation) {
    auto owned = std::make_unique<CacheHierarchy>(config_);
    CacheHierarchy* raw = owned.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      hierarchies_.push_back(std::move(owned));
    }
    tls_hierarchy = raw;
    tls_generation = session_generation;
  }
  return tls_hierarchy;
}

CacheStats TraceSession::aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats total;
  for (const auto& h : hierarchies_) total += h->stats();
  return total;
}

std::size_t TraceSession::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hierarchies_.size();
}

void TraceMem::touch(const void* addr, std::size_t bytes) noexcept {
  TraceSession* session = TraceSession::active_;
  if (session == nullptr) return;
  session->hierarchy_for_current_thread()->access(addr, bytes);
}

}  // namespace eimm
