// Zero-copy hand-off between the sampling and selection kernels.
//
// The paper's Table II / §IV analysis puts the win in keeping the
// sampling working set domain-local; the PR 3 pipeline achieved that but
// paid a full extra copy of every vertex payload rebuilding the flat
// RRRPool image at merge time. This layer removes the copy:
//
//   ShardArena     — worker-private staging storage (page-aligned
//                    mbind(kLocal) NumaBuffer chunks). reset() rewinds
//                    the write cursor while KEEPING the mapped chunks,
//                    so repeated generation rounds reuse the same pages
//                    instead of re-mapping fresh ones.
//   SegmentedPool  — the shard-local pool format that survives into
//                    selection: per-worker arenas owning the sorted
//                    vertex runs, plus one (pointer, length) entry per
//                    global RRR slot. No contiguous image is ever built.
//   RRRSetView     — one RRR set, whichever storage backs it: a legacy
//                    RRRSet (vector or bitmap) or a sorted arena run.
//   RRRPoolView    — the pool abstraction every selection-side consumer
//                    (seedselect kernels, SelectionEngine, coverage
//                    probing, serve/SketchStore freezing, cachesim)
//                    accepts: a contiguous legacy RRRPool OR a
//                    SegmentedPool, behind one slot-addressed surface.
//
// Determinism: slot content is identical under either backing (runs are
// sorted exactly like RRRSet's vector representation; bitmap sets
// enumerate ascending), so selection over a view is bit-identical to
// selection over the flattened pool — enforced by tests/rrr/pool_view
// and the ctest -L statcheck view sweep. flatten() stays available for
// consumers that genuinely need the contiguous CSR image (snapshot
// serialization); everything else reads in place.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "numa/alloc.hpp"
#include "rrr/compressed_pool.hpp"
#include "rrr/pool.hpp"
#include "rrr/set.hpp"

namespace eimm {

/// Worker-private staging storage for sampled vertex runs: page-aligned
/// NumaBuffer chunks requested kLocal, so the pages land on the sampling
/// worker's own domain under first-touch. Single-writer; a run never
/// spans chunks, so view() is one contiguous span.
class ShardArena {
 public:
  /// Handle to one staged run.
  struct Ref {
    std::uint32_t chunk = 0;
    std::uint32_t pos = 0;
    std::uint32_t len = 0;
  };

  /// `chunk_vertices` is the default chunk capacity; runs larger than it
  /// get a dedicated exactly-sized chunk.
  explicit ShardArena(std::size_t chunk_vertices = std::size_t{1} << 18)
      : chunk_vertices_(chunk_vertices == 0 ? 1 : chunk_vertices) {}

  Ref append(std::span<const VertexId> vertices);

  /// Reserves an uninitialized run of `len` vertices, returning its ref
  /// and a writable span the caller must fill before the run is read.
  /// Same placement rules as append (a run never spans chunks); the
  /// fused sampler uses this to scatter lane members straight into the
  /// arena with no intermediate buffer.
  Ref allocate(std::size_t len, std::span<VertexId>& out);

  [[nodiscard]] std::span<const VertexId> view(const Ref& ref) const noexcept;

  /// Rewinds the write cursor to the first chunk while KEEPING every
  /// mapped NumaBuffer chunk — the next round's appends reuse the pages
  /// (and their NUMA placement) instead of re-mapping. Staged runs become
  /// invalid; cumulative staged accounting is preserved.
  void reset() noexcept;

  /// Bytes of mapped staging memory currently held (diagnostics).
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept;
  /// Cumulative payload bytes staged since construction (survives
  /// reset() — reuse shows up as staged_bytes growing past mapped_bytes).
  [[nodiscard]] std::uint64_t staged_bytes() const noexcept {
    return staged_vertices_ * sizeof(VertexId);
  }
  /// Staged runs since construction (survives reset()).
  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }

 private:
  std::size_t chunk_vertices_;
  std::vector<NumaBuffer> chunks_;
  std::size_t cursor_ = 0;         // chunk currently written
  std::size_t head_used_ = 0;      // vertices used in the cursor chunk
  std::uint64_t runs_ = 0;
  std::uint64_t staged_vertices_ = 0;
};

/// The shard-local pool format that survives into selection: slot i's
/// members are a SORTED vertex run staged in one of the per-worker
/// arenas, addressed by a raw (pointer, length) entry. The arenas are
/// owned here, so the staged pages live exactly as long as the pool —
/// a SegmentedPool can be moved into a SketchStore and keep serving.
///
/// Concurrency contract: ensure_workers()/resize() are driver-side
/// (serial, or inside `omp single`); workers then fill DISJOINT slots
/// through their own arena(w) + set_run(i, span).
class SegmentedPool {
 public:
  SegmentedPool() = default;
  explicit SegmentedPool(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Grows the slot table to `count` entries (never shrinks).
  void resize(std::size_t count);

  /// Grows the per-worker arena set to at least `workers` arenas. Must
  /// not run concurrently with arena()/set_run().
  void ensure_workers(std::size_t workers);
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return arenas_.size();
  }
  [[nodiscard]] ShardArena& arena(std::size_t worker) noexcept {
    return arenas_[worker];
  }
  /// Staging-side access to the whole arena vector (the sharded sampler
  /// plans over it and may grow it inside its `omp single` region).
  /// Driver-side only — never call while workers are appending.
  [[nodiscard]] std::vector<ShardArena>& arenas_for_staging() noexcept {
    return arenas_;
  }

  /// Records slot `i`'s staged run. `run` must point into one of this
  /// pool's arenas and stay valid for the pool's lifetime (arenas are
  /// never reset while entries reference them).
  void set_run(std::size_t i, std::span<const VertexId> run) noexcept {
    entries_[i] = Entry{run.data(), static_cast<std::uint64_t>(run.size())};
  }

  /// Slot `i`'s members, ascending.
  [[nodiscard]] std::span<const VertexId> run(std::size_t i) const noexcept {
    return {entries_[i].data, entries_[i].len};
  }

  /// Cumulative payload / currently-mapped staging bytes over all arenas.
  [[nodiscard]] std::uint64_t staged_bytes() const noexcept;
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept;

  /// Rewinds every arena's write cursor (chunks and their NUMA placement
  /// are KEPT — see ShardArena::reset()). Used by the compressed-pool
  /// hand-off: once a round's runs are encoded into the CompressedPool,
  /// the staging pages are recycled for the next round, bounding raw
  /// staging memory to one round instead of the whole pool. Every staged
  /// run (and the entry table) becomes invalid.
  void reset_arenas() noexcept {
    for (ShardArena& a : arenas_) a.reset();
  }

 private:
  struct Entry {
    const VertexId* data = nullptr;
    std::uint64_t len = 0;
  };

  VertexId num_vertices_ = 0;
  std::vector<Entry> entries_;
  std::vector<ShardArena> arenas_;
};

/// One RRR set behind the view: a legacy RRRSet, a sorted arena run, or
/// a gap-coded CompressedPool slot. Same observable surface every way —
/// ascending for_each enumeration, exact contains — so the selection
/// kernels produce identical seed sequences no matter which storage
/// backs the pool. Compressed slots report repr() == kCompressed, which
/// routes the kernels to the generic for_each/contains path (the
/// vertices() span fast path does not exist for them).
class RRRSetView {
 public:
  RRRSetView() = default;
  /*implicit*/ RRRSetView(const RRRSet& set) noexcept
      : kind_(Kind::kSet), set_(&set) {}
  /*implicit*/ RRRSetView(std::span<const VertexId> run) noexcept
      : run_(run) {}
  /*implicit*/ RRRSetView(const CompressedSlot& slot) noexcept
      : kind_(Kind::kCompressed), comp_(slot) {}

  /// kVector for arena runs (they are sorted vertex runs by contract);
  /// kCompressed for CompressedPool slots.
  [[nodiscard]] RRRRepr repr() const noexcept {
    switch (kind_) {
      case Kind::kSet: return set_->repr();
      case Kind::kCompressed: return RRRRepr::kCompressed;
      case Kind::kRun: break;
    }
    return RRRRepr::kVector;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    switch (kind_) {
      case Kind::kSet: return set_->size();
      case Kind::kCompressed: return comp_.count;
      case Kind::kRun: break;
    }
    return run_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Sorted-member span; valid only when repr() == kVector (mirrors
  /// RRRSet::vertices(), which the baseline binary-search kernel uses).
  /// Empty for compressed slots — they have no materialized members.
  [[nodiscard]] std::span<const VertexId> vertices() const noexcept {
    switch (kind_) {
      case Kind::kSet:
        return {set_->vertices().data(), set_->vertices().size()};
      case Kind::kCompressed: return {};
      case Kind::kRun: break;
    }
    return run_;
  }

  /// Membership. May throw CheckError for a compressed slot whose
  /// payload is corrupt (bounds-checked decode) — hence not noexcept.
  [[nodiscard]] bool contains(VertexId v) const {
    switch (kind_) {
      case Kind::kSet: return set_->contains(v);
      case Kind::kCompressed: return comp_.contains(v);
      case Kind::kRun: break;
    }
    return std::binary_search(run_.begin(), run_.end(), v);
  }

  /// Invokes fn(vertex) for every member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    switch (kind_) {
      case Kind::kSet: set_->for_each(std::forward<Fn>(fn)); return;
      case Kind::kCompressed: comp_.for_each(std::forward<Fn>(fn)); return;
      case Kind::kRun: break;
    }
    for (const VertexId v : run_) fn(v);
  }

 private:
  enum class Kind : std::uint8_t { kRun, kSet, kCompressed };

  Kind kind_ = Kind::kRun;
  const RRRSet* set_ = nullptr;        // kSet
  std::span<const VertexId> run_;      // kRun
  CompressedSlot comp_;                // kCompressed
};

/// Non-owning, slot-addressed view over either pool storage. Implicit
/// construction keeps every RRRPool call site source-compatible; the
/// referenced pool must outlive the view (same contract as std::span).
class RRRPoolView {
 public:
  RRRPoolView() = default;
  /*implicit*/ RRRPoolView(const RRRPool& pool) noexcept : pool_(&pool) {}
  /*implicit*/ RRRPoolView(const SegmentedPool& segments) noexcept
      : segments_(&segments) {}
  /*implicit*/ RRRPoolView(const CompressedPool& comp) noexcept
      : comp_(&comp) {}

  [[nodiscard]] bool segmented() const noexcept { return segments_ != nullptr; }
  /// True when the backing is a CompressedPool (gap-coded slots).
  [[nodiscard]] bool compressed() const noexcept { return comp_ != nullptr; }
  /// The compressed backing, or nullptr (snapshot adoption seam).
  [[nodiscard]] const CompressedPool* compressed_pool() const noexcept {
    return comp_;
  }

  [[nodiscard]] VertexId num_vertices() const noexcept {
    if (pool_ != nullptr) return pool_->num_vertices();
    if (segments_ != nullptr) return segments_->num_vertices();
    return comp_ != nullptr ? comp_->num_vertices() : 0;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    if (pool_ != nullptr) return pool_->size();
    if (segments_ != nullptr) return segments_->size();
    return comp_ != nullptr ? comp_->size() : 0;
  }

  [[nodiscard]] RRRSetView operator[](std::size_t i) const noexcept {
    if (pool_ != nullptr) return RRRSetView((*pool_)[i]);
    if (segments_ != nullptr) return RRRSetView(segments_->run(i));
    return RRRSetView(comp_->slot(i));
  }

  /// Sum of set sizes (== total counter increments during a build).
  [[nodiscard]] std::uint64_t total_vertices() const noexcept;
  /// Sets in bitmap representation (always 0 for segmented backing).
  [[nodiscard]] std::size_t bitmap_count() const noexcept;
  /// Heap/staging footprint of the backing storage.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

  /// Copies every set into one contiguous CSR image — the ONLY remaining
  /// payload copy on the data path, kept for snapshot serialization and
  /// cross-backing equality checks. Parallel fill; bitmap sets expand to
  /// sorted runs.
  [[nodiscard]] FlatPool flatten() const;

 private:
  const RRRPool* pool_ = nullptr;
  const SegmentedPool* segments_ = nullptr;
  const CompressedPool* comp_ = nullptr;
};

}  // namespace eimm
