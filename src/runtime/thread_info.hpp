// OpenMP thread-environment helpers shared by engines and benches.
#pragma once

namespace eimm {

/// Hardware threads OpenMP will use by default.
int max_threads() noexcept;

/// Resolves a thread request: <= 0 means "use the OpenMP default";
/// explicit requests are honored verbatim, including oversubscription —
/// a sweep that asks for 4 threads must get 4 even on a 1-core host, or
/// scaling experiments (and their log filenames) silently collapse.
int resolve_threads(int requested) noexcept;

/// RAII scope that sets the OpenMP thread count and restores the previous
/// value on exit; the engines use it so a requested thread count applies
/// only to their own parallel regions.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int threads);
  ThreadCountScope(const ThreadCountScope&) = delete;
  ThreadCountScope& operator=(const ThreadCountScope&) = delete;
  ~ThreadCountScope();

 private:
  int previous_;
};

}  // namespace eimm
