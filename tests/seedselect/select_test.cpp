#include "seedselect/select.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_util.hpp"

namespace eimm {
namespace {

using testing::make_pool;

// The worked example from Fig. 3 of the paper:
// sets {0,1},{1},{2,4},{1,4},{1,4,5},{3},{0,3},{2} over 6 vertices.
RRRPool fig3_pool() {
  return make_pool(6, {{0, 1}, {1}, {2, 4}, {1, 4}, {1, 4, 5}, {3}, {0, 3},
                       {2}});
}

// Reference: serial greedy max-coverage with lowest-id tie-break.
std::vector<VertexId> reference_greedy(const RRRPool& pool, std::size_t k) {
  const VertexId n = pool.num_vertices();
  std::vector<bool> alive(pool.size(), true);
  std::vector<VertexId> seeds;
  for (std::size_t round = 0; round < k; ++round) {
    std::vector<std::uint64_t> counts(n, 0);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!alive[i]) continue;
      pool[i].for_each([&](VertexId v) { counts[v]++; });
    }
    VertexId best = 0;
    for (VertexId v = 1; v < n; ++v) {
      if (counts[v] > counts[best]) best = v;
    }
    if (counts[best] == 0) break;
    seeds.push_back(best);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (alive[i] && pool[i].contains(best)) alive[i] = false;
    }
  }
  return seeds;
}

SelectionResult run_efficient(const RRRPool& pool, SelectionOptions options) {
  CounterArray counters(pool.num_vertices());
  return efficient_select(pool, counters, options);
}

TEST(EfficientSelect, Fig3FirstSeedIsVertex1) {
  // Vertex 1 appears in {0,1},{1},{1,4},{1,4,5} -> count 4, the maximum.
  const RRRPool pool = fig3_pool();
  SelectionOptions options;
  options.k = 1;
  const auto result = run_efficient(pool, options);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 1u);
  EXPECT_EQ(result.marginal_coverage[0], 4u);
  EXPECT_EQ(result.covered_sets, 4u);
}

TEST(EfficientSelect, Fig3FullSelection) {
  const RRRPool pool = fig3_pool();
  SelectionOptions options;
  options.k = 6;
  const auto result = run_efficient(pool, options);
  EXPECT_EQ(result.seeds, reference_greedy(pool, 6));
  // All 8 sets are coverable.
  EXPECT_EQ(result.covered_sets, 8u);
  EXPECT_DOUBLE_EQ(result.coverage_fraction(), 1.0);
}

TEST(EfficientSelect, MatchesReferenceGreedyOnRandomPools) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(200, 1000, 13), DiffusionModel::kIndependentCascade);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 300, 77);
  SelectionOptions options;
  options.k = 10;
  const auto result = run_efficient(pool, options);
  EXPECT_EQ(result.seeds, reference_greedy(pool, 10));
}

TEST(EfficientSelect, AdaptiveOnOffIdenticalSeeds) {
  auto g = testing::make_weighted_graph(
      gen_barabasi_albert(300, 2, 5), DiffusionModel::kIndependentCascade);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 200, 3);
  SelectionOptions adaptive;
  adaptive.k = 8;
  adaptive.adaptive_update = true;
  SelectionOptions plain = adaptive;
  plain.adaptive_update = false;
  const auto a = run_efficient(pool, adaptive);
  const auto b = run_efficient(pool, plain);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.covered_sets, b.covered_sets);
  EXPECT_EQ(a.marginal_coverage, b.marginal_coverage);
}

TEST(EfficientSelect, RebuildTriggersOnSkewedPool) {
  // One mega-hub vertex 0 contained in nearly every set: after picking
  // it, decrement would touch almost everything, so rebuild must win.
  std::vector<std::vector<VertexId>> sets;
  for (VertexId i = 1; i < 50; ++i) {
    sets.push_back({0, i, static_cast<VertexId>(i + 50)});
  }
  sets.push_back({70});
  const RRRPool pool = make_pool(200, sets);
  SelectionOptions options;
  options.k = 2;
  options.adaptive_update = true;
  const auto result = run_efficient(pool, options);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_GE(result.rebuild_rounds, 1u);
}

TEST(EfficientSelect, PrebuiltCountersSkipInitialBuild) {
  const RRRPool pool = fig3_pool();
  CounterArray counters(pool.num_vertices());
  // Manually build counters (what the fused generation kernel does).
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].for_each([&](VertexId v) { counters.increment(v); });
  }
  SelectionOptions options;
  options.k = 3;
  options.counters_prebuilt = true;
  const auto fused = efficient_select(pool, counters, options);

  SelectionOptions plain;
  plain.k = 3;
  const auto unfused = run_efficient(pool, plain);
  EXPECT_EQ(fused.seeds, unfused.seeds);
  EXPECT_EQ(fused.covered_sets, unfused.covered_sets);
}

TEST(EfficientSelect, DynamicBalanceOnOffIdentical) {
  const RRRPool pool = fig3_pool();
  SelectionOptions dynamic;
  dynamic.k = 4;
  dynamic.dynamic_balance = true;
  SelectionOptions fixed = dynamic;
  fixed.dynamic_balance = false;
  EXPECT_EQ(run_efficient(pool, dynamic).seeds,
            run_efficient(pool, fixed).seeds);
}

TEST(EfficientSelect, MarginalGainsNonIncreasing) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(300, 2000, 17), DiffusionModel::kIndependentCascade);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 400, 11);
  SelectionOptions options;
  options.k = 15;
  const auto result = run_efficient(pool, options);
  for (std::size_t i = 1; i < result.marginal_coverage.size(); ++i) {
    EXPECT_LE(result.marginal_coverage[i], result.marginal_coverage[i - 1]);
  }
}

TEST(EfficientSelect, StopsWhenEverythingCovered) {
  const RRRPool pool = make_pool(5, {{0}, {0, 1}});
  SelectionOptions options;
  options.k = 5;
  const auto result = run_efficient(pool, options);
  EXPECT_EQ(result.seeds.size(), 1u);  // seed 0 covers both sets
  EXPECT_EQ(result.covered_sets, 2u);
}

TEST(EfficientSelect, BitmapPoolsSelectIdentically) {
  auto g = testing::make_weighted_graph(
      gen_watts_strogatz(200, 3, 0.1, 3), DiffusionModel::kIndependentCascade);
  const RRRPool vector_pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 150, 21, /*adaptive=*/false);
  const RRRPool adaptive_pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 150, 21, /*adaptive=*/true);
  SelectionOptions options;
  options.k = 6;
  const auto a = run_efficient(vector_pool, options);
  const auto b = run_efficient(adaptive_pool, options);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.covered_sets, b.covered_sets);
}

TEST(EfficientSelect, KMustBePositive) {
  const RRRPool pool = fig3_pool();
  CounterArray counters(pool.num_vertices());
  SelectionOptions options;
  options.k = 0;
  EXPECT_THROW(efficient_select(pool, counters, options), CheckError);
}

TEST(RipplesSelect, Fig3MatchesEfficient) {
  const RRRPool pool = fig3_pool();
  SelectionOptions options;
  options.k = 6;
  const auto baseline = ripples_select(pool, options);
  const auto efficient = run_efficient(pool, options);
  EXPECT_EQ(baseline.seeds, efficient.seeds);
  EXPECT_EQ(baseline.covered_sets, efficient.covered_sets);
  EXPECT_EQ(baseline.marginal_coverage, efficient.marginal_coverage);
}

TEST(RipplesSelect, MatchesReferenceGreedy) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(150, 900, 19), DiffusionModel::kIndependentCascade);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 250, 5);
  SelectionOptions options;
  options.k = 7;
  EXPECT_EQ(ripples_select(pool, options).seeds, reference_greedy(pool, 7));
}

TEST(RipplesSelect, HandlesBitmapSetsToo) {
  // The baseline normally sees only sorted vectors, but its kernel must
  // stay correct if fed adaptive pools.
  auto g = testing::make_weighted_graph(
      gen_watts_strogatz(100, 3, 0.1, 23), DiffusionModel::kIndependentCascade);
  const RRRPool pool = testing::sample_pool(
      g, DiffusionModel::kIndependentCascade, 100, 31, /*adaptive=*/true);
  SelectionOptions options;
  options.k = 4;
  EXPECT_EQ(ripples_select(pool, options).seeds, reference_greedy(pool, 4));
}

TEST(SelectionResult, CoverageFractionEmptyPool) {
  SelectionResult r;
  EXPECT_DOUBLE_EQ(r.coverage_fraction(), 0.0);
}

}  // namespace
}  // namespace eimm
