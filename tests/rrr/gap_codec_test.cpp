#include "rrr/gap_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

std::vector<std::uint8_t> encode(std::span<const VertexId> sorted) {
  std::vector<std::uint8_t> out;
  const std::size_t appended = append_gap_stream(out, sorted);
  EXPECT_EQ(appended, out.size());
  EXPECT_EQ(appended, gap_stream_bytes(sorted));
  return out;
}

GapRun run_of(const std::vector<std::uint8_t>& bytes, std::uint32_t count) {
  return GapRun{bytes.data(), bytes.size(), count};
}

TEST(GapCodec, VarintRoundTripBoundaries) {
  std::vector<std::uint8_t> bytes;
  const std::vector<std::uint64_t> values{
      0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 0xFFFFFFFFull,
      0xFFFFFFFFFFFFFFFFull};
  for (const std::uint64_t v : values) write_varint(bytes, v);
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    EXPECT_EQ(read_varint(bytes, pos), v);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(GapCodec, VarintBytesMatchesWriter) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0x7F}, std::uint64_t{0x80},
        std::uint64_t{1} << 21, std::uint64_t{1} << 63}) {
    std::vector<std::uint8_t> bytes;
    write_varint(bytes, v);
    EXPECT_EQ(bytes.size(), varint_bytes(v)) << v;
  }
}

TEST(GapCodec, TruncatedVarintThrowsWithOffset) {
  std::vector<std::uint8_t> bytes;
  write_varint(bytes, 0x4000);  // three bytes
  bytes.pop_back();
  std::size_t pos = 0;
  try {
    read_varint(bytes, pos);
    FAIL() << "truncated varint must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated varint"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
}

TEST(GapCodec, EmptyStreamThrowsNotReadsOutOfBounds) {
  std::size_t pos = 0;
  EXPECT_THROW(read_varint({}, pos), CheckError);
}

TEST(GapCodec, OverlongContinuationChainThrows) {
  // Eleven continuation bytes: the shift would pass 63 bits.
  std::vector<std::uint8_t> bytes(11, 0xFF);
  std::size_t pos = 0;
  try {
    read_varint(bytes, pos);
    FAIL() << "overlong varint must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("wider than 64 bits"),
              std::string::npos);
  }
}

TEST(GapCodec, EmptyRun) {
  const std::vector<std::uint8_t> bytes = encode({});
  EXPECT_TRUE(bytes.empty());
  const GapRun run = run_of(bytes, 0);
  EXPECT_TRUE(run.decode().empty());
  EXPECT_FALSE(run.contains(0));
}

TEST(GapCodec, SingleMember) {
  const std::vector<VertexId> members{42};
  const std::vector<std::uint8_t> bytes = encode(members);
  const GapRun run = run_of(bytes, 1);
  EXPECT_EQ(run.decode(), members);
  EXPECT_TRUE(run.contains(42));
  EXPECT_FALSE(run.contains(41));
}

TEST(GapCodec, VertexZeroHeadIsStrictlyPositive) {
  // Vertex 0 encodes as head varint 1, keeping zero a corruption marker.
  const std::vector<VertexId> members{0, 1, 2};
  const std::vector<std::uint8_t> bytes = encode(members);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], 1u);
  EXPECT_EQ(run_of(bytes, 3).decode(), members);
}

TEST(GapCodec, MaxVertexIdRoundTrips) {
  const VertexId big = kInvalidVertex - 1;
  const std::vector<VertexId> members{0, big};
  const std::vector<std::uint8_t> bytes = encode(members);
  const GapRun run = run_of(bytes, 2);
  EXPECT_EQ(run.decode(), members);
  EXPECT_TRUE(run.contains(big));
}

TEST(GapCodec, AdjacentIdsEncodeOneByteGaps) {
  std::vector<VertexId> members;
  for (VertexId v = 500; v < 600; ++v) members.push_back(v);
  const std::vector<std::uint8_t> bytes = encode(members);
  // Head (500+1 -> two bytes) plus 99 one-byte unit gaps.
  EXPECT_EQ(bytes.size(), 2u + 99u);
  EXPECT_EQ(run_of(bytes, 100).decode(), members);
}

TEST(GapCodec, RandomRoundTripAgainstReference) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<VertexId> members;
    const std::size_t count = rng.next_bounded(400);
    for (std::size_t i = 0; i < count; ++i) {
      members.push_back(static_cast<VertexId>(rng.next_bounded(1u << 26)));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    const std::vector<std::uint8_t> bytes = encode(members);
    const GapRun run = run_of(bytes, static_cast<std::uint32_t>(
                                         members.size()));
    EXPECT_EQ(run.decode(), members) << "trial " << trial;
    std::vector<VertexId> seen;
    run.for_each([&](VertexId v) { seen.push_back(v); });
    EXPECT_EQ(seen, members) << "trial " << trial;
  }
}

TEST(GapCodec, ContainsEarlyExitsOnSortedStream) {
  const std::vector<VertexId> members{10, 20, 30};
  const std::vector<std::uint8_t> bytes = encode(members);
  const GapRun run = run_of(bytes, 3);
  for (const VertexId v : members) EXPECT_TRUE(run.contains(v));
  EXPECT_FALSE(run.contains(5));
  EXPECT_FALSE(run.contains(25));
  EXPECT_FALSE(run.contains(31));
}

TEST(GapCodec, TruncatedRunThrowsInsteadOfOverreading) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < 50; ++v) members.push_back(v * 1000);
  std::vector<std::uint8_t> bytes = encode(members);
  bytes.resize(bytes.size() / 2);
  const GapRun run = run_of(bytes, 50);
  EXPECT_THROW((void)run.decode(), CheckError);
  EXPECT_THROW(run.for_each([](VertexId) {}), CheckError);
  EXPECT_THROW((void)run.contains(kInvalidVertex - 1), CheckError);
}

}  // namespace
}  // namespace eimm
