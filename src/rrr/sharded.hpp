// NUMA-sharded RRR sampling pipeline (§IV-B taken to its conclusion).
//
// The paper's Table II shows that WHERE the sampling phase's working set
// lives dominates Generate_RRRsets runtime on multi-socket hosts. This
// layer partitions one generation round into per-NUMA-domain shards:
//
//   1. ShardPlan splits the global RRR index range [begin, end) into
//      contiguous shard slices (runtime/partition) and assigns each shard
//      a NUMA domain plus a contiguous group of workers.
//   2. Each worker samples its shard's slots through a per-shard JobPool
//      (runtime/work_queue) — stealing stays confined to the shard, so a
//      thread never migrates its working set across domains — and stages
//      the SORTED vertex runs in a worker-private ShardArena
//      (rrr/pool_view.hpp) whose pages are mbind'd kLocal (numa/alloc):
//      first touch by the sampling worker places them on its own domain.
//   3. Hand-off, two ways:
//      * generate(SegmentedPool&, ...) — the zero-copy production path:
//        the staged runs ARE the pool (slot entries point straight into
//        the arena pages) and selection consumes them through
//        RRRPoolView. No merge, no second copy of the vertex payload;
//        ShardStats::merged_bytes stays 0.
//      * generate(RRRPool&, ...) — the legacy merge path (dist/imm's
//        wire-format accounting and the flatten-identity tests): staged
//        runs are copied into RRRSet slots, producing the exact CSR
//        image the unsharded path builds. The sampler's arenas are
//        reset() between rounds — mapped chunks are REUSED, so
//        mapped_bytes plateaus while staged_bytes accumulates.
//
// Determinism: slot i's content depends only on (rng_seed, i) — the same
// per-index streams the unsharded path uses — so every shard count,
// worker count, steal schedule, and hand-off mode yields bit-identical
// pool content (tests/statcheck enforces this). On single-node hosts the
// kLocal policy falls back to first-touch and the pipeline degrades to
// plain batched generation; shards == 1 callers should prefer the legacy
// single-path loop in core/imm, which this layer bit-matches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "numa/alloc.hpp"
#include "numa/topology.hpp"
#include "rrr/pool.hpp"
#include "rrr/pool_view.hpp"
#include "rrr/set.hpp"
#include "runtime/atomic_counters.hpp"

namespace eimm {

/// Resolves a shard-count request: explicit positive values win, then the
/// EIMM_SHARDS environment variable, then the detected NUMA domain count
/// (1 on non-NUMA hosts — the single-domain fallback). Always >= 1.
int resolve_shards(int requested);

/// How one generation round is cut into shards and who serves each shard.
struct ShardPlan {
  struct Shard {
    std::uint64_t begin = 0;  ///< global RRR index range [begin, end)
    std::uint64_t end = 0;
    int domain = 0;           ///< preferred NUMA node (advisory: placement
                              ///< follows the workers' first touch)
    std::size_t first_worker = 0;  ///< workers [first, first+count) serve it
    std::size_t worker_count = 0;

    [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
    [[nodiscard]] bool empty() const noexcept { return begin >= end; }
  };

  std::vector<Shard> shards;
  std::size_t total_workers = 1;

  /// Splits [begin, end) into `num_shards` contiguous slices, round-robins
  /// domains from `topo`, and distributes `num_workers` over the shards.
  /// When workers outnumber shards every shard gets a contiguous worker
  /// group; otherwise each worker serves a contiguous run of shards
  /// one-by-one (shard count > thread count stays valid, just serialized).
  static ShardPlan make(std::uint64_t begin, std::uint64_t end,
                        int num_shards, std::size_t num_workers,
                        const NumaTopology& topo);

  /// Shard indices worker `w` serves, in ascending order.
  [[nodiscard]] std::vector<std::size_t> shards_for_worker(
      std::size_t w) const;
};

/// Pipeline diagnostics. The per-shard vectors describe the most recent
/// round; the byte counters are CUMULATIVE over the sampler's lifetime so
/// benches can see chunk reuse (staged grows past mapped) and the merge
/// copy disappearing (merged stays 0 on the zero-copy path).
struct ShardStats {
  std::vector<std::uint64_t> sets_per_shard;
  std::vector<std::uint64_t> steals_per_shard;
  std::vector<int> shard_domains;
  /// Payload bytes staged into arenas, cumulative across rounds.
  std::uint64_t staged_bytes = 0;
  /// Arena chunk bytes currently mapped (plateaus under reset() reuse).
  std::uint64_t mapped_bytes = 0;
  /// Payload bytes copied out of the arenas into RRRPool slots at merge,
  /// cumulative. Zero on the generate(SegmentedPool&) zero-copy path.
  std::uint64_t merged_bytes = 0;
  int numa_domains = 1;  ///< detected domains when the plan was made
};

struct ShardedConfig {
  /// Resolved shard count (>= 1); use resolve_shards() to apply the
  /// EIMM_SHARDS / topology defaulting.
  int shards = 1;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  std::uint64_t rng_seed = 0;
  std::size_t batch_size = 64;
  /// Merge path only: build RRRSet::make_adaptive (true) or make_vector
  /// (false). The zero-copy path always keeps sorted runs.
  bool adaptive_representation = true;
  double bitmap_threshold = kDefaultBitmapThreshold;
  /// Fused 64-wide generation (rrr/fused.hpp): each traversal covers one
  /// 64-slot block and emits up to 64 runs. Resolved already (use
  /// resolve_fused_sampling()); slot contents depend only on
  /// (rng_seed, block, lane window), so every shard count still yields
  /// identical pools — but IC contents differ from the scalar mode.
  bool fused = false;
};

/// One sharded generation pipeline over a fixed reverse graph. generate()
/// may be called repeatedly with growing ranges (the martingale rounds);
/// stats() describes the most recent round plus cumulative bytes. A
/// sampler instance must stick to ONE hand-off mode (enforced): the
/// byte accounting is per-mode — each mode stages through its own arena
/// set, so alternating modes would make staged/mapped/merged totals
/// describe a mix of the two, breaking the "merged_bytes == 0 proves
/// zero-copy" contract the bench and CI check.
class ShardedSampler {
 public:
  ShardedSampler(const CSRGraph& reverse, ShardedConfig config);

  /// Legacy merge path: samples global slots [begin, end) into `pool`
  /// (already resized to at least `end`), staging through the sampler's
  /// own arenas (chunks reused across calls via reset()). When `fused`
  /// is non-null every sampled vertex also increments the counter in
  /// place (kernel fusion, Algorithm 3).
  void generate(RRRPool& pool, std::uint64_t begin, std::uint64_t end,
                CounterArray* fused);

  /// Zero-copy path: samples global slots [begin, end) straight into
  /// `pool`'s arenas (already resized to at least `end`); slot entries
  /// point at the staged runs, which selection consumes in place via
  /// RRRPoolView. No payload is ever copied out (merged_bytes stays 0).
  void generate(SegmentedPool& pool, std::uint64_t begin, std::uint64_t end,
                CounterArray* fused);

  [[nodiscard]] int num_shards() const noexcept { return config_.shards; }
  [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }

 private:
  /// Shared staging engine: plans the round, pins the team, samples every
  /// slot into `arenas`, then records (worker, ref) pairs into `refs`.
  /// Delegates to stage_fused() when config_.fused is set.
  void stage(std::vector<ShardArena>& arenas, std::uint64_t begin,
             std::uint64_t end, CounterArray* fused,
             std::vector<std::pair<std::uint32_t, ShardArena::Ref>>& refs);

  /// Fused staging: plans in 64-slot block units (a block is never split
  /// across shards, so pool content is invariant under the shard count)
  /// and samples each block with one 64-wide traversal. Round boundaries
  /// may still clip a block's lane window — content then depends on the
  /// round schedule, which is itself deterministic in (params, seed).
  void stage_fused(std::vector<ShardArena>& arenas, std::uint64_t begin,
                   std::uint64_t end, CounterArray* counters,
                   std::vector<std::pair<std::uint32_t, ShardArena::Ref>>& refs);

  const CSRGraph& reverse_;
  ShardedConfig config_;
  ShardStats stats_;
  /// Merge-path staging arenas, persistent so reset() can reuse chunks.
  std::vector<ShardArena> merge_arenas_;
  /// Hand-off mode lock (see class comment).
  enum class HandOff { kUnset, kMerge, kZeroCopy };
  HandOff mode_ = HandOff::kUnset;
};

}  // namespace eimm
