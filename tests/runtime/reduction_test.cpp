#include "runtime/reduction.hpp"

#include <gtest/gtest.h>

#include "runtime/thread_info.hpp"
#include "support/rng.hpp"

namespace eimm {
namespace {

TEST(ArgMax, EmptyCounters) {
  CounterArray c;
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 0u);
}

TEST(ArgMax, SingleElement) {
  CounterArray c(1);
  c.set(0, 7);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 7u);
}

TEST(ArgMax, FindsUniqueMaximum) {
  CounterArray c(1000);
  for (std::size_t i = 0; i < c.size(); ++i) c.set(i, i % 97);
  c.set(513, 1000);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 513u);
  EXPECT_EQ(r.value, 1000u);
}

TEST(ArgMax, TieBreaksToLowestIndex) {
  CounterArray c(100);
  c.set(20, 50);
  c.set(80, 50);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 20u);
}

TEST(ArgMax, AllZerosPicksIndexZero) {
  CounterArray c(64);
  const auto r = parallel_argmax(c);
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.value, 0u);
}

TEST(ArgMax, MatchesSerialOnRandomData) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_bounded(5000);
    CounterArray c(n);
    for (std::size_t i = 0; i < n; ++i) c.set(i, rng.next_bounded(1000));
    const auto serial = serial_argmax(c);
    const auto parallel = parallel_argmax(c);
    EXPECT_EQ(parallel.index, serial.index) << "trial " << trial;
    EXPECT_EQ(parallel.value, serial.value) << "trial " << trial;
  }
}

TEST(ArgMax, DeterministicAcrossThreadCounts) {
  CounterArray c(10000);
  Xoshiro256 rng(5);
  for (std::size_t i = 0; i < c.size(); ++i) c.set(i, rng.next_bounded(50));
  ArgMaxResult reference{};
  bool first = true;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadCountScope scope(threads);
    const auto r = parallel_argmax(c);
    if (first) {
      reference = r;
      first = false;
    } else {
      EXPECT_EQ(r.index, reference.index) << threads << " threads";
      EXPECT_EQ(r.value, reference.value) << threads << " threads";
    }
  }
}

TEST(ArgMax, MaximumAtBoundaries) {
  CounterArray c(1024);
  c.set(0, 9);
  EXPECT_EQ(parallel_argmax(c).index, 0u);
  c.set(0, 0);
  c.set(1023, 9);
  EXPECT_EQ(parallel_argmax(c).index, 1023u);
}

}  // namespace
}  // namespace eimm
