// Failpoint registry — the deterministic fault-injection layer the
// chaos harness drives. Covers the spec grammar, arm/disarm lifecycle,
// seeded deterministic firing, the `times` cap, and the three modes.
#include "support/failpoint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "support/macros.hpp"

namespace eimm {
namespace {

// Every test leaves the global registry clean so suites can run in any
// order within the process.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::disarm_all(); }
  void TearDown() override { fail::disarm_all(); }
};

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fail::hit("test.never.armed").has_value());
    EXPECT_FALSE(fail::inject("test.never.armed"));
  }
}

TEST_F(FailpointTest, ParseSpecGrammar) {
  const fail::Spec error = fail::parse_spec("error:40");
  EXPECT_EQ(error.mode, fail::Mode::kError);
  EXPECT_EQ(error.arg, 40u);
  EXPECT_EQ(error.times, 0u);

  const fail::Spec capped = fail::parse_spec("trunc:100:3");
  EXPECT_EQ(capped.mode, fail::Mode::kTrunc);
  EXPECT_EQ(capped.arg, 100u);
  EXPECT_EQ(capped.times, 3u);

  const fail::Spec delay = fail::parse_spec("delay:5");
  EXPECT_EQ(delay.mode, fail::Mode::kDelay);
  EXPECT_EQ(delay.arg, 5u);
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  EXPECT_THROW((void)fail::parse_spec(""), CheckError);
  EXPECT_THROW((void)fail::parse_spec("explode:50"), CheckError);
  EXPECT_THROW((void)fail::parse_spec("error:"), CheckError);
  EXPECT_THROW((void)fail::parse_spec("error:pct"), CheckError);
  EXPECT_THROW((void)fail::parse_spec("error:50:x"), CheckError);
  EXPECT_THROW(fail::configure("siteonly"), CheckError);
  EXPECT_THROW(fail::configure("a:error:50,:error:50"), CheckError);
}

TEST_F(FailpointTest, ConfigureArmsCommaSeparatedSchedule) {
  fail::configure("test.a:error:100,test.b:trunc:100:2");
  EXPECT_EQ(fail::armed_count(), 2u);
  EXPECT_THROW((void)fail::inject("test.a"), fail::InjectedFault);
  EXPECT_TRUE(fail::inject("test.b"));
  fail::disarm("test.a");
  EXPECT_EQ(fail::armed_count(), 1u);
  EXPECT_FALSE(fail::inject("test.a"));
  fail::disarm_all();
  EXPECT_EQ(fail::armed_count(), 0u);
  EXPECT_FALSE(fail::inject("test.b"));
}

TEST_F(FailpointTest, AlwaysFireAndNeverFireProbabilities) {
  fail::Spec always;
  always.mode = fail::Mode::kError;
  always.arg = 100;
  fail::arm("test.always", always);

  fail::Spec never;
  never.mode = fail::Mode::kError;
  never.arg = 0;
  fail::arm("test.never", never);

  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW((void)fail::inject("test.always"), fail::InjectedFault);
    EXPECT_NO_THROW((void)fail::inject("test.never"));
  }
}

TEST_F(FailpointTest, SeededFiringIsDeterministic) {
  auto draw_pattern = [](std::uint64_t seed) {
    fail::disarm_all();
    fail::set_seed(seed);
    fail::Spec spec;
    spec.mode = fail::Mode::kError;
    spec.arg = 40;  // 40% per hit
    fail::arm("test.seeded", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        (void)fail::inject("test.seeded");
      } catch (const fail::InjectedFault&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };

  const std::vector<bool> first = draw_pattern(1234);
  const std::vector<bool> replay = draw_pattern(1234);
  EXPECT_EQ(first, replay);  // same seed → identical schedule

  const std::vector<bool> other = draw_pattern(99);
  EXPECT_NE(first, other);  // different seed → different draws

  // 40% over 64 hits: both extremes would mean the probability is
  // ignored entirely.
  std::size_t fires = 0;
  for (const bool f : first) fires += f ? 1u : 0u;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  fail::set_seed(0);
}

TEST_F(FailpointTest, TimesCapStopsFiring) {
  fail::Spec spec;
  spec.mode = fail::Mode::kError;
  spec.arg = 100;
  spec.times = 3;
  fail::arm("test.capped", spec);

  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      (void)fail::inject("test.capped");
    } catch (const fail::InjectedFault&) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 3);
  const fail::SiteStats stats = fail::stats("test.capped");
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.fires, 3u);
}

TEST_F(FailpointTest, TruncModeReturnsTrueWithoutThrowing) {
  fail::Spec spec;
  spec.mode = fail::Mode::kTrunc;
  spec.arg = 100;
  fail::arm("test.trunc", spec);
  EXPECT_TRUE(fail::inject("test.trunc"));
  const std::optional<fail::Mode> mode = fail::hit("test.trunc");
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, fail::Mode::kTrunc);
}

TEST_F(FailpointTest, DelayModeSleepsAndReturnsFalse) {
  fail::Spec spec;
  spec.mode = fail::Mode::kDelay;
  spec.arg = 20;  // milliseconds
  fail::arm("test.delay", spec);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(fail::inject("test.delay"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
}

TEST_F(FailpointTest, StatsCountHitsAndFires) {
  fail::Spec spec;
  spec.mode = fail::Mode::kError;
  spec.arg = 100;
  fail::arm("test.stats", spec);
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW((void)fail::inject("test.stats"), fail::InjectedFault);
  }
  const fail::SiteStats stats = fail::stats("test.stats");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.fires, 5u);
  // An unknown site reports zeros rather than throwing.
  const fail::SiteStats unknown = fail::stats("test.unknown.site");
  EXPECT_EQ(unknown.hits, 0u);
  EXPECT_EQ(unknown.fires, 0u);
}

TEST_F(FailpointTest, RearmResetsTheDeterministicStream) {
  fail::set_seed(777);
  fail::Spec spec;
  spec.mode = fail::Mode::kError;
  spec.arg = 50;
  auto draws = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) {
      bool f = false;
      try {
        (void)fail::inject("test.rearm");
      } catch (const fail::InjectedFault&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  fail::arm("test.rearm", spec);
  const std::vector<bool> first = draws();
  fail::arm("test.rearm", spec);  // re-arm resets the stream
  EXPECT_EQ(draws(), first);
  fail::set_seed(0);
}

TEST_F(FailpointTest, InjectedFaultIsACheckError) {
  fail::Spec spec;
  spec.mode = fail::Mode::kError;
  spec.arg = 100;
  fail::arm("test.typed", spec);
  // Chaos invariant: injected faults surface as typed CheckErrors, so
  // every existing catch(CheckError) barrier contains them.
  EXPECT_THROW((void)fail::inject("test.typed"), CheckError);
}

}  // namespace
}  // namespace eimm
