#include "serve/query_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/types.hpp"

namespace eimm {
namespace {

QueryOptions constrained_query(std::size_t k,
                               std::vector<VertexId> forbidden) {
  QueryOptions q;
  q.k = k;
  q.forbidden = std::move(forbidden);
  return q;
}

QueryResult result_with_seeds(std::vector<VertexId> seeds) {
  QueryResult r;
  r.seeds = std::move(seeds);
  r.covered_sketches = 10;
  r.total_sketches = 20;
  return r;
}

TEST(QueryCache, OnlyConstrainedQueriesAreCacheable) {
  QueryOptions plain;
  plain.k = 3;
  EXPECT_FALSE(QueryCache::cacheable(plain));

  EXPECT_TRUE(QueryCache::cacheable(constrained_query(3, {7})));
  QueryOptions whitelist;
  whitelist.k = 3;
  whitelist.candidates = {1, 2};
  EXPECT_TRUE(QueryCache::cacheable(whitelist));
}

TEST(QueryCache, MissThenHit) {
  QueryCache cache(8);
  const QueryOptions q = constrained_query(2, {5});
  EXPECT_FALSE(cache.lookup(q).has_value());
  cache.insert(q, result_with_seeds({1, 2}));

  const auto hit = cache.lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->seeds, (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(hit->covered_sketches, 10u);

  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCache, KeyNormalizesOrderAndDuplicates) {
  // Permuted and duplicated id lists describe the same query; the cache
  // must treat them as one entry.
  QueryCache cache(8);
  QueryOptions a;
  a.k = 4;
  a.candidates = {3, 1, 2};
  a.forbidden = {9, 8};
  cache.insert(a, result_with_seeds({1}));

  QueryOptions b;
  b.k = 4;
  b.candidates = {2, 3, 1, 1, 2};
  b.forbidden = {8, 9, 9};
  EXPECT_TRUE(cache.lookup(b).has_value());

  // Different k or different ids are different entries.
  QueryOptions c = b;
  c.k = 5;
  EXPECT_FALSE(cache.lookup(c).has_value());
  QueryOptions d = b;
  d.forbidden = {8};
  EXPECT_FALSE(cache.lookup(d).has_value());
}

TEST(QueryCache, CandidateAndForbiddenListsAreDistinct) {
  // The same ids on opposite sides of the constraint must not collide.
  QueryCache cache(8);
  QueryOptions as_candidates;
  as_candidates.k = 2;
  as_candidates.candidates = {4, 5};
  cache.insert(as_candidates, result_with_seeds({4}));

  QueryOptions as_forbidden;
  as_forbidden.k = 2;
  as_forbidden.forbidden = {4, 5};
  EXPECT_FALSE(cache.lookup(as_forbidden).has_value());
}

TEST(QueryCache, EvictsLeastRecentlyUsed) {
  QueryCache cache(2);
  const QueryOptions qa = constrained_query(1, {1});
  const QueryOptions qb = constrained_query(1, {2});
  const QueryOptions qc = constrained_query(1, {3});
  cache.insert(qa, result_with_seeds({10}));
  cache.insert(qb, result_with_seeds({20}));
  cache.insert(qc, result_with_seeds({30}));  // evicts qa

  EXPECT_FALSE(cache.lookup(qa).has_value());
  EXPECT_TRUE(cache.lookup(qb).has_value());
  EXPECT_TRUE(cache.lookup(qc).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(QueryCache, LookupRefreshesRecency) {
  QueryCache cache(2);
  const QueryOptions qa = constrained_query(1, {1});
  const QueryOptions qb = constrained_query(1, {2});
  const QueryOptions qc = constrained_query(1, {3});
  cache.insert(qa, result_with_seeds({10}));
  cache.insert(qb, result_with_seeds({20}));
  ASSERT_TRUE(cache.lookup(qa).has_value());  // qa becomes most recent
  cache.insert(qc, result_with_seeds({30}));  // so qb is the victim

  EXPECT_TRUE(cache.lookup(qa).has_value());
  EXPECT_FALSE(cache.lookup(qb).has_value());
  EXPECT_TRUE(cache.lookup(qc).has_value());
}

TEST(QueryCache, ReinsertRefreshesWithoutGrowth) {
  // The kernel is deterministic, so a re-insert carries the identical
  // result; the cache just refreshes recency and never grows.
  QueryCache cache(4);
  const QueryOptions q = constrained_query(2, {6});
  cache.insert(q, result_with_seeds({1}));
  cache.insert(q, result_with_seeds({1}));
  EXPECT_EQ(cache.stats().entries, 1u);
  const auto hit = cache.lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->seeds, (std::vector<VertexId>{1}));
}

TEST(QueryCache, ZeroCapacityDisablesCaching) {
  QueryCache cache(0);
  const QueryOptions q = constrained_query(1, {1});
  cache.insert(q, result_with_seeds({1}));
  EXPECT_FALSE(cache.lookup(q).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCache, ClearEmptiesEntries) {
  QueryCache cache(4);
  cache.insert(constrained_query(1, {1}), result_with_seeds({1}));
  cache.insert(constrained_query(1, {2}), result_with_seeds({2}));
  ASSERT_EQ(cache.stats().entries, 2u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(constrained_query(1, {1})).has_value());
}

}  // namespace
}  // namespace eimm
