#include "runtime/reduction.hpp"

#include <omp.h>

#include <vector>

#include "runtime/partition.hpp"
#include "support/aligned.hpp"

namespace eimm {

ArgMaxResult serial_argmax(const CounterArray& counters) {
  if (counters.size() == 0) return {};
  ArgMaxResult best{0, counters.get(0)};
  for (std::size_t i = 1; i < counters.size(); ++i) {
    const std::uint64_t v = counters.get(i);
    if (v > best.value) {  // strict '>' keeps the lowest index on ties
      best.value = v;
      best.index = i;
    }
  }
  return best;
}

ArgMaxResult parallel_argmax(const CounterArray& counters) {
  const std::size_t n = counters.size();
  if (n == 0) return {};

  const int max_threads = omp_get_max_threads();
  std::vector<CachePadded<ArgMaxResult>> regional(
      static_cast<std::size_t>(max_threads));

#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nthreads = static_cast<std::size_t>(omp_get_num_threads());
    const auto [begin, end] = block_range(n, nthreads, tid);
    // Step 1: regional maximum over the thread's contiguous block.
    ArgMaxResult local{begin < end ? begin : 0, 0};
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t v = counters.get(i);
      if (v > local.value) {  // strict '>' keeps the lowest index on ties
        local.value = v;
        local.index = i;
      }
    }
    regional[tid].value = local;
  }

  // Step 2: reduce the regional maxima. Blocks are in index order, so
  // strict '>' again keeps the lowest winning index.
  ArgMaxResult best = regional[0].value;
  for (int t = 1; t < max_threads; ++t) {
    const ArgMaxResult& r = regional[static_cast<std::size_t>(t)].value;
    if (r.value > best.value) best = r;
  }
  return best;
}

}  // namespace eimm
