#include "support/failpoint.hpp"

#include <chrono>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace eimm::fail {

namespace detail {
std::atomic<int> g_armed{-1};
}  // namespace detail

namespace {

// FNV-1a so per-site streams are stable across platforms and runs
// (std::hash makes no such promise).
std::uint64_t site_hash(std::string_view name) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Site {
  Spec spec;
  Xoshiro256 rng;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  obs::Counter hit_counter;
  obs::Counter fire_counter;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
  std::uint64_t seed = 0;
  bool env_loaded = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites may fire at exit
  return *r;
}

void publish_count_locked(Registry& r) {
  detail::g_armed.store(static_cast<int>(r.sites.size()),
                        std::memory_order_release);
}

void arm_locked(Registry& r, const std::string& site, Spec spec) {
  EIMM_CHECK(!site.empty(), "failpoint site name must be non-empty");
  if (spec.mode != Mode::kDelay) {
    EIMM_CHECK(spec.arg <= 100,
               "failpoint fire probability must be a percent in [0, 100]");
  }
  Site armed{spec, Xoshiro256::for_stream(r.seed, site_hash(site)), 0, 0,
             obs::counter("failpoint." + site + ".hits"),
             obs::counter("failpoint." + site + ".fires")};
  r.sites.insert_or_assign(site, std::move(armed));
  publish_count_locked(r);
}

void load_env_locked(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  r.seed = static_cast<std::uint64_t>(env_int("EIMM_FAILPOINT_SEED", 0));
  const std::optional<std::string> schedule = env_string("EIMM_FAILPOINTS");
  if (schedule && !schedule->empty()) {
    for (std::size_t at = 0; at < schedule->size();) {
      std::size_t comma = schedule->find(',', at);
      if (comma == std::string::npos) comma = schedule->size();
      const std::string entry = schedule->substr(at, comma - at);
      const std::size_t colon = entry.find(':');
      EIMM_CHECK(colon != std::string::npos && colon > 0,
                 "EIMM_FAILPOINTS entry must be site:mode:arg[:times]");
      arm_locked(r, entry.substr(0, colon), parse_spec(entry.substr(colon + 1)));
      at = comma + 1;
    }
  }
  publish_count_locked(r);
}

std::uint64_t parse_u64(const std::string& text) {
  EIMM_CHECK(!text.empty(), "failpoint spec field is empty");
  std::uint64_t value = 0;
  for (const char c : text) {
    EIMM_CHECK(c >= '0' && c <= '9', "failpoint spec field must be numeric");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kError:
      return "error";
    case Mode::kDelay:
      return "delay";
    case Mode::kTrunc:
      return "trunc";
  }
  return "?";
}

namespace detail {

std::optional<Mode> hit_slow(const char* site) {
  Mode mode{};
  std::uint64_t delay_ms = 0;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    load_env_locked(r);
    const auto it = r.sites.find(site);
    if (it == r.sites.end()) return std::nullopt;
    Site& s = it->second;
    ++s.hits;
    s.hit_counter.add();
    bool fire = s.spec.mode == Mode::kDelay || s.spec.arg >= 100 ||
                s.rng.next_bounded(100) < s.spec.arg;
    if (fire && s.spec.times != 0 && s.fires >= s.spec.times) fire = false;
    if (!fire) return std::nullopt;
    ++s.fires;
    s.fire_counter.add();
    mode = s.spec.mode;
    delay_ms = s.spec.arg;
  }
  if (mode == Mode::kDelay && delay_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return mode;
}

}  // namespace detail

bool inject(const char* site) {
  const std::optional<Mode> fired = hit(site);
  if (!fired || *fired == Mode::kDelay) return false;
  if (*fired == Mode::kError) {
    throw InjectedFault(std::string("injected fault at failpoint '") + site +
                        "'");
  }
  return true;  // kTrunc: the site simulates a truncated read/write.
}

void arm(const std::string& site, Spec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  arm_locked(r, site, spec);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  r.sites.erase(site);
  publish_count_locked(r);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  r.sites.clear();
  publish_count_locked(r);
}

std::size_t armed_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  return r.sites.size();
}

void set_seed(std::uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  r.seed = seed;
}

Spec parse_spec(const std::string& text) {
  std::vector<std::string> fields;
  for (std::size_t at = 0; at <= text.size();) {
    std::size_t colon = text.find(':', at);
    if (colon == std::string::npos) colon = text.size();
    fields.push_back(text.substr(at, colon - at));
    at = colon + 1;
  }
  EIMM_CHECK(fields.size() >= 1 && fields.size() <= 3,
             "failpoint spec must be mode[:arg[:times]]");
  Spec spec;
  if (fields[0] == "error") {
    spec.mode = Mode::kError;
  } else if (fields[0] == "delay") {
    spec.mode = Mode::kDelay;
  } else if (fields[0] == "trunc") {
    spec.mode = Mode::kTrunc;
  } else {
    EIMM_CHECK(false, "failpoint mode must be error, delay, or trunc");
  }
  if (fields.size() >= 2) spec.arg = parse_u64(fields[1]);
  if (fields.size() >= 3) spec.times = parse_u64(fields[2]);
  if (spec.mode != Mode::kDelay) {
    EIMM_CHECK(spec.arg <= 100,
               "failpoint fire probability must be a percent in [0, 100]");
  }
  return spec;
}

void configure(const std::string& schedule) {
  for (std::size_t at = 0; at < schedule.size();) {
    std::size_t comma = schedule.find(',', at);
    if (comma == std::string::npos) comma = schedule.size();
    const std::string entry = schedule.substr(at, comma - at);
    const std::size_t colon = entry.find(':');
    EIMM_CHECK(colon != std::string::npos && colon > 0,
               "failpoint schedule entry must be site:mode:arg[:times]");
    arm(entry.substr(0, colon), parse_spec(entry.substr(colon + 1)));
    at = comma + 1;
  }
}

SiteStats stats(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return {};
  return {it->second.hits, it->second.fires};
}

}  // namespace eimm::fail
