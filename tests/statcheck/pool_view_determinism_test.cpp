// Pool-view determinism sweep: the zero-copy data path (sharded staging
// consumed in place through RRRPoolView, workspace-reused counters) must
// emit BIT-IDENTICAL seed sequences to the flat reference path
// (shards == 1, contiguous RRRPool, flat counters, no pinning) for every
// shard / counter-shard / pin-mode combination — the PR's acceptance
// contract, enforced here under the statcheck label CI runs explicitly.
#include <gtest/gtest.h>

#include "rrr/pool_view.hpp"
#include "rrr/sharded.hpp"
#include "runtime/affinity.hpp"
#include "seedselect/engine.hpp"
#include "statcheck.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using statcheck::statcheck_imm_options;
using statcheck::statcheck_workload;

TEST(PoolViewDeterminism, ViewPathSeedsMatchFlatPathAcrossShardCounts) {
  for (const DiffusionModel model :
       {DiffusionModel::kIndependentCascade,
        DiffusionModel::kLinearThreshold}) {
    const DiffusionGraph g = statcheck_workload(
        model == DiffusionModel::kIndependentCascade ? "com-Amazon"
                                                     : "com-DBLP",
        model, 0.03);
    auto opt = statcheck_imm_options(model, 6);
    opt.shards = 1;
    const ImmResult flat = run_imm(g, opt, Engine::kEfficient);
    EXPECT_EQ(flat.merged_bytes, 0u);

    for (const int shards : {2, 3, 5, 8}) {
      opt.shards = shards;
      const ImmResult view = run_imm(g, opt, Engine::kEfficient);
      EXPECT_EQ(view.shards_used, shards);
      EXPECT_EQ(view.seeds, flat.seeds)
          << to_string(model) << " shards=" << shards;
      EXPECT_DOUBLE_EQ(view.coverage_fraction, flat.coverage_fraction);
      // The zero-copy acceptance: sets were staged, nothing was merged.
      EXPECT_GT(view.staged_bytes, 0u) << "shards=" << shards;
      EXPECT_EQ(view.merged_bytes, 0u) << "shards=" << shards;
    }
  }
}

TEST(PoolViewDeterminism, ShardPinCounterShardGridMatchesFlatReference) {
  // The full combination grid from the acceptance criteria: sampling
  // shards × counter shards × pin mode, every cell against the flat,
  // unpinned, single-shard reference.
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);

  set_pin_mode(PinMode::kNone);
  opt.shards = 1;
  opt.counter_shards = 1;
  const ImmResult reference = run_imm(g, opt, Engine::kEfficient);

  for (const int shards : {2, 4}) {
    for (const int counter_shards : {1, 3}) {
      for (const PinMode pin : {PinMode::kNone, PinMode::kCompact,
                                PinMode::kSpread}) {
        set_pin_mode(pin);
        opt.shards = shards;
        opt.counter_shards = counter_shards;
        const ImmResult candidate = run_imm(g, opt, Engine::kEfficient);
        EXPECT_EQ(candidate.seeds, reference.seeds)
            << "shards=" << shards << " counter_shards=" << counter_shards
            << " pin=" << to_string(pin);
        EXPECT_EQ(candidate.merged_bytes, 0u);
        EXPECT_EQ(candidate.counter_layout_allocations, 1u);
      }
    }
  }
  reset_pin_mode();
}

TEST(PoolViewDeterminism, SelectionOverSegmentsMatchesSelectionOverPool) {
  // Engine-level cross-backing check, independent of run_imm: the same
  // set contents behind a SegmentedPool view and behind a legacy RRRPool
  // must select identically, for both counter layouts.
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);

  opt.shards = 3;
  // The reference pool below is the scalar per-index sampler; pin fused
  // off so EIMM_FUSED=1 environments keep comparing like with like.
  opt.fused_sampling = FusedSampling::kOff;
  const PoolBuild segmented = build_rrr_pool(g, opt, Engine::kEfficient);
  ASSERT_TRUE(segmented.segmented);

  const RRRPool reference = testing::sample_pool(
      g, opt.model, segmented.size(), opt.rng_seed, /*adaptive=*/true);

  SelectionOptions sopt;
  sopt.k = opt.k;
  for (const int counter_shards : {1, 2}) {
    SelectionEngineConfig config;
    config.counter_shards = counter_shards;
    config.pin = PinMode::kNone;
    const SelectionEngine engine(config);
    const SelectionResult over_view = engine.select(
        SelectionKernel::kEfficient, segmented.view(), sopt);
    const SelectionResult over_pool =
        engine.select(SelectionKernel::kEfficient, reference, sopt);
    EXPECT_EQ(over_view.seeds, over_pool.seeds)
        << "counter_shards=" << counter_shards;
    EXPECT_EQ(over_view.marginal_coverage, over_pool.marginal_coverage);
    EXPECT_EQ(over_view.covered_sets, over_pool.covered_sets);

    // The ripples baseline consumes the view too.
    const SelectionResult ripples_view =
        engine.select(SelectionKernel::kRipples, segmented.view(), sopt);
    const SelectionResult ripples_pool =
        engine.select(SelectionKernel::kRipples, reference, sopt);
    EXPECT_EQ(ripples_view.seeds, ripples_pool.seeds);
  }
}

TEST(PoolViewDeterminism, SegmentedFlattenBitMatchesMergePathImage) {
  // flatten() stays available for snapshots: the segmented build's
  // flattened image must bit-match the legacy merge path's pool image
  // for the same configuration.
  const DiffusionGraph g = statcheck_workload(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 4);
  opt.shards = 4;
  // Pin fused off: the one-shot merge run below covers [0, size) in a
  // single round, while the build's martingale schedule clips fused
  // blocks at round boundaries — fused images would legitimately differ.
  opt.fused_sampling = FusedSampling::kOff;
  const PoolBuild build = build_rrr_pool(g, opt, Engine::kEfficient);
  ASSERT_TRUE(build.segmented);

  ShardedConfig config;
  config.shards = 4;
  config.model = opt.model;
  config.rng_seed = opt.rng_seed;
  config.batch_size = opt.batch_size;
  ShardedSampler merge_sampler(g.reverse, config);
  RRRPool merged(g.num_vertices());
  merged.resize(build.size());
  merge_sampler.generate(merged, 0, build.size(), nullptr);

  const FlatPool a = build.view().flatten();
  const FlatPool b = merged.flatten();
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.vertices, b.vertices);
  // And the merge path is the one that pays the copy.
  EXPECT_GT(merge_sampler.stats().merged_bytes, 0u);
  EXPECT_EQ(build.shard_stats.merged_bytes, 0u);
}

}  // namespace
}  // namespace eimm
