// The serving contract: an unconstrained k-query against a store built
// with (workload, seed, epsilon, k) returns the IDENTICAL seed set a
// direct Engine::kEfficient run produces — freezing the sketches loses
// nothing.
#include <gtest/gtest.h>

#include "core/imm.hpp"
#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

ImmOptions smoke_options(DiffusionModel model, std::size_t k,
                         std::uint64_t seed) {
  ImmOptions options;
  options.k = k;
  options.epsilon = 0.5;
  options.model = model;
  options.rng_seed = seed;
  options.max_rrr_sets = 8192;
  return options;
}

void expect_query_equals_direct_run(const std::string& workload,
                                    DiffusionModel model, std::size_t k,
                                    std::uint64_t seed) {
  const DiffusionGraph graph =
      make_workload_with_weights(workload, model, 0.01, seed);
  const ImmOptions options = smoke_options(model, k, seed);

  const ImmResult direct = run_efficient_imm(graph, options);
  const SketchStore store = SketchStore::build(graph, options, workload);
  const QueryEngine engine(store);
  const QueryResult served = engine.top_k(k);

  EXPECT_EQ(served.seeds, direct.seeds) << workload;
  EXPECT_EQ(store.num_sketches(), direct.num_rrr_sets) << workload;
  EXPECT_EQ(store.meta().theta, direct.theta) << workload;
  EXPECT_EQ(store.meta().theta_capped, direct.theta_capped) << workload;
  EXPECT_DOUBLE_EQ(served.coverage_fraction(), direct.coverage_fraction)
      << workload;
  EXPECT_DOUBLE_EQ(served.estimated_spread, direct.estimated_spread)
      << workload;

  // The live kernel agrees with the cached sequence as well.
  QueryOptions q;
  q.k = k;
  EXPECT_EQ(engine.select(q).seeds, direct.seeds) << workload;
}

TEST(ServeEquivalence, IndependentCascadeMatchesDirectRun) {
  expect_query_equals_direct_run(
      "com-Amazon", DiffusionModel::kIndependentCascade, 8, 0x5EEDBA5Eu);
}

TEST(ServeEquivalence, LinearThresholdMatchesDirectRun) {
  expect_query_equals_direct_run(
      "com-DBLP", DiffusionModel::kLinearThreshold, 6, 1234);
}

TEST(ServeEquivalence, SecondWorkloadAndSeedMatchesDirectRun) {
  expect_query_equals_direct_run(
      "com-YouTube", DiffusionModel::kIndependentCascade, 5, 987654321);
}

TEST(ServeEquivalence, SmallerQueriesArePrefixesOfTheDirectRun) {
  const DiffusionGraph graph = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.01);
  const ImmOptions options =
      smoke_options(DiffusionModel::kIndependentCascade, 8, 0x5EEDBA5Eu);

  const ImmResult direct = run_efficient_imm(graph, options);
  const SketchStore store = SketchStore::build(graph, options);
  const QueryEngine engine(store);
  for (std::size_t k = 1; k <= direct.seeds.size(); ++k) {
    const QueryResult served = engine.top_k(k);
    ASSERT_EQ(served.seeds.size(), k);
    EXPECT_TRUE(std::equal(served.seeds.begin(), served.seeds.end(),
                           direct.seeds.begin()))
        << "k=" << k;
  }
}

TEST(ServeEquivalence, BuildIsDeterministicAcrossThreadCounts) {
  const DiffusionGraph graph = make_workload_with_weights(
      "com-DBLP", DiffusionModel::kIndependentCascade, 0.01);
  ImmOptions options =
      smoke_options(DiffusionModel::kIndependentCascade, 6, 42);

  options.threads = 1;
  const SketchStore serial = SketchStore::build(graph, options);
  options.threads = 4;
  const SketchStore parallel = SketchStore::build(graph, options);
  EXPECT_TRUE(serial == parallel);
}

}  // namespace
}  // namespace eimm
