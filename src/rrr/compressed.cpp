#include "rrr/compressed.hpp"

#include <algorithm>
#include <utility>

namespace eimm {

CompressedSet CompressedSet::encode(std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());

  CompressedSet set;
  set.count_ = vertices.size();
  set.bytes_.reserve(vertices.size() * 2);  // typical gap fits 1-2 bytes
  append_gap_stream(set.bytes_, vertices);
  set.bytes_.shrink_to_fit();
  return set;
}

CompressedSet CompressedSet::from_encoded(std::size_t count,
                                          std::vector<std::uint8_t> bytes) {
  CompressedSet set;
  set.count_ = count;
  set.bytes_ = std::move(bytes);
  return set;
}

std::vector<VertexId> CompressedSet::decode() const { return run().decode(); }

}  // namespace eimm
