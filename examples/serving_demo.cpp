// serving_demo — build the RRR sketches once, answer many queries.
//
// A marketing team re-plans campaigns all day: "top 10 influencers",
// "top 10 but these three declined", "only accounts from this region",
// "how good is the list the client already picked?". Re-running the full
// martingale loop per question wastes its cost; the SketchStore freezes
// one build into an immutable index and the QueryEngine answers every
// variation in microseconds, including from a snapshot file loaded by a
// different process.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <sstream>

#include "serve/query_engine.hpp"
#include "serve/sketch_store.hpp"
#include "workloads/registry.hpp"

using namespace eimm;

int main() {
  // --- Build once: the expensive, amortized step -------------------------
  const DiffusionGraph graph = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, /*scale=*/0.05);
  ImmOptions options;
  options.k = 10;  // build-time cap: queries may ask for any k <= 10
  options.epsilon = 0.5;
  options.max_rrr_sets = 1u << 16;
  const SketchStore store = SketchStore::build(graph, options, "com-Amazon");
  std::printf("built store: |V|=%u, %llu sketches, %.1f KiB\n\n",
              store.num_vertices(),
              static_cast<unsigned long long>(store.num_sketches()),
              static_cast<double>(store.memory_bytes()) / 1024.0);

  const QueryEngine engine(store);

  // --- Query many: each answer reuses the frozen sketches ---------------
  const QueryResult top5 = engine.top_k(5);
  std::printf("top-5 seeds:");
  for (const VertexId s : top5.seeds) std::printf(" %u", s);
  std::printf("  (spread %.1f)\n", top5.estimated_spread);

  QueryOptions declined;
  declined.k = 5;
  declined.forbidden = {
      top5.seeds.begin(),
      top5.seeds.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(
              2, top5.seeds.size()))};
  const QueryResult replanned = engine.select(declined);
  std::printf("top-5 after the best two declined:");
  for (const VertexId s : replanned.seeds) std::printf(" %u", s);
  std::printf("  (spread %.1f)\n", replanned.estimated_spread);

  QueryOptions regional;
  regional.k = 5;
  for (VertexId v = 0; v < store.num_vertices() / 4; ++v) {
    regional.candidates.push_back(v);
  }
  const QueryResult region = engine.select(regional);
  std::printf("top-5 within the first quarter of vertices:");
  for (const VertexId s : region.seeds) std::printf(" %u", s);
  std::printf("  (spread %.1f)\n", region.estimated_spread);

  const MarginalGainResult eval = engine.evaluate({0, 1, 2});
  std::printf("client's own list {0,1,2}: spread %.1f (%.2f%% coverage)\n",
              eval.estimated_spread, 100.0 * eval.coverage_fraction());

  // --- Snapshots: a separate serving process loads the same store --------
  std::stringstream snapshot;
  store.save(snapshot);
  const SketchStore loaded = SketchStore::load(snapshot);
  const QueryEngine remote(loaded);
  std::printf("\nsnapshot round-trip (%zu bytes): top-3 identical: %s\n",
              snapshot.str().size(),
              remote.top_k(3).seeds == engine.top_k(3).seeds ? "yes" : "NO");
  return 0;
}
