// Binary CSR serialization — load big graphs without re-parsing text.
// Little-endian, versioned header; weights are optional.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace eimm {

/// Writes the CSR arrays with a magic/version header.
void write_binary_csr(std::ostream& os, const CSRGraph& g);
void write_binary_csr_file(const std::string& path, const CSRGraph& g);

/// Reads a graph previously written by write_binary_csr. Throws
/// CheckError on bad magic, version, or truncated payload.
CSRGraph read_binary_csr(std::istream& is);
CSRGraph read_binary_csr_file(const std::string& path);

}  // namespace eimm
