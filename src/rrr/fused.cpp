#include "rrr/fused.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "runtime/rng_stream.hpp"
#include "support/env.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

/// Candidate-lane count at or below which IC coin flips come from the
/// per-lane streams instead of one block mask. A mask costs ~8 uniform
/// draws in expectation regardless of how many lanes need it (see
/// bernoulli_mask), so it only pays once enough lanes are asking; below
/// the threshold per-lane draws match the scalar pipeline's RNG cost.
constexpr int kMaskFlipThreshold = 8;

}  // namespace

bool resolve_fused_sampling(FusedSampling requested) {
  switch (requested) {
    case FusedSampling::kOff:
      return false;
    case FusedSampling::kOn:
      return true;
    case FusedSampling::kAuto:
      break;
  }
  return env_bool("EIMM_FUSED", false);
}

std::string_view to_string(FusedSampling mode) noexcept {
  switch (mode) {
    case FusedSampling::kAuto:
      return "auto";
    case FusedSampling::kOff:
      return "off";
    case FusedSampling::kOn:
      return "on";
  }
  return "auto";
}

std::uint64_t bernoulli_mask(Xoshiro256& rng, double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  const auto q =
      static_cast<std::uint64_t>(std::llround(p * 4294967296.0));  // p·2^32
  if (q == 0) return 0;
  if (q >= (std::uint64_t{1} << 32)) return ~std::uint64_t{0};
  // Bit-serial comparison U < q/2^32, all 64 lanes at once, MSB first:
  // draw k supplies bit k of every lane's uniform U. Where q's bit is 1,
  // a lane whose U-bit is 0 resolves to TRUE; where q's bit is 0, a lane
  // whose U-bit is 1 resolves to FALSE; equal bits stay undecided. Each
  // draw halves the undecided set in expectation, so a full-width mask
  // costs ~log2(64)+2 ≈ 8 draws instead of one draw per lane — and when
  // q runs out of set bits the surviving ties compare equal, i.e. NOT
  // below q, so the loop exits early (p = 0.5 costs a single draw).
  std::uint64_t result = 0;
  std::uint64_t undecided = ~std::uint64_t{0};
  for (int k = 31; k >= 0; --k) {
    if ((q & ((std::uint64_t{1} << (k + 1)) - 1)) == 0) break;
    const std::uint64_t r = rng();
    if (((q >> k) & 1) != 0) {
      result |= undecided & ~r;
      undecided &= r;
    } else {
      undecided &= ~r;
    }
    if (undecided == 0) break;
  }
  return result;
}

namespace {

/// Seeds the window's lane streams, draws every root, and queues the
/// roots with their lane masks accumulated in `pending` — lanes sharing
/// a root coalesce before the first expansion. Lane l's first draw is
/// next_bounded(n) from rng_stream(seed, block*64+l) — bit-identical to
/// the scalar sampler's root pick for that slot.
void draw_roots(const CSRGraph& reverse, std::uint64_t base_seed,
                std::uint64_t block, unsigned lane_begin, unsigned lane_end,
                FusedScratch& scratch) {
  const VertexId n = reverse.num_vertices();
  for (unsigned l = lane_begin; l < lane_end; ++l) {
    scratch.lane_rng[l] =
        rng_lane_stream(base_seed, block, kFusedLanes, l);
    const auto root =
        static_cast<VertexId>(scratch.lane_rng[l].next_bounded(n));
    if (scratch.visited[root] == 0) scratch.touched.push_back(root);
    if (scratch.pending[root] == 0) scratch.queue.push_back(root);
    const std::uint64_t bit = std::uint64_t{1} << l;
    scratch.visited[root] |= bit;
    scratch.pending[root] |= bit;
    scratch.current[l] = root;
  }
}

/// IC: label-correcting BFS over all lanes at once with mask
/// coalescing. Popping v consumes pending[v] — every lane that arrived
/// at v since it was queued — so one adjacency scan serves the whole
/// accumulated mask, and lanes converging on high-influence vertices
/// merge into dense masks that take the single-Bernoulli-mask fast
/// path. A lane expands from each vertex at most once (it leaves
/// pending[v] on expansion and visited[v] keeps it from re-entering),
/// so each (lane, edge) pair flips at most one coin: the scalar IC
/// live-edge semantics. Expansion ORDER differs from the scalar BFS —
/// that is exactly why IC equivalence is statistical, not bitwise.
void traverse_ic(const CSRGraph& reverse, Xoshiro256& mask_rng,
                 FusedScratch& scratch) {
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const VertexId u = scratch.queue[head];
    const std::uint64_t m = scratch.pending[u];
    scratch.pending[u] = 0;
    const auto neighbors = reverse.neighbors(u);
    const auto probs = reverse.weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId w = neighbors[i];
      const std::uint64_t need = m & ~scratch.visited[w];
      if (need == 0) continue;
      const double p = probs[i];
      std::uint64_t fresh;
      if (std::popcount(need) <= kMaskFlipThreshold) {
        // Few candidate lanes: per-lane draws (scalar RNG cost).
        fresh = 0;
        for (std::uint64_t rest = need; rest != 0; rest &= rest - 1) {
          const unsigned l = static_cast<unsigned>(std::countr_zero(rest));
          if (scratch.lane_rng[l].next_bool(p)) fresh |= std::uint64_t{1} << l;
        }
      } else {
        // Dense candidates: one Bernoulli mask serves every lane. The
        // mask bits are iid and fresh per edge event, so lanes stay
        // mutually independent even though they share the draw.
        fresh = bernoulli_mask(mask_rng, p) & need;
      }
      if (fresh == 0) continue;
      if (scratch.visited[w] == 0) scratch.touched.push_back(w);
      if (scratch.pending[w] == 0) scratch.queue.push_back(w);
      scratch.visited[w] |= fresh;
      scratch.pending[w] |= fresh;
    }
  }
}

/// LT: per-lane reverse random walks over the shared visited words. A
/// lane falls out of `alive` when no in-neighbor activates it or its
/// walk closes a cycle. Draw order within a lane matches the scalar
/// kernel exactly, so each lane's set is bit-identical to scalar LT.
void traverse_lt(const CSRGraph& reverse, unsigned lane_begin,
                 unsigned lane_end, FusedScratch& scratch) {
  std::uint64_t alive = lane_end - lane_begin == kFusedLanes
                            ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << (lane_end - lane_begin)) - 1)
                                  << lane_begin;
  while (alive != 0) {
    for (std::uint64_t rest = alive; rest != 0; rest &= rest - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(rest));
      const std::uint64_t bit = std::uint64_t{1} << l;
      const VertexId u = scratch.current[l];
      const auto neighbors = reverse.neighbors(u);
      const auto weights = reverse.weights(u);
      if (neighbors.empty()) {
        alive &= ~bit;
        continue;
      }
      const double r = scratch.lane_rng[l].next_double();
      double cumulative = 0.0;
      VertexId picked = kInvalidVertex;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        cumulative += weights[i];
        if (r < cumulative) {
          picked = neighbors[i];
          break;
        }
      }
      if (picked == kInvalidVertex || (scratch.visited[picked] & bit) != 0) {
        alive &= ~bit;  // no activator, or the walk closed a cycle
        continue;
      }
      if (scratch.visited[picked] == 0) scratch.touched.push_back(picked);
      scratch.visited[picked] |= bit;
      scratch.current[l] = picked;
    }
  }
}

/// Shared front half of both entry points: validates, runs the model's
/// traversal, and leaves scratch.visited/touched describing the lane
/// sets (touched sorted ascending, so every emit order is sorted too).
void run_fused_traversal(const CSRGraph& reverse, DiffusionModel model,
                         std::uint64_t base_seed, std::uint64_t block,
                         unsigned lane_begin, unsigned lane_end,
                         FusedScratch& scratch) {
  EIMM_CHECK(reverse.has_weights(), "reverse graph needs diffusion weights");
  EIMM_CHECK(reverse.num_vertices() > 0, "empty graph");
  EIMM_CHECK(lane_begin < lane_end && lane_end <= kFusedLanes,
             "invalid fused lane window");

  scratch.queue.clear();
  scratch.touched.clear();
  draw_roots(reverse, base_seed, block, lane_begin, lane_end, scratch);

  if (model == DiffusionModel::kIndependentCascade) {
    // The mask stream lives in its own split domain and is salted with
    // (block, lane_begin): two traversals over different lane windows of
    // the same block (a martingale round split) never share mask draws.
    Xoshiro256 mask_rng =
        rng_stream(rng_split(base_seed, rng_domain::kFusedMask),
                   block * kFusedLanes + lane_begin);
    traverse_ic(reverse, mask_rng, scratch);
  } else {
    traverse_lt(reverse, lane_begin, lane_end, scratch);
  }
  std::sort(scratch.touched.begin(), scratch.touched.end());
}

}  // namespace

FusedTraversalStats sample_rrr_fused(const CSRGraph& reverse,
                                     DiffusionModel model,
                                     std::uint64_t base_seed,
                                     std::uint64_t block, unsigned lane_begin,
                                     unsigned lane_end,
                                     FusedScratch& scratch) {
  run_fused_traversal(reverse, model, base_seed, block, lane_begin, lane_end,
                      scratch);
  for (unsigned l = lane_begin; l < lane_end; ++l) scratch.members[l].clear();

  // Emit: one pass over the sorted touched union scatters each visited
  // word into the per-lane member buffers (already sorted, since the
  // union is) and clears it, restoring the all-zero scratch invariant.
  FusedTraversalStats stats;
  stats.lanes = lane_end - lane_begin;
  stats.touched = scratch.touched.size();
  for (const VertexId v : scratch.touched) {
    std::uint64_t word = scratch.visited[v];
    scratch.visited[v] = 0;
    scratch.pending[v] = 0;  // LT roots park lanes here and never expand
    stats.members += static_cast<std::uint64_t>(std::popcount(word));
    for (; word != 0; word &= word - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(word));
      scratch.members[l].push_back(v);
    }
  }
  return stats;
}

FusedTraversalStats sample_rrr_fused_into(
    const CSRGraph& reverse, DiffusionModel model, std::uint64_t base_seed,
    std::uint64_t block, unsigned lane_begin, unsigned lane_end,
    FusedScratch& scratch, ShardArena& arena, ShardArena::Ref* refs_out) {
  run_fused_traversal(reverse, model, base_seed, block, lane_begin, lane_end,
                      scratch);

  FusedTraversalStats stats;
  stats.lanes = lane_end - lane_begin;
  stats.touched = scratch.touched.size();

  // Pass 1: per-lane sizes (counts live in registers/stack, no buffer
  // traffic), so each lane's run can be allocated exactly-sized.
  std::array<std::uint32_t, kFusedLanes> counts{};
  for (const VertexId v : scratch.touched) {
    std::uint64_t word = scratch.visited[v];
    stats.members += static_cast<std::uint64_t>(std::popcount(word));
    for (; word != 0; word &= word - 1) {
      ++counts[std::countr_zero(word)];
    }
  }
  std::array<VertexId*, kFusedLanes> dest{};
  for (unsigned l = lane_begin; l < lane_end; ++l) {
    std::span<VertexId> run;
    refs_out[l - lane_begin] = arena.allocate(counts[l], run);
    dest[l] = run.data();
  }

  // Pass 2: scatter each touched vertex into its lanes' runs (sorted,
  // since touched is) and clear the scratch words in the same sweep.
  for (const VertexId v : scratch.touched) {
    std::uint64_t word = scratch.visited[v];
    scratch.visited[v] = 0;
    scratch.pending[v] = 0;  // LT roots park lanes here and never expand
    for (; word != 0; word &= word - 1) {
      *dest[std::countr_zero(word)]++ = v;
    }
  }
  return stats;
}

}  // namespace eimm
