#include "runtime/atomic_counters.hpp"

#include <gtest/gtest.h>
#include <omp.h>

namespace eimm {
namespace {

TEST(CounterArray, StartsZeroed) {
  CounterArray c(100);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.get(i), 0u);
}

TEST(CounterArray, IncrementDecrement) {
  CounterArray c(4);
  c.increment(1);
  c.increment(1);
  c.increment(3);
  c.decrement(1);
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(1), 1u);
  EXPECT_EQ(c.get(3), 1u);
}

TEST(CounterArray, ConcurrentIncrementsAreExact) {
  constexpr std::size_t kCounters = 64;
  constexpr int kPerThread = 20000;
  CounterArray c(kCounters);
#pragma omp parallel
  {
    for (int i = 0; i < kPerThread; ++i) {
      c.increment(static_cast<std::size_t>(i) % kCounters);
    }
  }
  const auto threads = static_cast<std::uint64_t>(omp_get_max_threads());
  EXPECT_EQ(c.total(), threads * kPerThread);
}

TEST(CounterArray, ConcurrentSameSlotContention) {
  // All threads hammer one counter — the fine-grained atomic must still
  // be exact (this is the `lock incq` pattern from the paper).
  CounterArray c(1);
  constexpr int kPerThread = 50000;
#pragma omp parallel
  {
    for (int i = 0; i < kPerThread; ++i) c.increment(0);
  }
  const auto threads = static_cast<std::uint64_t>(omp_get_max_threads());
  EXPECT_EQ(c.get(0), threads * kPerThread);
}

TEST(CounterArray, ResetZeroes) {
  CounterArray c(1000);
  for (std::size_t i = 0; i < c.size(); ++i) c.increment(i);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(CounterArray, SetAndSnapshot) {
  CounterArray c(3);
  c.set(0, 5);
  c.set(2, 9);
  const auto snap = c.snapshot();
  EXPECT_EQ(snap, (std::vector<std::uint64_t>{5, 0, 9}));
}

TEST(CounterArray, InterleavePolicyAllocationWorks) {
  CounterArray c(1 << 16, MemPolicy::kInterleave);
  c.increment(12345);
  EXPECT_EQ(c.get(12345), 1u);
  EXPECT_EQ(c.size(), std::size_t{1} << 16);
}

TEST(CounterArray, EmptyArray) {
  CounterArray c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.total(), 0u);
}

}  // namespace
}  // namespace eimm
