// ASCII table printer. Every bench binary prints its paper table/figure
// through this so the output format is uniform and diffable.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace eimm {

/// Column-aligned ASCII table with a header row and optional title.
/// Cells are strings; numeric convenience overloads format in place.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void set_title(std::string title) { title_ = std::move(title); }

  /// Starts a new row; subsequent add() calls fill it left to right.
  AsciiTable& new_row() {
    rows_.emplace_back();
    return *this;
  }

  AsciiTable& add(std::string cell) {
    rows_.back().push_back(std::move(cell));
    return *this;
  }
  AsciiTable& add(const char* cell) { return add(std::string(cell)); }
  AsciiTable& add(double v, int precision = 3);
  AsciiTable& add(std::uint64_t v);
  AsciiTable& add(std::int64_t v);
  AsciiTable& add(int v) { return add(static_cast<std::int64_t>(v)); }

  /// Renders with column alignment, `|` separators and a rule under the
  /// header (GitHub-Markdown compatible).
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v with fixed precision, e.g. format_double(1.23456, 2) == "1.23".
std::string format_double(double v, int precision);

/// Human-readable byte count ("1.5 GiB").
std::string format_bytes(std::uint64_t bytes);

/// Formats a speedup like the paper's tables: "5.9x".
std::string format_speedup(double ratio, int precision = 1);

}  // namespace eimm
