// End-to-end runs of the full IMM workflow on the workload analogues,
// checking the pieces compose: workload -> weights -> sampling ->
// selection -> result, for both models and both engines.
#include <gtest/gtest.h>

#include "core/imm.hpp"
#include "simulate/heuristics.hpp"
#include "simulate/spread.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

struct EndToEndCase {
  std::string workload;
  DiffusionModel model;
};

class EndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEnd, ProducesUsefulSeeds) {
  const auto& param = GetParam();
  const DiffusionGraph g =
      make_workload_with_weights(param.workload, param.model, 0.02, 17);

  ImmOptions opt;
  opt.k = 8;
  opt.epsilon = 0.5;
  opt.model = param.model;
  opt.rng_seed = 99;
  opt.max_rrr_sets = 300'000;

  const ImmResult result = run_efficient_imm(g, opt);
  ASSERT_EQ(result.seeds.size(), 8u);

  // IMM seeds must clearly beat random seeds in actual simulated spread.
  SpreadOptions spread_opt;
  spread_opt.num_samples = 300;
  const double imm_spread =
      estimate_spread(g.forward, param.model, result.seeds, spread_opt);
  const auto random = random_seeds(g.num_vertices(), 8, 1234);
  const double random_spread =
      estimate_spread(g.forward, param.model, random, spread_opt);
  EXPECT_GE(imm_spread, random_spread);

  // And be at least competitive with the degree heuristic.
  const auto degree = top_degree_seeds(g.forward, 8);
  const double degree_spread =
      estimate_spread(g.forward, param.model, degree, spread_opt);
  EXPECT_GE(imm_spread, 0.8 * degree_spread);
}

std::string e2e_name(const ::testing::TestParamInfo<EndToEndCase>& info) {
  std::string name =
      info.param.workload + "_" + std::string(to_string(info.param.model));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndModels, EndToEnd,
    ::testing::Values(
        EndToEndCase{"com-Amazon", DiffusionModel::kIndependentCascade},
        EndToEndCase{"com-Amazon", DiffusionModel::kLinearThreshold},
        EndToEndCase{"com-YouTube", DiffusionModel::kIndependentCascade},
        EndToEndCase{"com-DBLP", DiffusionModel::kLinearThreshold},
        EndToEndCase{"as-Skitter", DiffusionModel::kIndependentCascade},
        EndToEndCase{"web-Google", DiffusionModel::kIndependentCascade},
        EndToEndCase{"web-Google", DiffusionModel::kLinearThreshold}),
    e2e_name);

TEST(EndToEndEngines, BothEnginesAgreeOnWorkloads) {
  for (const char* name : {"com-Amazon", "web-Google"}) {
    const DiffusionGraph g = make_workload_with_weights(
        name, DiffusionModel::kIndependentCascade, 0.02, 21);
    ImmOptions opt;
    opt.k = 6;
    opt.model = DiffusionModel::kIndependentCascade;
    opt.rng_seed = 5;
    opt.max_rrr_sets = 100'000;
    const auto efficient = run_efficient_imm(g, opt);
    const auto baseline = run_baseline_imm(g, opt);
    EXPECT_EQ(efficient.seeds, baseline.seeds) << name;
  }
}

TEST(EndToEndModels, LtUsesMoreButSmallerSets) {
  // §III-A: under LT the RRR sets are small but numerous; under IC they
  // are large but few. Verify the characterization holds on an analogue.
  const DiffusionGraph ic = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.02, 3);
  const DiffusionGraph lt = make_workload_with_weights(
      "com-YouTube", DiffusionModel::kLinearThreshold, 0.02, 3);

  ImmOptions opt;
  opt.k = 5;
  opt.rng_seed = 77;
  opt.max_rrr_sets = 500'000;

  opt.model = DiffusionModel::kIndependentCascade;
  const auto ic_result = run_efficient_imm(ic, opt);
  opt.model = DiffusionModel::kLinearThreshold;
  const auto lt_result = run_efficient_imm(lt, opt);

  const double ic_avg_size =
      static_cast<double>(ic_result.rrr_memory_bytes) /
      static_cast<double>(ic_result.num_rrr_sets);
  const double lt_avg_size =
      static_cast<double>(lt_result.rrr_memory_bytes) /
      static_cast<double>(lt_result.num_rrr_sets);
  EXPECT_GT(lt_result.num_rrr_sets, ic_result.num_rrr_sets);
  EXPECT_GT(ic_avg_size, lt_avg_size);
}

}  // namespace
}  // namespace eimm
