// Hot snapshot reload: epoch-versioned StoreRegistry swaps, the kReload
// wire verb, and the strong no-worse-than-before guarantee — a failed
// reload must leave the previous generation serving untouched, and
// in-flight queries against a retired epoch must complete.
#include "serve/store_registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/binary.hpp"
#include "serve/query_engine.hpp"
#include "serve/server.hpp"
#include "serve/sketch_store.hpp"
#include "support/failpoint.hpp"
#include "support/macros.hpp"
#include "workloads/registry.hpp"

namespace eimm {
namespace {

constexpr std::size_t kTableAt = 24;
constexpr std::size_t kEntryBytes = 24;

SketchStore make_store(double scale = 0.01) {
  const DiffusionGraph g = make_workload_with_weights(
      "com-Amazon", DiffusionModel::kIndependentCascade, scale);
  ImmOptions options;
  options.k = 6;
  options.max_rrr_sets = 2048;
  return SketchStore::build(g, options, "amazon-reload");
}

std::shared_ptr<const SketchStore> make_shared_store(double scale = 0.01) {
  return std::make_shared<const SketchStore>(make_store(scale));
}

std::string save_snapshot(const SketchStore& store, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  store.save_file(path);
  return path;
}

void corrupt_payload_byte(const std::string& path) {
  std::string data;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    data = buf.str();
  }
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::memcpy(&offset, data.data() + kTableAt + 2 * kEntryBytes + 8, 8);
  std::memcpy(&bytes, data.data() + kTableAt + 2 * kEntryBytes + 16, 8);
  const std::size_t victim = offset + bytes / 2;
  data[victim] = static_cast<char>(data[victim] ^ 0x20);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// --- StoreRegistry ---

TEST(StoreRegistry, StartsAtGenerationOne) {
  StoreRegistry registry(make_shared_store(), ExecutorOptions{});
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.reloads(), 0u);
  EXPECT_EQ(registry.failed_reloads(), 0u);
  const std::shared_ptr<ServingEpoch> epoch = registry.current();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->generation, 1u);
  QueryOptions q;
  q.k = 3;
  EXPECT_EQ(epoch->executor.submit(q).get().seeds,
            epoch->engine.top_k(3).seeds);
  registry.shutdown();
}

TEST(StoreRegistry, ReloadStoreSwapsWhileOldEpochKeepsAnswering) {
  StoreRegistry registry(make_shared_store(), ExecutorOptions{});
  const std::shared_ptr<ServingEpoch> old_epoch = registry.current();
  const std::vector<VertexId> old_seeds = old_epoch->engine.top_k(4).seeds;

  const std::shared_ptr<ServingEpoch> fresh =
      registry.reload_store(make_shared_store(0.02));
  EXPECT_EQ(fresh->generation, 2u);
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.reloads(), 1u);
  EXPECT_EQ(registry.current(), fresh);

  // The retired epoch is still fully serviceable while referenced — the
  // zero-failed-in-flight-queries contract.
  QueryOptions q;
  q.k = 4;
  EXPECT_EQ(old_epoch->executor.submit(q).get().seeds, old_seeds);
  registry.shutdown();
}

TEST(StoreRegistry, ReloadFileLoadsVerifiesAndSwaps) {
  const SketchStore replacement = make_store(0.02);
  const std::string path = save_snapshot(replacement, "eimm_reload_ok.sks");

  StoreRegistry registry(make_shared_store(), ExecutorOptions{});
  const std::shared_ptr<ServingEpoch> epoch = registry.reload_file(path);
  EXPECT_EQ(epoch->generation, 2u);
  // reload_file upgrades lazy checksum handling to eager: the swapped-in
  // store must have nothing pending.
  EXPECT_FALSE(epoch->store->checksums_pending());
  EXPECT_TRUE(*epoch->store == replacement);
  EXPECT_EQ(epoch->engine.top_k(5).seeds,
            QueryEngine(replacement).top_k(5).seeds);
  registry.shutdown();
}

TEST(StoreRegistry, FailedReloadKeepsThePreviousEpochServing) {
  const std::string path =
      save_snapshot(make_store(0.02), "eimm_reload_corrupt.sks");
  corrupt_payload_byte(path);

  StoreRegistry registry(make_shared_store(), ExecutorOptions{});
  const std::shared_ptr<ServingEpoch> before = registry.current();
  EXPECT_THROW(registry.reload_file(path), bin::FormatError);
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.reloads(), 0u);
  EXPECT_EQ(registry.failed_reloads(), 1u);
  EXPECT_EQ(registry.current(), before);

  // A missing file is an ordinary failure too, not a crash.
  EXPECT_THROW(registry.reload_file("/nonexistent/eimm_gone.sks"),
               CheckError);
  EXPECT_EQ(registry.failed_reloads(), 2u);

  QueryOptions q;
  q.k = 2;
  EXPECT_EQ(registry.current()->executor.submit(q).get().seeds,
            before->engine.top_k(2).seeds);
  registry.shutdown();
}

TEST(StoreRegistry, InjectedReloadFaultCountsAsFailedAndIsRecoverable) {
  fail::disarm_all();
  const std::string path =
      save_snapshot(make_store(0.02), "eimm_reload_fp.sks");
  StoreRegistry registry(make_shared_store(), ExecutorOptions{});

  fail::Spec spec;
  spec.mode = fail::Mode::kError;
  spec.arg = 100;
  spec.times = 1;
  fail::arm("serve.reload", spec);
  EXPECT_THROW(registry.reload_file(path), CheckError);
  EXPECT_EQ(registry.failed_reloads(), 1u);
  EXPECT_EQ(registry.generation(), 1u);

  // The site's cap is exhausted — the very next reload goes through.
  EXPECT_EQ(registry.reload_file(path)->generation, 2u);
  EXPECT_EQ(registry.reloads(), 1u);
  fail::disarm_all();
  registry.shutdown();
}

// --- kReload over the wire ---

class ReloadServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::disarm_all();
    store_ = std::make_unique<SketchStore>(make_store());
    snapshot_path_ = save_snapshot(*store_, "eimm_reload_server.sks");
    ServerOptions options;
    options.socket_path = ::testing::TempDir() + "/eimm_reload_test_" +
                          std::to_string(::testing::UnitTest::GetInstance()
                                             ->random_seed()) +
                          ".sock";
    options.snapshot_path = snapshot_path_;
    server_ = std::make_unique<SketchServer>(*store_, options);
    server_->start();
  }

  void TearDown() override {
    fail::disarm_all();
    if (server_) server_->stop();
  }

  std::unique_ptr<SketchStore> store_;
  std::string snapshot_path_;
  std::unique_ptr<SketchServer> server_;
};

TEST_F(ReloadServerFixture, ReloadVerbSwapsGenerations) {
  SketchClient client(server_->socket_path());
  EXPECT_EQ(client.info().generation, 1u);

  // Empty path → the server re-reads its configured snapshot.
  EXPECT_EQ(client.reload(), 2u);
  EXPECT_EQ(server_->generation(), 2u);
  EXPECT_EQ(client.info().generation, 2u);

  // Explicit path → that file becomes the new generation.
  const std::string other =
      save_snapshot(make_store(0.02), "eimm_reload_other.sks");
  EXPECT_EQ(client.reload(other), 3u);

  const SketchClient::ServerStats stats = client.stats();
  EXPECT_EQ(stats.generation, 3u);
  EXPECT_EQ(stats.reloads, 2u);
  EXPECT_EQ(stats.failed_reloads, 0u);

  // The new generation serves the new store's answers.
  const SketchStore other_store =
      SketchStore::load_file(other, SnapshotLoadOptions{});
  const QueryEngine expected(other_store);
  EXPECT_EQ(client.top_k(4).seeds, expected.top_k(4).seeds);
}

TEST_F(ReloadServerFixture, CorruptReloadTargetIsRejectedAndServiceLivesOn) {
  SketchClient client(server_->socket_path());
  const std::vector<VertexId> before = client.top_k(3).seeds;

  const std::string corrupt =
      save_snapshot(make_store(0.02), "eimm_reload_bad.sks");
  corrupt_payload_byte(corrupt);
  try {
    (void)client.reload(corrupt);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }

  const SketchClient::ServerStats stats = client.stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.failed_reloads, 1u);
  // Same connection, same answers — the old epoch never stopped.
  EXPECT_EQ(client.top_k(3).seeds, before);
}

TEST(ReloadServerStandalone, ReloadWithoutConfiguredSnapshotIsAnError) {
  const SketchStore store = make_store();
  ServerOptions options;
  options.socket_path = ::testing::TempDir() + "/eimm_reload_nopath.sock";
  SketchServer server(store, options);  // no snapshot_path configured
  server.start();
  SketchClient client(server.socket_path());
  EXPECT_THROW((void)client.reload(), CheckError);
  EXPECT_EQ(client.info().generation, 1u);
  server.stop();
}

}  // namespace
}  // namespace eimm
