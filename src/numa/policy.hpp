// Raw memory-policy syscalls (mbind), no libnuma dependency.
//
// The paper (§IV-B) interleaves the graph CSR arrays across NUMA nodes
// with numactl/mbind and keeps per-thread structures node-local. This
// wrapper issues the same mbind(2) calls directly; on single-node hosts
// or sandboxed kernels the calls are skipped or fail softly and the
// caller proceeds with default placement (first-touch).
#pragma once

#include <cstddef>

namespace eimm {

enum class MemPolicy {
  kDefault,     // first-touch (kernel default)
  kInterleave,  // round-robin pages across all online nodes
  kLocal,       // allocate on the faulting thread's node
};

/// Applies `policy` to [addr, addr+len). Returns true when the kernel
/// accepted the request; false when NUMA is absent, the syscall is
/// unavailable, or the kernel rejected it (caller falls back silently —
/// placement is a performance hint, never a correctness requirement).
bool apply_mempolicy(void* addr, std::size_t len, MemPolicy policy);

/// True when the running system exposes >1 NUMA node and mbind works.
bool numa_available();

}  // namespace eimm
