// fused_pipeline — end-to-end sampling+selection wall time of the three
// data-path variants, demonstrating the zero-copy hand-off:
//
//   flat          — shards=1: the legacy contiguous RRRPool path.
//   sharded-merge — the PR 3 pipeline reconstructed (staging arenas +
//                   full payload copy into the RRRPool at merge), then
//                   selection over the merged pool. merged_bytes > 0.
//   sharded-view  — the production path: staging arenas consumed IN
//                   PLACE through RRRPoolView. merged_bytes == 0 — the
//                   staged-bytes copy is gone.
//
// Every row reports the byte accounting (staged / mapped / merged), the
// workspace counter-layout allocation count (contract: 1 per run), and a
// seed bit-match flag against the flat reference; the binary exits
// non-zero if any variant's seeds deviate or the view path merges bytes.
// Emits a human table plus machine-readable BENCH_pipeline.json via
// io/json_log.
//
// Extra knobs on top of the common EIMM_* set:
//   EIMM_PIPELINE_WORKLOAD  workload to run (default com-DBLP)
//   EIMM_PIPELINE_SHARDS    shard count for the sharded rows (default
//                           max(4, detected NUMA domains))
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/imm.hpp"
#include "io/json_log.hpp"
#include "numa/topology.hpp"
#include "rrr/sharded.hpp"
#include "seedselect/engine.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace eimm;
using namespace eimm::bench;

namespace {

PipelineBenchResult row_from_run(const std::string& workload,
                                 const std::string& path, int shards,
                                 const ImmResult& run) {
  PipelineBenchResult row;
  row.workload = workload;
  row.path = path;
  row.shards = shards;
  row.threads = run.threads_used;
  row.total_seconds = run.breakdown.total_seconds;
  row.sampling_seconds = run.breakdown.sampling_seconds;
  row.selection_seconds = run.breakdown.selection_seconds;
  row.num_rrr_sets = run.num_rrr_sets;
  row.staged_bytes = run.staged_bytes;
  row.mapped_bytes = run.mapped_bytes;
  row.merged_bytes = run.merged_bytes;
  row.workspace_counter_allocs = run.counter_layout_allocations;
  return row;
}

}  // namespace

int main() {
  const BenchConfig config = load_config();
  print_banner("fused_pipeline — zero-copy sampling→selection data path",
               config);

  const std::string workload =
      env_string("EIMM_PIPELINE_WORKLOAD").value_or("com-DBLP");
  const int domains = numa_topology().num_nodes();
  const int shards = static_cast<int>(
      env_int("EIMM_PIPELINE_SHARDS", std::max(4, domains)));

  const DiffusionGraph graph =
      load_workload(config, workload, DiffusionModel::kIndependentCascade);
  ImmOptions options = imm_options(
      config, DiffusionModel::kIndependentCascade, config.max_threads);

  std::vector<PipelineBenchResult> rows;

  // --- flat reference: shards = 1, contiguous RRRPool end to end ---
  options.shards = 1;
  const ImmResult flat = run_efficient_imm(graph, options);
  rows.push_back(row_from_run(workload, "flat", 1, flat));

  // --- sharded-merge: the pre-view pipeline, reconstructed ---
  // Same θ as the flat run, staged through the sharded sampler and
  // copied into an RRRPool at merge, then one engine selection over the
  // merged image. This is the copy the view path deletes.
  {
    Timer total;
    ShardedConfig shard_config;
    shard_config.shards = shards;
    shard_config.model = options.model;
    shard_config.rng_seed = options.rng_seed;
    shard_config.batch_size = options.batch_size;
    ShardedSampler sampler(graph.reverse, shard_config);
    RRRPool merged(graph.num_vertices());
    Timer sampling;
    merged.resize(flat.num_rrr_sets);
    sampler.generate(merged, 0, flat.num_rrr_sets, nullptr);
    const double sampling_seconds = sampling.seconds();

    SelectionOptions sopt;
    sopt.k = options.k;
    const SelectionEngine engine;
    SelectionWorkspace workspace;
    Timer selection;
    const SelectionResult merged_selection = engine.select(
        SelectionKernel::kEfficient, merged, sopt, nullptr, &workspace);
    PipelineBenchResult row;
    row.workload = workload;
    row.path = "sharded-merge";
    row.shards = shards;
    row.threads = config.max_threads;
    row.selection_seconds = selection.seconds();
    row.total_seconds = total.seconds();
    row.sampling_seconds = sampling_seconds;
    row.num_rrr_sets = merged.size();
    row.staged_bytes = sampler.stats().staged_bytes;
    row.mapped_bytes = sampler.stats().mapped_bytes;
    row.merged_bytes = sampler.stats().merged_bytes;
    row.workspace_counter_allocs = workspace.counter_allocations();
    row.seeds_match_flat = merged_selection.seeds == flat.seeds;
    rows.push_back(row);
  }

  // --- sharded-view: the zero-copy production path ---
  options.shards = shards;
  const ImmResult view = run_efficient_imm(graph, options);
  {
    PipelineBenchResult row = row_from_run(workload, "sharded-view",
                                           shards, view);
    row.seeds_match_flat = view.seeds == flat.seeds;
    rows.push_back(row);
  }

  AsciiTable table({"Path", "Shards", "Total s", "Sample s", "Select s",
                    "Staged MB", "Merged MB", "Ctr allocs", "Seeds=flat"});
  for (const PipelineBenchResult& row : rows) {
    table.new_row()
        .add(row.path)
        .add(static_cast<std::uint64_t>(row.shards))
        .add(row.total_seconds, 3)
        .add(row.sampling_seconds, 3)
        .add(row.selection_seconds, 3)
        .add(static_cast<double>(row.staged_bytes) / 1e6, 2)
        .add(static_cast<double>(row.merged_bytes) / 1e6, 2)
        .add(row.workspace_counter_allocs)
        .add(row.seeds_match_flat ? "yes" : "NO");
  }
  table.set_title("Fused pipeline: " + workload + " (" +
                  std::to_string(domains) + " NUMA domain(s), " +
                  std::to_string(flat.num_rrr_sets) + " RRR sets)");
  table.print(std::cout);

  const std::string path = write_pipeline_bench_json_file(
      bench_json_path("BENCH_pipeline.json"), domains, rows);
  std::printf("\nresults: %s\n", path.c_str());

  bool ok = true;
  for (const PipelineBenchResult& row : rows) {
    ok = ok && row.seeds_match_flat;
    // Every row runs the efficient kernel through a workspace: exactly
    // one layout allocation (0 would mean the workspace silently
    // stopped being used — a regression, not a win).
    ok = ok && row.workspace_counter_allocs == 1;
    if (row.path == "sharded-view") ok = ok && row.merged_bytes == 0;
    if (row.path == "sharded-merge") ok = ok && row.merged_bytes > 0;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "ERROR: pipeline contract violated (seed mismatch or "
                 "unexpected merge bytes)\n");
    return 1;
  }
  return 0;
}
