#include "common.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <optional>

#include "numa/topology.hpp"
#include "support/env.hpp"

namespace eimm::bench {

BenchConfig load_config() {
  BenchConfig config;
  config.scale = env_double("EIMM_SCALE", config.scale);
  config.max_threads = static_cast<int>(env_int("EIMM_THREADS", 0));
  if (config.max_threads <= 0) config.max_threads = omp_get_max_threads();
  config.reps = std::max(1, static_cast<int>(env_int("EIMM_BENCH_REPS", 1)));
  config.k = static_cast<std::size_t>(env_int("EIMM_K", 50));
  config.epsilon = env_double("EIMM_EPSILON", 0.5);
  config.max_rrr_sets = static_cast<std::uint64_t>(
      env_int("EIMM_MAX_RRR", static_cast<std::int64_t>(config.max_rrr_sets)));
  return config;
}

std::vector<int> thread_sweep(int max) {
  std::vector<int> sweep;
  for (int t = 1; t <= max; t *= 2) sweep.push_back(t);
  if (sweep.empty() || sweep.back() != max) sweep.push_back(max);
  return sweep;
}

double best_seconds(int reps, const std::function<double()>& fn) {
  double best = fn();
  for (int r = 1; r < reps; ++r) best = std::min(best, fn());
  return best;
}

ThroughputComparison compare_throughput(const std::string& label,
                                        std::uint64_t units, int reps,
                                        const std::function<double()>& baseline,
                                        const std::function<double()>& variant) {
  ThroughputComparison cmp;
  cmp.label = label;
  cmp.units = units;
  baseline();  // warmup: first touch of the workload pages / arena growth
  variant();
  cmp.baseline_seconds = best_seconds(reps, baseline);
  cmp.variant_seconds = best_seconds(reps, variant);
  return cmp;
}

ImmOptions imm_options(const BenchConfig& config, DiffusionModel model,
                       int threads) {
  ImmOptions opt;
  opt.k = config.k;
  opt.epsilon = config.epsilon;
  opt.model = model;
  opt.threads = threads;
  opt.rng_seed = config.rng_seed;
  opt.max_rrr_sets = config.max_rrr_sets;
  return opt;
}

DiffusionGraph load_workload(const BenchConfig& config,
                             const std::string& name, DiffusionModel model) {
  return make_workload_with_weights(name, model, config.scale,
                                    config.rng_seed);
}

std::string bench_json_path(const std::string& filename) {
  // An empty EIMM_BENCH_JSON_DIR means unset, not the filesystem root.
  const std::optional<std::string> dir = env_string("EIMM_BENCH_JSON_DIR");
  if (!dir.has_value() || dir->empty()) return "./" + filename;
  return *dir + "/" + filename;
}

void print_banner(const std::string& title, const BenchConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "config: scale=%.2f threads<=%d reps=%d k=%zu eps=%.2f max_rrr=%llu\n",
      config.scale, config.max_threads, config.reps, config.k, config.epsilon,
      static_cast<unsigned long long>(config.max_rrr_sets));
  std::printf("host: %d hardware threads, %d NUMA node(s)\n\n",
              omp_get_num_procs(), numa_topology().num_nodes());
}

}  // namespace eimm::bench
