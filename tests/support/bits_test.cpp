#include "support/bits.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eimm {
namespace {

TEST(Bits, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
  EXPECT_EQ(words_for_bits(129), 3u);
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(1), 1);
  EXPECT_EQ(popcount64(0xFF), 8);
  EXPECT_EQ(popcount64(~std::uint64_t{0}), 64);
}

TEST(Bits, Ctz) {
  EXPECT_EQ(ctz64(1), 0);
  EXPECT_EQ(ctz64(2), 1);
  EXPECT_EQ(ctz64(std::uint64_t{1} << 63), 63);
  EXPECT_EQ(ctz64(0b1010000), 4);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 40));
  EXPECT_FALSE(is_pow2((std::uint64_t{1} << 40) + 1));
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(1024), 10u);
}

TEST(Bits, ForEachSetBitCollectsAscending) {
  std::vector<std::size_t> seen;
  for_each_set_bit(0b1011, 0, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Bits, ForEachSetBitAppliesBase) {
  std::vector<std::size_t> seen;
  for_each_set_bit(0b101, 64, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{64, 66}));
}

TEST(Bits, ForEachSetBitEmptyWord) {
  int calls = 0;
  for_each_set_bit(0, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Bits, ForEachSetBitFullWord) {
  int calls = 0;
  for_each_set_bit(~std::uint64_t{0}, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 64);
}

}  // namespace
}  // namespace eimm
