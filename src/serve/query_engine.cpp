#include "serve/query_engine.hpp"

#include <omp.h>

#include <algorithm>
#include <exception>
#include <numeric>

#include "runtime/thread_info.hpp"
#include "runtime/work_queue.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

/// All argument checks for one query, shared by run_query and
/// run_batch's serial pre-validation (so a bad batch fails fast and
/// deterministically on its lowest invalid index).
void validate_query(const SketchStore& store, const QueryOptions& q) {
  EIMM_CHECK(q.k > 0, "query k must be positive");
  EIMM_CHECK(q.k <= store.k_max(),
             "query k exceeds the store's build-time cap");
  const VertexId n = store.num_vertices();
  for (const VertexId v : q.candidates) {
    EIMM_CHECK(v < n, "candidate vertex out of range");
  }
  for (const VertexId v : q.forbidden) {
    EIMM_CHECK(v < n, "forbidden vertex out of range");
  }
}

/// Compiles the whitelist/blacklist into a per-vertex mask; empty when
/// the query is unconstrained (every vertex eligible). Ids must already
/// be validated.
std::vector<std::uint8_t> build_mask(const SketchStore& store,
                                     const QueryOptions& q) {
  if (!q.constrained()) return {};
  const VertexId n = store.num_vertices();
  std::vector<std::uint8_t> mask;
  if (q.candidates.empty()) {
    mask.assign(n, 1);
  } else {
    mask.assign(n, 0);
    for (const VertexId v : q.candidates) mask[v] = 1;
  }
  for (const VertexId v : q.forbidden) mask[v] = 0;
  return mask;
}

}  // namespace

QueryResult run_query(const SketchStore& store, const QueryOptions& options) {
  const VertexId n = store.num_vertices();
  const std::uint64_t num_sketches = store.num_sketches();
  validate_query(store, options);

  QueryResult result;
  result.total_sketches = num_sketches;

  const std::vector<std::uint8_t> mask = build_mask(store, options);

  // Per-query scratch: the Algorithm 2 vertex-occurrence counters (seeded
  // from the inverted-index degrees — the initial counter build is free)
  // and the alive flags over sketches.
  std::vector<std::uint64_t> counters(n);
  for (VertexId v = 0; v < n; ++v) counters[v] = store.degree(v);
  std::vector<std::uint8_t> alive(num_sketches, 1);

  // Whitelisted queries arg-max over the (sorted) candidate list instead
  // of all |V| vertices — a 3-candidate query should cost 3 counter
  // reads per round, not |V|. Ascending order + strict '>' preserves the
  // seedselect lowest-id tie-break.
  std::vector<VertexId> scan_list;
  if (!options.candidates.empty()) {
    scan_list = options.candidates;
    std::sort(scan_list.begin(), scan_list.end());
  }

  const std::size_t rounds =
      std::min<std::size_t>(options.k, static_cast<std::size_t>(n));
  for (std::size_t round = 0; round < rounds; ++round) {
    // Serial arg-max with the seedselect tie-break (lowest id wins):
    // queries parallelize across each other, not within themselves.
    VertexId best_v = 0;
    std::uint64_t best_c = 0;
    auto consider = [&](VertexId v) {
      if (!mask.empty() && mask[v] == 0) return;
      if (counters[v] > best_c) {
        best_c = counters[v];
        best_v = v;
      }
    };
    if (!scan_list.empty()) {
      for (const VertexId v : scan_list) consider(v);
    } else {
      for (VertexId v = 0; v < n; ++v) consider(v);
    }
    if (best_c == 0) break;  // no eligible vertex covers an alive sketch

    result.seeds.push_back(best_v);
    result.marginal_coverage.push_back(best_c);
    result.covered_sketches += best_c;

    // Retire every alive sketch covering the pick, via the inverted
    // index — O(covered sketches), never a scan over all θ.
    for (const SketchId s : store.covering(best_v)) {
      if (alive[s] == 0) continue;
      alive[s] = 0;
      for (const VertexId u : store.sketch(s)) --counters[u];
    }
  }

  result.estimated_spread =
      static_cast<double>(n) * result.coverage_fraction();
  return result;
}

QueryResult QueryEngine::top_k(std::size_t k) const {
  EIMM_CHECK(k > 0, "query k must be positive");
  EIMM_CHECK(k <= store_->k_max(),
             "query k exceeds the store's build-time cap");
  const auto& seeds = store_->default_seeds();
  const auto& marginals = store_->default_marginals();
  const std::size_t count = std::min(k, seeds.size());

  QueryResult result;
  result.total_sketches = store_->num_sketches();
  result.seeds.assign(seeds.begin(), seeds.begin() + count);
  result.marginal_coverage.assign(marginals.begin(),
                                  marginals.begin() + count);
  result.covered_sketches = std::accumulate(
      result.marginal_coverage.begin(), result.marginal_coverage.end(),
      std::uint64_t{0});
  result.estimated_spread =
      static_cast<double>(store_->num_vertices()) *
      result.coverage_fraction();
  return result;
}

MarginalGainResult QueryEngine::evaluate(
    const std::vector<VertexId>& seeds) const {
  const VertexId n = store_->num_vertices();
  MarginalGainResult result;
  result.total_sketches = store_->num_sketches();
  std::vector<std::uint8_t> covered(store_->num_sketches(), 0);
  for (const VertexId v : seeds) {
    EIMM_CHECK(v < n, "seed vertex out of range");
    std::uint64_t gain = 0;
    for (const SketchId s : store_->covering(v)) {
      if (covered[s] == 0) {
        covered[s] = 1;
        ++gain;
      }
    }
    result.incremental_coverage.push_back(gain);
    result.covered_sketches += gain;
  }
  result.estimated_spread =
      static_cast<double>(n) * result.coverage_fraction();
  return result;
}

std::vector<QueryResult> QueryEngine::run_batch(
    const std::vector<QueryOptions>& queries, int threads) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;

  // Serial pre-validation: a malformed batch fails immediately on its
  // lowest invalid index, before any kernel work is spent.
  for (const QueryOptions& q : queries) validate_query(*store_, q);

  ThreadCountScope thread_scope(threads);
  const auto workers = static_cast<std::size_t>(omp_get_max_threads());
  // Batch size 1: queries are coarse-grained jobs, and constrained ones
  // cost far more than cached top-k reads — stealing evens that out.
  JobPool jobs(queries.size(), 1, workers);
  // Arguments were validated above, but an exception may still not cross
  // an OpenMP region boundary (that would std::terminate) — so any
  // unexpected failure (e.g. scratch allocation) is captured, remaining
  // queries are skipped (threads still drain the JobPool), and the
  // lowest captured index's error is rethrown.
  std::exception_ptr first_error = nullptr;
  std::size_t first_error_index = queries.size();
  std::atomic<bool> failed{false};
#pragma omp parallel
  {
    const auto wid = static_cast<std::size_t>(omp_get_thread_num());
    for (JobBatch batch = jobs.next(wid); !batch.empty();
         batch = jobs.next(wid)) {
      for (std::size_t i = batch.begin; i < batch.end; ++i) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
          results[i] = answer(queries[i]);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
#pragma omp critical(eimm_run_batch_error)
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return results;
}

}  // namespace eimm
