// QueryEngine — answers many independent seed-selection queries against
// one frozen SketchStore, without regenerating RRR state.
//
// Three query families:
//   top_k      — unconstrained top-k; O(k) prefix read of the greedy
//                sequence precomputed at build time.
//   select     — the live greedy kernel: plain top-k, candidate
//                whitelists, forbidden-node blacklists. Uses the store's
//                inverted index so each pick touches only the sketches it
//                covers (no scan over all θ sets), with the same
//                lowest-id tie-break as seedselect — an unconstrained
//                query reproduces Engine::kEfficient's seed set exactly.
//   evaluate   — marginal-gain/coverage evaluation of a caller-supplied
//                seed set (what-if analysis for externally chosen seeds).
//
// Every query allocates its own scratch and only reads the store, so the
// engine is thread-safe by construction; run_batch drains a query list
// through the runtime/ stealing JobPool across OpenMP threads.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "serve/sketch_store.hpp"

namespace eimm {

struct QueryOptions {
  /// Number of seeds requested; must be in (0, store.k_max()].
  std::size_t k = 1;
  /// Whitelist: when non-empty, seeds come only from these vertices.
  std::vector<VertexId> candidates;
  /// Blacklist: these vertices are never picked (wins over candidates).
  std::vector<VertexId> forbidden;

  [[nodiscard]] bool constrained() const noexcept {
    return !candidates.empty() || !forbidden.empty();
  }
};

struct QueryResult {
  std::vector<VertexId> seeds;
  /// Counter value of each seed at pick time (its marginal coverage).
  std::vector<std::uint64_t> marginal_coverage;
  std::uint64_t covered_sketches = 0;
  std::uint64_t total_sketches = 0;
  /// n · F(S), the influence-spread estimate over the frozen pool.
  double estimated_spread = 0.0;

  [[nodiscard]] double coverage_fraction() const noexcept {
    return total_sketches ? static_cast<double>(covered_sketches) /
                                static_cast<double>(total_sketches)
                          : 0.0;
  }
};

/// Coverage report for a caller-supplied seed set.
struct MarginalGainResult {
  /// Sketches newly covered by each seed, in the order given (a seed
  /// adding nothing beyond its predecessors contributes 0).
  std::vector<std::uint64_t> incremental_coverage;
  std::uint64_t covered_sketches = 0;
  std::uint64_t total_sketches = 0;
  double estimated_spread = 0.0;

  [[nodiscard]] double coverage_fraction() const noexcept {
    return total_sketches ? static_cast<double>(covered_sketches) /
                                static_cast<double>(total_sketches)
                          : 0.0;
  }
};

/// The live greedy kernel over a store (shared by QueryEngine::select and
/// the build-time default-sequence computation). Pure function of
/// (store, options); deterministic and thread-safe.
QueryResult run_query(const SketchStore& store, const QueryOptions& options);

class QueryEngine {
 public:
  /// Non-owning: the store must outlive the engine. Settles any deferred
  /// v4 snapshot checksums (lazy mmap loads) before the first query can
  /// run — constructing an engine over corrupt bytes throws
  /// bin::FormatError instead of serving them.
  explicit QueryEngine(const SketchStore& store) : store_(&store) {
    store.verify_checksums();
  }

  /// Unconstrained top-k from the precomputed greedy sequence.
  [[nodiscard]] QueryResult top_k(std::size_t k) const;

  /// The live kernel (handles whitelists/blacklists).
  [[nodiscard]] QueryResult select(const QueryOptions& options) const {
    return run_query(*store_, options);
  }

  /// Fast path for unconstrained queries, kernel otherwise.
  [[nodiscard]] QueryResult answer(const QueryOptions& options) const {
    return options.constrained() ? select(options) : top_k(options.k);
  }

  /// Coverage/marginal-gain evaluation of an arbitrary seed set.
  [[nodiscard]] MarginalGainResult evaluate(
      const std::vector<VertexId>& seeds) const;

  /// Answers every query concurrently (stealing JobPool over `threads`
  /// OpenMP threads; 0 = library default). results[i] corresponds to
  /// queries[i] and is identical to answer(queries[i]).
  [[nodiscard]] std::vector<QueryResult> run_batch(
      const std::vector<QueryOptions>& queries, int threads = 0) const;

  [[nodiscard]] const SketchStore& store() const noexcept { return *store_; }

 private:
  const SketchStore* store_;
};

}  // namespace eimm
