// Fundamental graph types. Vertex ids are 32-bit (the paper's largest
// graph, twitter7, has 41.6M vertices — well within range); edge ids are
// 64-bit (twitter7 has 1.47B edges).
#pragma once

#include <cstdint>

namespace eimm {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// A directed edge (src -> dst) with an optional diffusion weight.
/// For the IC model the weight is an activation probability p(u,v) ∈ [0,1];
/// for LT it is the in-edge weight w(u,v) with Σ_u w(u,v) ≤ 1.
struct WeightedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

}  // namespace eimm
