// Statistical equivalence of the NUMA-sharded sampling pipeline: on the
// registry workloads, the seeds a sharded build selects must achieve
// Monte-Carlo spread within tolerance of the unsharded
// Engine::kEfficient seeds — under both diffusion models. (The sharded
// pipeline actually bit-matches the unsharded pool, so the ratio here is
// exactly 1.0; the tolerance is the contract future fast paths are held
// to when they trade pool identity for speed.)
#include <gtest/gtest.h>

#include "statcheck.hpp"

namespace eimm {
namespace {

using statcheck::compare_sharded_quality;
using statcheck::compare_spread;
using statcheck::statcheck_imm_options;
using statcheck::statcheck_workload;

constexpr double kSpreadTolerance = 0.05;

/// Guards the harness against passing vacuously: a seed set always
/// activates at least itself, so a sane estimator reports spread >= |S|.
void expect_meaningful(const statcheck::SpreadComparison& cmp) {
  EXPECT_GE(cmp.reference_spread,
            static_cast<double>(cmp.reference_seeds.size()))
      << cmp.describe();
  EXPECT_GE(cmp.candidate_spread,
            static_cast<double>(cmp.candidate_seeds.size()))
      << cmp.describe();
}

TEST(StatisticalEquivalence, ShardedMatchesUnshardedSpreadIC) {
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kIndependentCascade);
  const auto cmp = compare_sharded_quality(
      g, statcheck_imm_options(DiffusionModel::kIndependentCascade), 3);
  EXPECT_EQ(cmp.candidate_seeds.size(), cmp.reference_seeds.size());
  expect_meaningful(cmp);
  EXPECT_TRUE(cmp.within(kSpreadTolerance)) << cmp.describe();
}

TEST(StatisticalEquivalence, ShardedMatchesUnshardedSpreadLT) {
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kLinearThreshold);
  const auto cmp = compare_sharded_quality(
      g, statcheck_imm_options(DiffusionModel::kLinearThreshold), 3);
  EXPECT_EQ(cmp.candidate_seeds.size(), cmp.reference_seeds.size());
  expect_meaningful(cmp);
  EXPECT_TRUE(cmp.within(kSpreadTolerance)) << cmp.describe();
}

TEST(StatisticalEquivalence, ManyShardsStillWithinToleranceIC) {
  // Shard count far above the thread and domain count of any CI host.
  const DiffusionGraph g = statcheck_workload(
      "com-YouTube", DiffusionModel::kIndependentCascade);
  const auto cmp = compare_sharded_quality(
      g, statcheck_imm_options(DiffusionModel::kIndependentCascade, 6), 16);
  expect_meaningful(cmp);
  EXPECT_TRUE(cmp.within(kSpreadTolerance)) << cmp.describe();
}

// The harness itself must be able to DETECT degradation, or the
// equivalence assertions above are vacuous: dropping the last greedy
// seed can only lose spread, and losing the FIRST (highest-marginal-
// gain) seed must never score better than the full set by more than MC
// noise.
TEST(StatisticalEquivalence, HarnessDetectsDegradedSeedSets) {
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kIndependentCascade);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade);
  opt.shards = 1;
  const ImmResult full = run_imm(g, opt, Engine::kEfficient);
  ASSERT_GE(full.seeds.size(), 2u);

  std::vector<VertexId> truncated(full.seeds.begin(),
                                  full.seeds.end() - 1);
  const auto cmp =
      compare_spread(g, opt.model, full.seeds, truncated, 2000);
  EXPECT_GE(cmp.reference_spread, static_cast<double>(full.seeds.size()))
      << cmp.describe();
  EXPECT_LE(cmp.candidate_spread, cmp.reference_spread * 1.02)
      << cmp.describe();

  std::vector<VertexId> headless(full.seeds.begin() + 1, full.seeds.end());
  const auto cmp_head =
      compare_spread(g, opt.model, full.seeds, headless, 2000);
  EXPECT_LE(cmp_head.candidate_spread, cmp_head.reference_spread * 1.02)
      << cmp_head.describe();
}

// Identical seed sets must compare at ratio exactly 1.0 — the estimator
// is deterministic in (seeds, samples, seed), so the harness never
// flakes on its own noise floor.
TEST(StatisticalEquivalence, IdenticalSeedSetsRatioIsOne) {
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 4);
  opt.shards = 1;
  const ImmResult run = run_imm(g, opt, Engine::kEfficient);
  const auto cmp = compare_spread(g, opt.model, run.seeds, run.seeds, 500);
  EXPECT_GT(cmp.reference_spread, 0.0) << cmp.describe();
  EXPECT_DOUBLE_EQ(cmp.ratio(), 1.0) << cmp.describe();
  EXPECT_TRUE(cmp.within(0.0));
}

}  // namespace
}  // namespace eimm
