// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) over raw bytes.
//
// This is the checksum behind the EIMMSKS v4 per-section integrity table:
// the save path stamps each section's payload CRC into the section-table
// entry, and the loaders recompute it to catch torn writes and bit rot
// before a corrupted sketch is ever served. CRC32C is chosen over plain
// CRC32 for its better Hamming-distance profile at these section sizes
// and so snapshots stay compatible with hardware-accelerated verifiers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace eimm {

/// CRC32C of `bytes` bytes at `data`. Incremental use: feed the previous
/// return value back as `seed` — crc32c(b, n2, crc32c(a, n1)) equals the
/// CRC of the concatenation. The empty input under the default seed is 0;
/// the standard check value crc32c("123456789", 9) is 0xE3069283.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t bytes,
                                   std::uint32_t seed = 0) noexcept;

}  // namespace eimm
