#include "support/crc32c.hpp"

#include <cstring>

namespace eimm {
namespace {

// Slice-by-8: eight 256-entry tables so the hot loop folds 8 input bytes
// per iteration with independent lookups. Tables are computed at compile
// time from the reflected Castagnoli polynomial.
struct Crc32cTables {
  std::uint32_t t[8][256];
};

constexpr Crc32cTables make_tables() noexcept {
  Crc32cTables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    tb.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xFFu];
    }
  }
  return tb;
}

constexpr Crc32cTables kTables = make_tables();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = kTables.t;
  std::uint32_t crc = ~seed;
  while (bytes >= 8) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    bytes -= 8;
  }
  while (bytes-- != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace eimm
