// Strongly-connected components via iterative Tarjan.
//
// Section III of the paper attributes the dense-RRR-set behaviour to the
// web-graph "bow-tie" structure (Broder et al.): one giant SCC means a
// single reverse BFS can reach most of the graph. Table 1's coverage
// characterization and the workload generators use this module to verify
// the synthetic analogues land in the intended SCC regime.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace eimm {

struct SccResult {
  /// Component id per vertex, in [0, num_components). Ids are assigned in
  /// reverse topological order of the condensation (Tarjan property).
  std::vector<VertexId> component;
  VertexId num_components = 0;

  /// Size of each component.
  [[nodiscard]] std::vector<VertexId> component_sizes() const;
  /// Number of vertices in the largest component.
  [[nodiscard]] VertexId largest_component_size() const;
};

/// Computes SCCs of `g` (treating stored orientation as directed edges).
/// Iterative — safe on multi-million-vertex graphs.
SccResult strongly_connected_components(const CSRGraph& g);

}  // namespace eimm
