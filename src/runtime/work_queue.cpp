#include "runtime/work_queue.hpp"

#include "runtime/partition.hpp"
#include "support/macros.hpp"

namespace eimm {

JobPool::JobPool(std::size_t total_jobs, std::size_t batch_size,
                 std::size_t num_workers) {
  EIMM_CHECK(batch_size > 0, "batch size must be positive");
  EIMM_CHECK(num_workers > 0, "need at least one worker");
  queues_ = std::vector<CachePadded<Queue>>(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    const auto [begin, end] = block_range(total_jobs, num_workers, w);
    auto& q = queues_[w].value;
    // Enqueue in reverse so the owner pops batches in ascending index
    // order from the back (LIFO for the owner = FIFO over the region).
    std::size_t b = end;
    while (b > begin) {
      const std::size_t lo = b > begin + batch_size ? b - batch_size : begin;
      q.batches.push_back({lo, b});
      b = lo;
      ++total_batches_;
    }
  }
}

JobBatch JobPool::pop_own(std::size_t worker) {
  auto& q = queues_[worker].value;
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.batches.empty()) return {};
  const JobBatch batch = q.batches.back();
  q.batches.pop_back();
  return batch;
}

JobBatch JobPool::steal(std::size_t thief) {
  // Pick the victim with the most remaining batches (sampled without
  // locks; the subsequent locked pop re-validates).
  const std::size_t n = queues_.size();
  std::size_t victim = n;
  std::size_t best_size = 0;
  for (std::size_t w = 0; w < n; ++w) {
    if (w == thief) continue;
    const std::size_t size = queues_[w].value.batches.size();
    if (size > best_size) {
      best_size = size;
      victim = w;
    }
  }
  if (victim == n) return {};
  auto& q = queues_[victim].value;
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.batches.empty()) return {};
  // Steal from the FRONT (the victim's coldest region) to minimize
  // interference with the owner's locality.
  const JobBatch batch = q.batches.front();
  q.batches.erase(q.batches.begin());
  steals_.fetch_add(1, std::memory_order_relaxed);
  return batch;
}

JobBatch JobPool::next(std::size_t worker) {
  EIMM_CHECK(worker < queues_.size(), "worker id out of range");
  JobBatch batch = pop_own(worker);
  if (!batch.empty()) return batch;
  // Keep trying victims until every queue observed empty.
  for (;;) {
    batch = steal(worker);
    if (!batch.empty()) return batch;
    bool all_empty = true;
    for (const auto& q : queues_) {
      if (!q.value.batches.empty()) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) return {};
  }
}

}  // namespace eimm
