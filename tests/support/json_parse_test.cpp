#include "support/json_parse.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/json.hpp"
#include "support/macros.hpp"

namespace eimm {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerant) {
  const JsonValue v = parse_json("  {\n\t\"a\" :  1 ,\r\n \"b\": [ ] }  ");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
  EXPECT_TRUE(v.at("b").as_array().empty());
}

TEST(JsonParse, NestedStructures) {
  const JsonValue v = parse_json(
      R"({"outer": {"inner": [1, 2, {"deep": true}]}, "x": null})");
  const JsonArray& inner = v.at("outer").at("inner").as_array();
  ASSERT_EQ(inner.size(), 3u);
  EXPECT_DOUBLE_EQ(inner[1].as_number(), 2.0);
  EXPECT_TRUE(inner[2].at("deep").as_bool());
  EXPECT_TRUE(v.at("x").is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse_json(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse_json(R"("line\nbreak")").as_string(), "line\nbreak");
  EXPECT_EQ(parse_json(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
}

TEST(JsonParse, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"unterminated",
        "1 2", "{} []", "nul", "[1,,2]", "{\"a\":1,}"}) {
    EXPECT_THROW(parse_json(bad), CheckError) << bad;
  }
}

TEST(JsonParse, TypeMismatchesThrow) {
  const JsonValue v = parse_json(R"({"n": 1})");
  EXPECT_THROW((void)v.at("n").as_string(), CheckError);
  EXPECT_THROW((void)v.at("n").as_array(), CheckError);
  EXPECT_THROW((void)v.at("missing"), CheckError);
  EXPECT_THROW((void)parse_json("[]").at("x"), CheckError);
}

TEST(JsonParse, HasChecksMembership) {
  const JsonValue v = parse_json(R"({"present": 0})");
  EXPECT_TRUE(v.has("present"));
  EXPECT_FALSE(v.has("absent"));
  EXPECT_FALSE(parse_json("[1]").has("x"));
}

TEST(JsonParse, RoundTripWithWriter) {
  // Whatever JsonWriter emits, parse_json must read back.
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("Input", "com-Amazon")
      .kv("Total", 0.97)
      .kv("NumThreads", std::int64_t{8})
      .kv("Capped", false);
  w.key("Seeds").begin_array();
  w.value(std::uint64_t{5}).value(std::uint64_t{17});
  w.end_array().end_object();

  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.at("Input").as_string(), "com-Amazon");
  EXPECT_DOUBLE_EQ(v.at("Total").as_number(), 0.97);
  EXPECT_DOUBLE_EQ(v.at("NumThreads").as_number(), 8.0);
  EXPECT_FALSE(v.at("Capped").as_bool());
  ASSERT_EQ(v.at("Seeds").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("Seeds").as_array()[1].as_number(), 17.0);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_TRUE(parse_json("[]").as_array().empty());
}

TEST(JsonParse, MalformedNumbersThrow) {
  for (const char* bad : {"1e", "1e+", "--1", "1.2.3", "+5", "-",
                          "0x10", "1e99e9", "nan", "inf"}) {
    EXPECT_THROW(parse_json(bad), CheckError) << bad;
  }
}

TEST(JsonParse, NumberOverflowThrows) {
  // from_chars reports out_of_range for doubles beyond DBL_MAX; a log
  // with a corrupt counter must fail loudly, not round-trip as inf.
  EXPECT_THROW(parse_json("1e999"), CheckError);
  EXPECT_THROW(parse_json("-1e999"), CheckError);
  EXPECT_THROW(parse_json("[1, 1e999]"), CheckError);
}

TEST(JsonParse, LargeMagnitudesWithinRangeParse) {
  EXPECT_DOUBLE_EQ(parse_json("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(parse_json("-1e308").as_number(), -1e308);
  EXPECT_DOUBLE_EQ(parse_json("9007199254740993").as_number(),
                   9007199254740993.0);  // 2^53+1: stored at double precision
}

TEST(JsonParse, MalformedEscapesAndStringsThrow) {
  for (const char* bad : {R"("\q")", R"("\u12")", R"("\uZZZZ")",
                          R"("\u00G0")", R"("\)", R"({"a" 1})",
                          R"(["x" "y"])"}) {
    EXPECT_THROW(parse_json(bad), CheckError) << bad;
  }
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  // ASCII and the three multi-byte UTF-8 widths reachable from the BMP.
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("\u00e9")").as_string(), "\xC3\xA9");    // \u00e9
  EXPECT_EQ(parse_json(R"("\u0100")").as_string(), "\xC4\x80");    // \u0100
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xE2\x82\xAC");  // \u20ac
  EXPECT_EQ(parse_json(R"("\ufffd")").as_string(), "\xEF\xBF\xBD");
  // Upper- and lower-case hex digits are equivalent.
  EXPECT_EQ(parse_json(R"("\u20AC")").as_string(),
            parse_json(R"("\u20ac")").as_string());
  // Escaped NUL must survive as an embedded byte, not truncate.
  const std::string nul = parse_json(R"("a\u0000b")").as_string();
  ASSERT_EQ(nul.size(), 3u);
  EXPECT_EQ(nul[1], '\0');
  // Mixed literal text and escapes.
  EXPECT_EQ(parse_json(R"("caf\u00e9!")").as_string(), "caf\xC3\xA9!");
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  // Astral-plane code points arrive as UTF-16 surrogate pairs.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");  // U+1F600
  EXPECT_EQ(parse_json(R"("\ud800\udc00")").as_string(),
            "\xF0\x90\x80\x80");  // U+10000, lowest astral code point
  EXPECT_EQ(parse_json(R"("\udbff\udfff")").as_string(),
            "\xF4\x8F\xBF\xBF");  // U+10FFFF, highest code point
  EXPECT_EQ(parse_json(R"("x\ud83d\ude00y")").as_string(),
            "x\xF0\x9F\x98\x80y");
}

TEST(JsonParse, MalformedSurrogatesThrow) {
  for (const char* bad : {
           R"("\uD800")",         // lone high surrogate at end of string
           R"("\uD800x")",        // high surrogate followed by literal
           R"("\uD83D\n")",       // high surrogate followed by other escape
           R"("\uD83D\u0041")",  // high surrogate + non-surrogate escape
           R"("\uD83D\uD83D")",   // high surrogate + second high surrogate
           R"("\uDC00")",         // lone low surrogate
           R"("\uDE00\uD83D")",   // pair in the wrong order
           R"("\uD83D\u")",       // truncated second escape
           R"("\uD83D\uDE0")",    // second escape one digit short
       }) {
    EXPECT_THROW(parse_json(bad), CheckError) << bad;
  }
}

TEST(JsonParse, TruncatedDocumentsThrow) {
  // Every proper prefix of a valid document must throw, never return a
  // partial value (the artifact parser reads whole files at once).
  const std::string doc = R"({"Algorithm":"EfficientIMM","Seeds":[1,2]})";
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW(parse_json(doc.substr(0, len)), CheckError) << len;
  }
  EXPECT_NO_THROW(parse_json(doc));
}

TEST(JsonParse, DeeplyNestedArrays) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += '[';
  text += '1';
  for (int i = 0; i < 50; ++i) text += ']';
  JsonValue v = parse_json(text);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(v.is_array());
    JsonValue inner = v.as_array()[0];  // full copy before reassigning
    v = std::move(inner);
  }
  EXPECT_DOUBLE_EQ(v.as_number(), 1.0);
}

}  // namespace
}  // namespace eimm
