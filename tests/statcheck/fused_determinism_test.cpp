// Statistical + determinism contract of the fused 64-wide sampler
// (rrr/fused.hpp), at the pipeline level:
//   * fused IC output is STATISTICALLY equivalent to the scalar path —
//     the seeds it selects must match the scalar seeds' Monte-Carlo
//     spread within the harness tolerance, across shard counts and pool
//     compression backings (the bit-match check's replacement, see the
//     statcheck.hpp preamble — this is exactly the "future optimizations
//     may trade exact pool identity for speed" case it was built for);
//   * fused LT output is BITWISE equivalent to scalar: each lane replays
//     the scalar walk draw-for-draw from the same per-slot stream, so
//     the whole build must produce the identical pool image;
//   * fused runs are deterministic: same (workload, seed, options) →
//     bit-identical pool images across repeated runs and shard counts
//     (a 64-slot block is never split across shards);
//   * lane-window edge cases survive the full pipeline: workloads with
//     fewer vertices than lanes, set counts that end mid-block, and
//     more shards than blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "rrr/fused.hpp"
#include "rrr/sharded.hpp"
#include "statcheck.hpp"
#include "test_util.hpp"

namespace eimm {
namespace {

using statcheck::compare_spread;
using statcheck::statcheck_imm_options;
using statcheck::statcheck_workload;

constexpr double kSpreadTolerance = 0.05;

TEST(FusedStatistical, FusedSeedsMatchScalarSpreadAcrossShardsAndBackings) {
  // The headline contract: for IC and LT, across shard counts and pool
  // compression backings, seeds from a fused build must be as good as
  // the scalar build's seeds under forward Monte-Carlo estimation.
  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    const DiffusionGraph g = statcheck_workload(
        model == DiffusionModel::kIndependentCascade ? "com-YouTube"
                                                     : "com-DBLP",
        model, 0.03);
    auto opt = statcheck_imm_options(model, 6);
    opt.fused_sampling = FusedSampling::kOff;
    const ImmResult scalar = run_imm(g, opt, Engine::kEfficient);

    opt.fused_sampling = FusedSampling::kOn;
    for (const int shards : {1, 3}) {
      for (const PoolCompression compress :
           {PoolCompression::kNone, PoolCompression::kVarint}) {
        opt.shards = shards;
        opt.pool_compress = compress;
        const ImmResult fused = run_imm(g, opt, Engine::kEfficient);
        EXPECT_TRUE(fused.fused_sampling_used);
        const auto cmp =
            compare_spread(g, model, scalar.seeds, fused.seeds);
        EXPECT_TRUE(cmp.within(kSpreadTolerance))
            << to_string(model) << " shards=" << shards
            << " compress=" << static_cast<int>(compress) << ": "
            << cmp.describe();
      }
    }
  }
}

TEST(FusedDeterminism, RepeatedFusedRunsProduceIdenticalImages) {
  const DiffusionGraph g = statcheck_workload(
      "com-YouTube", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.fused_sampling = FusedSampling::kOn;
  opt.shards = 2;
  const PoolBuild a = build_rrr_pool(g, opt, Engine::kEfficient);
  const PoolBuild b = build_rrr_pool(g, opt, Engine::kEfficient);
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a.size(), b.size());
  const FlatPool fa = a.view().flatten();
  const FlatPool fb = b.view().flatten();
  EXPECT_EQ(fa.offsets, fb.offsets);
  EXPECT_EQ(fa.vertices, fb.vertices);
}

TEST(FusedDeterminism, EveryShardCountProducesTheSameFusedImage) {
  // Fused planning works in 64-slot block units precisely so that shard
  // boundaries never split a traversal: shard count must keep moving
  // only placement and scheduling, never content, in fused mode too.
  const DiffusionGraph g = statcheck_workload(
      "com-Amazon", DiffusionModel::kIndependentCascade, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kIndependentCascade, 6);
  opt.fused_sampling = FusedSampling::kOn;
  opt.shards = 1;
  const PoolBuild reference = build_rrr_pool(g, opt, Engine::kEfficient);
  ASSERT_TRUE(reference.fused_sampling_used);
  ASSERT_TRUE(reference.segmented);  // fused always stages segmented
  const FlatPool reference_flat = reference.view().flatten();

  for (const int shards : {2, 3, 5, 8}) {
    opt.shards = shards;
    const PoolBuild sharded = build_rrr_pool(g, opt, Engine::kEfficient);
    EXPECT_EQ(sharded.shards_used, shards);
    const FlatPool flat = sharded.view().flatten();
    EXPECT_EQ(reference_flat.offsets, flat.offsets) << "shards=" << shards;
    EXPECT_EQ(reference_flat.vertices, flat.vertices) << "shards=" << shards;
  }
}

TEST(FusedDeterminism, FusedLTBuildBitMatchesScalarBuild) {
  // LT lanes consume their per-slot streams in scalar draw order, so the
  // equivalence is exact even at the whole-pipeline level: identical
  // pool image, identical martingale schedule, identical seeds.
  const DiffusionGraph g = statcheck_workload(
      "com-DBLP", DiffusionModel::kLinearThreshold, 0.03);
  auto opt = statcheck_imm_options(DiffusionModel::kLinearThreshold, 6);
  opt.shards = 2;
  opt.fused_sampling = FusedSampling::kOff;
  const PoolBuild scalar = build_rrr_pool(g, opt, Engine::kEfficient);
  opt.fused_sampling = FusedSampling::kOn;
  const PoolBuild fused = build_rrr_pool(g, opt, Engine::kEfficient);
  EXPECT_TRUE(fused.fused_sampling_used);
  EXPECT_FALSE(scalar.fused_sampling_used);
  ASSERT_EQ(scalar.size(), fused.size());
  const FlatPool fs = scalar.view().flatten();
  const FlatPool ff = fused.view().flatten();
  EXPECT_EQ(fs.offsets, ff.offsets);
  EXPECT_EQ(fs.vertices, ff.vertices);
}

TEST(FusedDeterminism, TinyWorkloadsSurviveTheFullPipeline) {
  // Fewer vertices than lanes (massive root sharing), set counts ending
  // mid-block (clipped final lane window), and more shards than blocks.
  const DiffusionGraph g = testing::make_weighted_graph(
      gen_erdos_renyi(40, 200, /*seed=*/9),
      DiffusionModel::kIndependentCascade);
  ShardedConfig config;
  config.model = DiffusionModel::kIndependentCascade;
  config.rng_seed = statcheck::statcheck_seed();
  config.fused = true;

  constexpr std::uint64_t kSets = 100;  // 1 full block + a 36-lane tail
  config.shards = 1;
  SegmentedPool reference(g.num_vertices());
  reference.resize(kSets);
  ShardedSampler ref_sampler(g.reverse, config);
  ref_sampler.generate(reference, 0, kSets, nullptr);

  for (const int shards : {2, 4, 8}) {  // 8 shards > 2 blocks
    config.shards = shards;
    SegmentedPool pool(g.num_vertices());
    pool.resize(kSets);
    ShardedSampler sampler(g.reverse, config);
    sampler.generate(pool, 0, kSets, nullptr);
    for (std::uint64_t i = 0; i < kSets; ++i) {
      const auto a = reference.run(i);
      const auto b = pool.run(i);
      ASSERT_EQ(a.size(), b.size()) << "shards=" << shards << " slot=" << i;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "shards=" << shards << " slot=" << i;
      EXPECT_GE(a.size(), 1u);  // root always included
    }
  }
}

TEST(FusedDeterminism, RoundSplitWindowsComposeToTheFullRange) {
  // The martingale rounds hand the sampler growing ranges; a block split
  // across two generate() calls must produce the same slots a dedicated
  // split produces — i.e. content is a function of the lane windows
  // actually sampled, with no randomness shared across the split.
  const DiffusionGraph g = testing::make_weighted_graph(
      gen_erdos_renyi(200, 1600, /*seed=*/13),
      DiffusionModel::kIndependentCascade);
  ShardedConfig config;
  config.model = DiffusionModel::kIndependentCascade;
  config.rng_seed = statcheck::statcheck_seed();
  config.fused = true;
  config.shards = 2;

  constexpr std::uint64_t kSets = 192;
  SegmentedPool split_pool(g.num_vertices());
  split_pool.resize(kSets);
  ShardedSampler split_sampler(g.reverse, config);
  split_sampler.generate(split_pool, 0, 100, nullptr);   // clips block 1
  split_sampler.generate(split_pool, 100, kSets, nullptr);

  SegmentedPool split_pool2(g.num_vertices());
  split_pool2.resize(kSets);
  ShardedSampler split_sampler2(g.reverse, config);
  split_sampler2.generate(split_pool2, 0, 100, nullptr);
  split_sampler2.generate(split_pool2, 100, kSets, nullptr);

  for (std::uint64_t i = 0; i < kSets; ++i) {
    const auto a = split_pool.run(i);
    const auto b = split_pool2.run(i);
    ASSERT_EQ(a.size(), b.size()) << "slot=" << i;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "slot=" << i;
  }
}

}  // namespace
}  // namespace eimm
