// Deterministic RNG stream derivation — the ONE audited seeding seam.
//
// Every parallel pipeline in the project derives independent random
// streams from (base_seed, structured index) so results never depend on
// thread count or schedule. Before this header the derivations were
// scattered (Xoshiro256::for_stream call sites in the samplers, ad-hoc
// hash_combine64 salts elsewhere); concentrating them here gives the
// fused 64-wide sampler, the scalar sharded path, and future consumers
// one place where stream independence is reasoned about and tested
// (tests/runtime/rng_stream_test.cpp runs the statistical smoke).
//
// Contracts:
//   * rng_stream(seed, index) is BIT-COMPATIBLE with the historical
//     Xoshiro256::for_stream(seed, index) — the scalar sampling pipeline
//     routes through it, and EIMM_FUSED=0 pools must stay bit-identical
//     to pre-helper builds.
//   * rng_split(seed, domain) derives an independent sub-seed space, so
//     rng_stream(rng_split(s, a), i) and rng_stream(s, i) never collide
//     in practice (SplitMix64 avalanche; no structural overlap).
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace eimm {

/// The per-index stream: element `index`'s generator under `base_seed`.
/// Identical to Xoshiro256::for_stream — the scalar RRR sampler's
/// historical seeding, now shared by every lane-structured consumer.
[[nodiscard]] inline Xoshiro256 rng_stream(std::uint64_t base_seed,
                                           std::uint64_t index) noexcept {
  return Xoshiro256::for_stream(base_seed, index);
}

/// Splits `base_seed` into the sub-seed for `domain`: streams derived
/// from different domains are mutually independent, and none aliases the
/// un-split stream space (domain tags below keep callers from colliding).
[[nodiscard]] constexpr std::uint64_t rng_split(std::uint64_t base_seed,
                                                std::uint64_t domain) noexcept {
  // Double mixing: plain hash_combine64(seed, domain) is exactly the
  // per-index derivation, so a split seed could alias stream `domain`
  // of the SAME base space. The extra splitmix round (with a fixed salt
  // folded in) moves splits into their own orbit.
  std::uint64_t mixed = hash_combine64(base_seed, domain);
  mixed ^= 0x9E6C63D0876A3F6BULL;
  return splitmix64(mixed);
}

/// Registered split domains — one tag per subsystem, so two callers can
/// never accidentally share a sub-seed space.
namespace rng_domain {
/// Fused sampler's block-level Bernoulli mask stream (rrr/fused.hpp).
inline constexpr std::uint64_t kFusedMask = 0xF05EDull;
}  // namespace rng_domain

/// Lane stream for the fused sampler: lane `lane` of traversal block
/// `block` is global RRR slot block*64+lane, and uses EXACTLY that
/// global slot's per-index stream — a fused set draws the same root as
/// its scalar counterpart would (contents then diverge only through the
/// joint traversal's flip ordering).
[[nodiscard]] inline Xoshiro256 rng_lane_stream(std::uint64_t base_seed,
                                                std::uint64_t block,
                                                std::uint64_t lanes_per_block,
                                                std::uint64_t lane) noexcept {
  return rng_stream(base_seed, block * lanes_per_block + lane);
}

}  // namespace eimm
