#include "support/rng.hpp"

namespace eimm {

std::uint64_t Xoshiro256::next_bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and avoids divisions
  // on the fast path.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace eimm
