#include "simulate/spread.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.hpp"

namespace eimm {
namespace {

using testing::make_graph;
using testing::set_uniform_probability;

TEST(SpreadIC, EmptySeedSetIsZero) {
  auto g = make_graph(gen_star(10));
  set_uniform_probability(g, 0.5f);
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, {}), 0.0);
}

TEST(SpreadIC, AllVerticesSeededIsN) {
  auto g = make_graph(gen_erdos_renyi(50, 200, 3), 50);
  set_uniform_probability(g, 0.5f);
  std::vector<VertexId> all(50);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, all), 50.0);
}

TEST(SpreadIC, ProbabilityZeroSpreadsOnlySeeds) {
  auto g = make_graph(gen_complete(10));
  set_uniform_probability(g, 0.0f);
  const std::vector<VertexId> seeds{2, 5};
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, seeds), 2.0);
}

TEST(SpreadIC, ProbabilityOneOnPathCoversSuffix) {
  auto g = make_graph(gen_path(10));
  set_uniform_probability(g, 1.0f);
  const std::vector<VertexId> seeds{4};
  // Seed 4 activates 5, 6, ..., 9 deterministically.
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, seeds), 6.0);
}

TEST(SpreadIC, StarHubReachesEverything) {
  auto g = make_graph(gen_star(20));
  set_uniform_probability(g, 1.0f);
  const std::vector<VertexId> hub{0};
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, hub), 20.0);
  const std::vector<VertexId> leaf{5};
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, leaf), 1.0);
}

TEST(SpreadIC, DuplicateSeedsCountOnce) {
  auto g = make_graph(gen_star(10));
  set_uniform_probability(g, 0.0f);
  const std::vector<VertexId> seeds{3, 3, 3};
  EXPECT_DOUBLE_EQ(estimate_spread_ic(g.forward, seeds), 1.0);
}

TEST(SpreadIC, DeterministicInSeed) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(100, 600, 5), DiffusionModel::kIndependentCascade);
  const std::vector<VertexId> seeds{1, 2, 3};
  SpreadOptions opt;
  opt.num_samples = 200;
  const double a = estimate_spread_ic(g.forward, seeds, opt);
  const double b = estimate_spread_ic(g.forward, seeds, opt);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SpreadIC, MonotoneInSeedSet) {
  auto g = testing::make_weighted_graph(
      gen_erdos_renyi(200, 1200, 5), DiffusionModel::kIndependentCascade);
  SpreadOptions opt;
  opt.num_samples = 500;
  const std::vector<VertexId> small{1, 2};
  const std::vector<VertexId> large{1, 2, 3, 4};
  EXPECT_GE(estimate_spread_ic(g.forward, large, opt) + 1e-9,
            estimate_spread_ic(g.forward, small, opt));
}

TEST(SpreadIC, HalfProbabilityPathMatchesGeometricSeries) {
  // On a path with p=0.5, E[spread from 0] = sum_{i=0}^{n-1} 0.5^i -> 2.
  auto g = make_graph(gen_path(20));
  set_uniform_probability(g, 0.5f);
  SpreadOptions opt;
  opt.num_samples = 20000;
  const std::vector<VertexId> seeds{0};
  EXPECT_NEAR(estimate_spread_ic(g.forward, seeds, opt), 2.0, 0.05);
}

TEST(SpreadLT, PathWithFullWeightIsDeterministic) {
  auto g = make_graph(gen_path(8));
  set_uniform_probability(g, 1.0f);  // in-weight 1: always activates
  const std::vector<VertexId> seeds{0};
  EXPECT_DOUBLE_EQ(estimate_spread_lt(g.forward, seeds), 8.0);
}

TEST(SpreadLT, EmptySeedsZero) {
  auto g = make_graph(gen_path(5));
  set_uniform_probability(g, 1.0f);
  EXPECT_DOUBLE_EQ(estimate_spread_lt(g.forward, {}), 0.0);
}

TEST(SpreadLT, NormalizedWeightsStayBounded) {
  auto g = testing::make_weighted_graph(gen_erdos_renyi(100, 800, 9),
                                        DiffusionModel::kLinearThreshold);
  SpreadOptions opt;
  opt.num_samples = 300;
  const std::vector<VertexId> seeds{0, 1, 2};
  const double spread = estimate_spread_lt(g.forward, seeds, opt);
  EXPECT_GE(spread, 3.0);
  EXPECT_LE(spread, 100.0);
}

TEST(SpreadLT, MonotoneInSeedSet) {
  auto g = testing::make_weighted_graph(gen_barabasi_albert(150, 2, 3),
                                        DiffusionModel::kLinearThreshold);
  SpreadOptions opt;
  opt.num_samples = 500;
  const std::vector<VertexId> small{0};
  const std::vector<VertexId> large{0, 1, 2};
  EXPECT_GE(estimate_spread_lt(g.forward, large, opt) + 1e-9,
            estimate_spread_lt(g.forward, small, opt));
}

TEST(SpreadDispatch, SelectsModel) {
  auto g = make_graph(gen_path(6));
  set_uniform_probability(g, 1.0f);
  const std::vector<VertexId> seeds{0};
  EXPECT_DOUBLE_EQ(
      estimate_spread(g.forward, DiffusionModel::kIndependentCascade, seeds),
      6.0);
  EXPECT_DOUBLE_EQ(
      estimate_spread(g.forward, DiffusionModel::kLinearThreshold, seeds),
      6.0);
}

}  // namespace
}  // namespace eimm
