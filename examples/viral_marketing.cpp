// Viral marketing scenario (the IC use case from the paper's intro).
//
// A brand can gift its product to k accounts on a Twitter-like network
// and wants to maximize word-of-mouth reach. This example compares three
// ways of choosing the k accounts —
//     EfficientIMM seeds  vs  top-degree "influencers"  vs  random picks
// — and scores each with an independent forward Monte-Carlo simulation
// of the Independent Cascade process.
//
// Run: ./viral_marketing [k] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/imm.hpp"
#include "diffusion/weights.hpp"
#include "graph/stats.hpp"
#include "simulate/heuristics.hpp"
#include "simulate/spread.hpp"
#include "support/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace eimm;

  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;

  std::printf("== Viral marketing on a twitter7-like network ==\n");
  DiffusionGraph graph =
      make_workload("twitter7", scale, /*seed=*/2024);
  // Weighted-cascade IC (p = 1/indeg, Kempe et al.): the standard viral-
  // marketing setting where targeting matters. (The paper's uniform
  // [0,1] weights make this dense analogue supercritical — every seed
  // reaches the giant component and all strategies tie.)
  assign_ic_weights_weighted_cascade(graph.reverse);
  mirror_weights_to_forward(graph.reverse, graph.forward);
  const GraphStats stats = compute_graph_stats(graph.forward, false);
  std::printf("Network: %s\n", describe(stats).c_str());
  std::printf("Budget: %zu gifted accounts\n\n", k);

  // Strategy 1: EfficientIMM.
  ImmOptions options;
  options.k = k;
  options.epsilon = 0.3;
  options.model = DiffusionModel::kIndependentCascade;
  const ImmResult imm = run_efficient_imm(graph, options);
  std::printf("EfficientIMM finished in %.3fs (%llu RRR sets)\n",
              imm.breakdown.total_seconds,
              static_cast<unsigned long long>(imm.num_rrr_sets));

  // Strategy 2 & 3: the folk heuristics.
  const auto degree = top_degree_seeds(graph.forward, k);
  const auto random = random_seeds(graph.num_vertices(), k, /*seed=*/99);

  // Score every strategy with the same independent simulation.
  SpreadOptions spread_options;
  spread_options.num_samples = 500;
  const double spread_imm = estimate_spread_ic(graph.forward, imm.seeds,
                                               spread_options);
  const double spread_degree =
      estimate_spread_ic(graph.forward, degree, spread_options);
  const double spread_random =
      estimate_spread_ic(graph.forward, random, spread_options);

  AsciiTable table({"Strategy", "Expected reach", "% of network",
                    "vs random"});
  const auto add_row = [&](const char* name, double spread) {
    table.new_row()
        .add(name)
        .add(spread, 0)
        .add(100.0 * spread / stats.num_vertices, 1)
        .add(format_speedup(spread / spread_random, 2));
  };
  add_row("EfficientIMM", spread_imm);
  add_row("Top-degree", spread_degree);
  add_row("Random", spread_random);
  table.set_title("Campaign reach by seeding strategy");
  table.print(std::cout);
  return 0;
}
