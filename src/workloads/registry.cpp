#include "workloads/registry.hpp"

#include <algorithm>
#include <cmath>

#include "diffusion/weights.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/macros.hpp"
#include "support/rng.hpp"

namespace eimm {

const std::vector<WorkloadSpec>& workload_specs() {
  static const std::vector<WorkloadSpec> specs = {
      // name          family              paper nodes  paper edges   avg    max    base n
      {"com-Amazon", "watts-strogatz", 334'863, 925'872, 0.613, 0.796, 24'000},
      {"com-YouTube", "barabasi-albert", 1'134'890, 2'987'624, 0.327, 0.599, 40'000},
      {"com-DBLP", "planted-partition", 317'080, 1'049'866, 0.514, 0.789, 24'000},
      {"com-LJ", "rmat", 3'997'962, 34'681'189, 0.680, 0.841, 65'536},
      {"soc-Pokec", "rmat-dense", 1'632'803, 30'622'564, 0.601, 0.785, 32'768},
      {"as-Skitter", "grid-shortcut", 1'696'415, 11'095'298, 0.016, 0.054, 22'500},
      {"web-Google", "rmat-sparse", 875'713, 5'105'039, 0.174, 0.548, 32'768},
      {"twitter7", "rmat-skewed", 41'652'230, 1'468'365'182, 0.598, 0.880, 131'072},
  };
  return specs;
}

std::optional<WorkloadSpec> find_workload(const std::string& name) {
  for (const auto& spec : workload_specs()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

namespace {

unsigned rmat_scale_for(double nodes) {
  const double bits = std::log2(std::max(nodes, 1024.0));
  return static_cast<unsigned>(std::lround(bits));
}

/// Keeps each edge independently with probability keep_prob. Dilution
/// moves a family below its percolation threshold under the paper's
/// uniform-[0,1] IC weights — how the as-Skitter analogue reaches the
/// paper's ~2 % coverage regime on a lattice topology.
std::vector<WeightedEdge> dilute(std::vector<WeightedEdge> edges,
                                 double keep_prob, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::erase_if(edges, [&](const WeightedEdge&) {
    return !rng.next_bool(keep_prob);
  });
  return edges;
}

}  // namespace

DiffusionGraph make_workload(const std::string& name, double scale,
                             std::uint64_t seed) {
  const auto spec = find_workload(name);
  EIMM_CHECK(spec.has_value(), "unknown workload name");
  EIMM_CHECK(scale > 0.0, "scale must be positive");
  const double target = spec->base_nodes * scale;
  const auto n = static_cast<VertexId>(std::max(target, 64.0));

  std::vector<WeightedEdge> edges;
  BuildOptions build;

  if (spec->family == "watts-strogatz") {
    // Co-purchase network analogue: high clustering, near-regular
    // degrees, one giant component -> dense RRR sets (paper: 61% avg).
    edges = dilute(gen_watts_strogatz(n, /*k=*/3, /*beta=*/0.10, seed),
                   0.72, hash_combine64(seed, 3));
  } else if (spec->family == "barabasi-albert") {
    // Subscription network analogue: heavy-tailed degrees, hub-centric.
    // Diluted so the coverage sits in YouTube's mid regime (~33% avg).
    edges = dilute(gen_barabasi_albert(n, /*edges_per_vertex=*/2, seed),
                   0.72, hash_combine64(seed, 1));
  } else if (spec->family == "planted-partition") {
    // Collaboration network analogue: dense communities, sparse bridges.
    const VertexId communities = std::max<VertexId>(8, n / 400);
    edges = gen_planted_partition(n, communities, /*avg_in=*/3.0,
                                  /*avg_out=*/0.8, seed);
  } else if (spec->family == "rmat") {
    RmatParams params;
    params.scale = rmat_scale_for(target);
    params.edge_factor = 30;  // LiveJournal: densest coverage (68% avg)
    params.a = 0.55;
    params.b = 0.20;
    params.c = 0.20;
    edges = gen_rmat(params, seed);
  } else if (spec->family == "rmat-dense") {
    RmatParams params;
    params.scale = rmat_scale_for(target);
    params.edge_factor = 24;  // Pokec is the densest graph in the set
    params.a = 0.55;
    params.b = 0.20;
    params.c = 0.20;
    edges = gen_rmat(params, seed);
  } else if (spec->family == "rmat-sparse") {
    RmatParams params;
    params.scale = rmat_scale_for(target);
    params.edge_factor = 4;  // web-Google's sparser, crawl-like structure
    params.a = 0.57;
    params.b = 0.19;
    params.c = 0.19;
    edges = gen_rmat(params, seed);
  } else if (spec->family == "rmat-skewed") {
    RmatParams params;
    params.scale = rmat_scale_for(target);
    params.edge_factor = 28;  // twitter7: biggest and very dense (m/n=35)
    params.a = 0.55;
    params.b = 0.20;
    params.c = 0.20;
    edges = gen_rmat(params, seed);
  } else if (spec->family == "grid-shortcut") {
    // Internet-topology analogue that reproduces as-Skitter's road-like
    // behaviour: a diluted lattice sits below the IC percolation
    // threshold, so reverse reachability stays tiny (paper: 1.6% avg).
    const auto side = static_cast<VertexId>(
        std::max(8.0, std::sqrt(static_cast<double>(n))));
    edges = dilute(gen_grid2d(side, side, /*shortcuts=*/side / 8, seed),
                   0.60, hash_combine64(seed, 2));
  } else {
    EIMM_CHECK(false, "unhandled workload family");
  }

  return build_diffusion_graph(std::move(edges), 0, build);
}

DiffusionGraph make_workload_with_weights(const std::string& name,
                                          DiffusionModel model, double scale,
                                          std::uint64_t seed) {
  DiffusionGraph graph = make_workload(name, scale, seed);
  assign_paper_weights(graph.reverse, model, hash_combine64(seed, 0x77));
  mirror_weights_to_forward(graph.reverse, graph.forward);
  return graph;
}

}  // namespace eimm
