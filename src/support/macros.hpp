// Error-checking macros and small attribute helpers shared by every module.
//
// EIMM_CHECK is an always-on invariant check (survives NDEBUG); it throws
// eimm::CheckError so library misuse surfaces as a catchable exception rather
// than a process abort, which keeps the test suite able to assert on it.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eimm {

/// Thrown by EIMM_CHECK on a failed invariant; carries file/line context.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "EIMM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace eimm

/// Always-on invariant check. Usage: EIMM_CHECK(x > 0, "x must be positive").
#define EIMM_CHECK(expr, ...)                                            \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::eimm::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                   ::std::string{"" __VA_ARGS__});       \
    }                                                                    \
  } while (0)

/// Marks intentionally unused variables (e.g. parameters kept for symmetry).
#define EIMM_UNUSED(x) (void)(x)

#if defined(__GNUC__) || defined(__clang__)
#define EIMM_LIKELY(x) __builtin_expect(!!(x), 1)
#define EIMM_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define EIMM_LIKELY(x) (x)
#define EIMM_UNLIKELY(x) (x)
#endif
