#include "cachesim/cache.hpp"

#include "support/bits.hpp"
#include "support/macros.hpp"

namespace eimm {

CacheLevel::CacheLevel(const CacheLevelConfig& config)
    : ways_(config.associativity) {
  EIMM_CHECK(config.line_bytes > 0 && is_pow2(config.line_bytes),
             "line size must be a power of two");
  EIMM_CHECK(config.associativity > 0, "associativity must be positive");
  const std::uint64_t lines = config.size_bytes / config.line_bytes;
  EIMM_CHECK(lines >= config.associativity, "cache too small for one set");
  num_sets_ = lines / config.associativity;
  EIMM_CHECK(is_pow2(num_sets_), "number of sets must be a power of two");
  set_mask_ = num_sets_ - 1;
  tags_.assign(num_sets_ * ways_, kInvalid);
  stamps_.assign(num_sets_ * ways_, 0);
}

bool CacheLevel::access_line(std::uint64_t line_id) noexcept {
  const std::uint64_t set = line_id & set_mask_;
  const std::uint64_t tag = line_id >> log2_pow2(num_sets_);
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  ++tick_;

  std::size_t victim = base;
  std::uint64_t victim_stamp = ~std::uint64_t{0};
  for (std::size_t w = base; w < base + ways_; ++w) {
    if (tags_[w] == tag) {
      stamps_[w] = tick_;
      return true;
    }
    if (stamps_[w] < victim_stamp) {
      victim_stamp = stamps_[w];
      victim = w;
    }
  }
  tags_[victim] = tag;
  stamps_[victim] = tick_;
  return false;
}

void CacheLevel::reset() noexcept {
  std::fill(tags_.begin(), tags_.end(), kInvalid);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  tick_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheConfig& config)
    : line_bytes_(config.l1.line_bytes), l1_(config.l1), l2_(config.l2) {
  EIMM_CHECK(config.l1.line_bytes == config.l2.line_bytes,
             "levels must share a line size");
}

void CacheHierarchy::access(const void* addr, std::size_t bytes) noexcept {
  if (bytes == 0) bytes = 1;
  const auto start = reinterpret_cast<std::uintptr_t>(addr);
  const std::uint64_t first_line = start / line_bytes_;
  const std::uint64_t last_line = (start + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    ++stats_.accesses;
    if (!l1_.access_line(line)) {
      ++stats_.l1_misses;
      if (!l2_.access_line(line)) {
        ++stats_.l2_misses;
      }
    }
  }
}

void CacheHierarchy::reset() noexcept {
  l1_.reset();
  l2_.reset();
  stats_ = {};
}

}  // namespace eimm
